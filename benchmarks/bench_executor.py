"""Batch-vs-row executor ablation: the vectorized read hot path.

The batch engine freezes the store into a CSR snapshot once per write
epoch and serves anchors, temporal filters, frontier expansion and point
reads from flat columns (``repro/plan/batch.py``).  This bench builds the
same ~10k-element churned inventory the time-travel ablation uses, then
times each operator family with ``batch_enabled`` flipped on and off:

* **anchor scan** — current-scope ``scan_atom`` over every VM;
* **temporal filter** — the same scan AT the churn midpoint (bisects over
  sorted interval columns vs an ``Interval`` call per version);
* **2-hop expansion** — ``in_edges_many`` over every host (each fans in
  ~20 ``OnServer`` edges, live and dead) followed by ``get_many`` of
  every edge source (wave-at-a-time CSR walk vs per-element
  adjacency-dict chasing);
* **pathway match** — end-to-end ``find_paths`` of VM()->OnServer()->Host()
  through the planner/executor, where shared NFA stepping dilutes the
  operator-level gains.

Every timed pair is digest-checked, so the ablation doubles as a
differential test at benchmark scale.  Results land in
``BENCH_executor.json`` (CI artifact + regression-gated baseline).

``NEPAL_EXEC_ELEMENTS`` / ``NEPAL_EXEC_DAYS`` scale the inventory (CI's
bench smoke shrinks both); ``NEPAL_EXEC_REPEAT`` is the best-of count.
At full scale the bench asserts the >= 3x speedup the batch engine was
built for on the temporal-filter and 2-hop cells; at reduced scale it
only asserts the batch path never collapses.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.core.database import NepalDB
from repro.rpe.parser import parse_rpe
from repro.schema.builtin import build_network_schema
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from repro.util.text import format_table

T0 = 1_600_000_000.0
DAY = 86_400.0

ELEMENTS = int(os.environ.get("NEPAL_EXEC_ELEMENTS", "10000"))
DAYS = int(os.environ.get("NEPAL_EXEC_DAYS", "12"))
REPEAT = int(os.environ.get("NEPAL_EXEC_REPEAT", "3"))
JSON_PATH = os.environ.get("NEPAL_EXEC_JSON", "BENCH_executor.json")

#: The >= 3x acceptance targets only bind at the 10k-element scale the
#: ISSUE names; the reduced CI smoke just guards against collapse.
FULL_SCALE = ELEMENTS >= 10_000

CHURN_FRACTION = 0.25
SEED = 20180613


def build_churned_store() -> MemGraphStore:
    """~ELEMENTS initial elements, then DAYS days of VM turnover."""
    rng = random.Random(SEED)
    store = MemGraphStore(
        build_network_schema(),
        clock=TransactionClock(start=T0),
        indexed_fields=("name",),
    )
    n_hosts = max(ELEMENTS // 20, 4)
    n_vms = max((ELEMENTS - n_hosts) // 2, 8)

    hosts: list[int] = []
    with store.bulk():
        for i in range(n_hosts):
            hosts.append(
                store.insert_node("Host", {"name": f"h{i}", "status": "Green"})
            )

    serial = 0
    vm_edge: dict[int, int] = {}

    def spawn_vm() -> None:
        nonlocal serial
        status = rng.choice(("Green", "Amber", "Red"))
        uid = store.insert_node("VM", {"name": f"v{serial}", "status": status})
        vm_edge[uid] = store.insert_edge("OnServer", uid, hosts[serial % n_hosts])
        serial += 1

    with store.bulk():
        for _ in range(n_vms):
            spawn_vm()

    for _ in range(DAYS):
        store.clock.advance(DAY)
        doomed = rng.sample(sorted(vm_edge), int(len(vm_edge) * CHURN_FRACTION))
        with store.bulk():
            for uid in doomed:
                store.delete_element(vm_edge.pop(uid))
                store.delete_element(uid)
            for _ in doomed:
                spawn_vm()
    store.clock.advance(DAY)
    return store


def timed(fn):
    """(best-of-REPEAT seconds, last result)."""
    best = None
    result = None
    for _ in range(REPEAT):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def scan_digest(records) -> list[tuple]:
    return [(r.uid, r.period.start) for r in records]


def hop_digest(result) -> tuple:
    edges, targets = result
    return (
        {uid: [e.uid for e in lst] for uid, lst in edges.items()},
        {uid: r.period.start for uid, r in targets.items()},
    )


def path_digest(pathways) -> set[tuple]:
    return {p.key() for p in pathways}


def test_executor_ablation_table(capsys):
    store = build_churned_store()
    end = store.clock.now()
    mid = (T0 + end) / 2
    current = TimeScope.current()
    at_mid = TimeScope.at(mid)

    vm_atom = parse_rpe("VM()").bind(store.schema)
    vm_uids = sorted(r.uid for r in store.scan_atom(vm_atom, current))
    host_atom = parse_rpe("Host()").bind(store.schema)
    host_uids = sorted(r.uid for r in store.scan_atom(host_atom, current))

    def two_hop(scope):
        edges = store.in_edges_many(host_uids, scope)
        sources = store.get_many(
            [e.source_uid for lst in edges.values() for e in lst], scope
        )
        return edges, sources

    db = NepalDB(schema=store.schema, clock=store.clock)
    db.attach_store("bench", store)
    path_rpe = "VM()->[OnServer()]->Host()"

    cases = [
        (
            "anchor scan VM() current",
            lambda: store.scan_atom(vm_atom, current),
            scan_digest,
        ),
        (
            "temporal filter VM() AT t_mid",
            lambda: store.scan_atom(vm_atom, at_mid),
            scan_digest,
        ),
        (
            "2-hop expand Host <- edges <- VM",
            lambda: two_hop(current),
            hop_digest,
        ),
        (
            "2-hop expand AT t_mid",
            lambda: two_hop(at_mid),
            hop_digest,
        ),
        (
            "pathway match VM->OnServer->Host",
            lambda: db.find_paths(path_rpe, store="bench"),
            path_digest,
        ),
    ]

    # Build the CSR outside the timings: the first batch read of an epoch
    # defers (rebuild-thrash guard), the second builds.  Steady state —
    # what the cells measure — reuses it.
    store.batch_enabled = True
    build_s, _ = timed(lambda: store._csr_snapshot() or store._csr_snapshot())

    rows = []
    table_rows = []
    speedups: dict[str, float] = {}
    for label, fn, digest in cases:
        store.batch_enabled = True
        batch_s, batch_result = timed(fn)
        store.batch_enabled = False
        try:
            row_s, row_result = timed(fn)
        finally:
            store.batch_enabled = True

        # Zero result diffs: the ablation is also a correctness oracle.
        assert digest(batch_result) == digest(row_result), label

        speedup = row_s / batch_s if batch_s > 0 else float("inf")
        speedups[label] = speedup
        rows.append({
            "label": label,
            "batch_ms": batch_s * 1000,
            "row_ms": row_s * 1000,
            "speedup": speedup,
        })
        table_rows.append(
            [label, f"{batch_s * 1000:.2f}", f"{row_s * 1000:.2f}", f"{speedup:.1f}x"]
        )

    filter_speedup = speedups["temporal filter VM() AT t_mid"]
    hop_speedup = min(
        speedups["2-hop expand Host <- edges <- VM"],
        speedups["2-hop expand AT t_mid"],
    )
    min_speedup = min(speedups.values())

    payload = {
        "bench": "executor",
        "elements": ELEMENTS,
        "days": DAYS,
        "repeat": REPEAT,
        "full_scale": FULL_SCALE,
        "churn_fraction": CHURN_FRACTION,
        "uids_ever": len(store.known_uids()),
        "live_vms": len(vm_uids),
        "hosts": len(host_uids),
        "csr_build_ms": build_s * 1000,
        "csr": store._csr_snapshot().describe(),
        "rows": rows,
        "temporal_filter_speedup": filter_speedup,
        "two_hop_speedup": hop_speedup,
        "min_speedup": min_speedup,
        # Machine-independent ratios, compared against the committed
        # baseline by benchmarks/check_regression.py in CI.
        "gate": {
            "higher_is_better": {
                "temporal_filter_speedup": filter_speedup,
                "two_hop_speedup": hop_speedup,
                "min_speedup": min_speedup,
            },
            "lower_is_better": {},
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    with capsys.disabled():
        print()
        print(
            f"== batch vs row executor ({ELEMENTS} elements, {DAYS} churn days, "
            f"{payload['uids_ever']} uids ever, {len(vm_uids)} live VMs, "
            f"CSR build {build_s * 1000:.1f} ms) =="
        )
        print(format_table(["cell", "batch ms", "row ms", "speedup"], table_rows))
        print(f"(written to {JSON_PATH})")

    # The batch path must never collapse; at the ISSUE's named scale the
    # operator-level cells must clear the 3x acceptance bar.
    assert min_speedup > 0.5, payload
    if FULL_SCALE:
        assert filter_speedup >= 3.0, payload
        assert hop_speedup >= 3.0, payload
