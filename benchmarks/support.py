"""Shared infrastructure for the benchmark harness.

Each bench module regenerates one artifact of the paper's evaluation
(Tables 1 and 2, the §6 in-text experiments, plus ablations DESIGN.md calls
out).  Two conventions:

* every bench prints a paper-style table (paper value next to measured
  value) so ``pytest benchmarks/ --benchmark-only`` output doubles as the
  EXPERIMENTS.md source;
* pytest-benchmark times a fixed slice of the workload; the printed
  averages come from a full sweep measured directly, mirroring the paper's
  "50 instances per query type, zero-path instances avoided".

Scale: ``NEPAL_BENCH_SCALE=paper`` uses the largest (slowest) legacy graph;
the default ``medium`` keeps the full suite under ~10 minutes.  The
virtualized service graph always runs at the paper's scale (~2k nodes).
``NEPAL_BENCH_INSTANCES`` overrides the per-type instance count and
``NEPAL_CHURN_DAYS`` the simulated history length — CI's bench smoke job
shrinks both so plan-cache regressions surface in minutes, not hours.
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field

from repro.inventory.churn import ChurnParams, ChurnSimulator
from repro.inventory.legacy import LegacyParams, LegacyTopology, build_legacy_schema
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.inventory.workload import QueryInstance, table1_workload, table2_workload
from repro.plan.planner import Planner, PlannerOptions
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import GraphStore, TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from repro.util.text import format_table

T0 = 1_600_000_000.0

SCALE = os.environ.get("NEPAL_BENCH_SCALE", "medium")

#: Every generator below runs with an explicit seed so a benchmark anomaly
#: (or a test failure against a bench-built store) reproduces exactly.
TOPOLOGY_SEED = 20180610
LEGACY_SEED = 20180611
WORKLOAD_SEED = 4711

LEGACY_PARAMS = {
    "small": LegacyParams(
        chains=800, core_nodes=25, aggregation_nodes=120, sites=30,
        noise_hubs=12, noise_edges_per_hub=2500, agg_noise_edges=3000,
        seed=LEGACY_SEED,
    ),
    "medium": LegacyParams(
        chains=2500, core_nodes=40, aggregation_nodes=250, sites=60,
        noise_hubs=25, noise_edges_per_hub=5000, agg_noise_edges=6000,
        seed=LEGACY_SEED,
    ),
    # generator defaults (~1/40 of AT&T's graph)
    "paper": LegacyParams(seed=LEGACY_SEED),
}[SCALE if SCALE in ("small", "medium", "paper") else "medium"]

INSTANCES = int(os.environ.get("NEPAL_BENCH_INSTANCES", "50"))
"""Per-type instance count (the paper uses 50)."""

CHURN_DAYS = int(os.environ.get("NEPAL_CHURN_DAYS", "60"))
"""Simulated history length in days (the paper's stores carry 60)."""


@dataclass
class BenchEnv:
    """A populated store pair (snapshot-only and with-history) + workload."""

    snap: GraphStore
    hist: GraphStore
    handles: object
    workload_snap: dict[str, list[QueryInstance]]
    workload_hist: dict[str, list[QueryInstance]]
    churn_growth: float
    history_mid: float
    planners: dict[int, Planner] = field(default_factory=dict)

    def planner(self, store: GraphStore) -> Planner:
        key = id(store)
        if key not in self.planners:
            self.planners[key] = Planner(
                store.schema, CardinalityEstimator(store), PlannerOptions()
            )
        return self.planners[key]


@dataclass
class SweepResult:
    kind: str
    avg_paths: float
    avg_seconds_snap: float
    avg_seconds_hist: float
    instances: int


def build_service_env() -> BenchEnv:
    """The virtualized service graph at paper scale, with 60-day history."""
    def build(store: GraphStore):
        return VirtualizedServiceTopology(TopologyParams(seed=TOPOLOGY_SEED)).apply(store)

    from repro.schema.builtin import build_network_schema

    snap = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0),
                         name="service-snap")
    handles = build(snap)

    hist = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0),
                         name="service-hist")
    hist_handles = build(hist)
    churn = ChurnSimulator(
        hist, ChurnParams(days=CHURN_DAYS, growth_ratio=0.06, seed=97)
    ).run(
        hist_handles.all_nodes(), hist_handles.all_edges(),
        migratable={vm: hist_handles.hosts for vm in hist_handles.vms},
    )
    return BenchEnv(
        snap=snap,
        hist=hist,
        handles=handles,
        workload_snap=table1_workload(handles, instances=INSTANCES, seed=WORKLOAD_SEED),
        workload_hist=table1_workload(
            hist_handles, instances=INSTANCES, seed=WORKLOAD_SEED
        ),
        churn_growth=churn.growth,
        history_mid=(churn.start_time + churn.end_time) / 2,
    )


def build_legacy_env(subclassed: bool) -> BenchEnv:
    """The legacy topology in one of the two schema variants of §6."""
    def build(store: GraphStore):
        return LegacyTopology(LEGACY_PARAMS, subclassed=subclassed).apply(store)

    schema = build_legacy_schema(subclassed)
    snap = MemGraphStore(schema, clock=TransactionClock(start=T0),
                         name=f"legacy-snap-{subclassed}")
    handles = build(snap)

    hist = MemGraphStore(build_legacy_schema(subclassed),
                         clock=TransactionClock(start=T0),
                         name=f"legacy-hist-{subclassed}")
    hist_handles = build(hist)
    churn = ChurnSimulator(
        hist, ChurnParams(days=CHURN_DAYS, growth_ratio=0.16, seed=98,
                          migration_fraction=0.0, flap_fraction=0.1)
    ).run(hist_handles.all_uids, [], migratable=None)
    return BenchEnv(
        snap=snap,
        hist=hist,
        handles=handles,
        workload_snap=table2_workload(
            handles, subclassed, instances=INSTANCES, seed=WORKLOAD_SEED + 1
        ),
        workload_hist=table2_workload(
            hist_handles, subclassed, instances=INSTANCES, seed=WORKLOAD_SEED + 1
        ),
        churn_growth=churn.growth,
        history_mid=(churn.start_time + churn.end_time) / 2,
    )


def run_instances(
    store: GraphStore,
    planner: Planner,
    instances: list[QueryInstance],
    scope: TimeScope | None = None,
) -> tuple[float, float]:
    """(average #paths over non-zero instances, average seconds) — the
    paper's measurement protocol."""
    scope = scope or TimeScope.current()
    counts: list[int] = []
    durations: list[float] = []
    for instance in instances:
        program = planner.compile(instance.rpe)
        started = time.perf_counter()
        pathways = store.find_pathways(program, scope)
        durations.append(time.perf_counter() - started)
        if pathways:
            counts.append(len(pathways))
    avg_paths = statistics.mean(counts) if counts else 0.0
    return avg_paths, statistics.mean(durations)


def sweep(env: BenchEnv, kind: str) -> SweepResult:
    """Run one query type over snapshot and history stores."""
    snap_instances = env.workload_snap[kind]
    hist_instances = env.workload_hist[kind]
    paths, snap_time = run_instances(env.snap, env.planner(env.snap), snap_instances)
    _, hist_time = run_instances(env.hist, env.planner(env.hist), hist_instances)
    return SweepResult(
        kind=kind,
        avg_paths=paths,
        avg_seconds_snap=snap_time,
        avg_seconds_hist=hist_time,
        instances=len(snap_instances),
    )


def print_paper_table(
    title: str,
    rows: list[SweepResult],
    paper: dict[str, tuple[float, float, float]],
) -> None:
    """Render measured results next to the paper's numbers."""
    table_rows = []
    for result in rows:
        paper_paths, paper_snap, paper_hist = paper.get(result.kind, (0, 0, 0))
        table_rows.append([
            result.kind,
            f"{result.avg_paths:.1f}",
            f"{result.avg_seconds_snap * 1000:.1f}",
            f"{result.avg_seconds_hist * 1000:.1f}",
            f"{paper_paths:g}",
            f"{paper_snap * 1000:g}",
            f"{paper_hist * 1000:g}",
        ])
    print()
    print(f"== {title} ==")
    print(
        format_table(
            ["type", "#paths", "snap ms", "hist ms",
             "paper #paths", "paper snap ms", "paper hist ms"],
            table_rows,
        )
    )


def timed_subset(env: BenchEnv, kind: str, count: int = 10):
    """A callable running a fixed workload slice (for pytest-benchmark)."""
    instances = env.workload_snap[kind][:count]
    planner = env.planner(env.snap)
    programs = [planner.compile(instance.rpe) for instance in instances]
    scope = TimeScope.current()

    def run() -> int:
        total = 0
        for program in programs:
            total += len(env.snap.find_pathways(program, scope))
        return total

    return run
