"""Plan-cache ablation: warm vs cold planning on the Table 1 workload.

The paper's workloads sample 50 instances per query type and production
monitors re-issue the same instances continuously, so after one pass every
plan is a cache hit.  This bench measures exactly that lever:

* **cold** — every instance planned from scratch (parse, normalize, anchor
  costing, NFA construction), the seed repo's behaviour;
* **warm** — the same instances served by a primed
  :class:`~repro.plan.cache.PlanCache`, planning reduced to a key lookup.

The printed table shows per-type planning latency and the end-to-end
(plan + execute) effect; the assertion guards the ≥1.5× planning speedup
the cache exists to provide (in practice it is orders of magnitude).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.support import INSTANCES, BenchEnv
from repro.plan.cache import PlanCache
from repro.plan.planner import Planner, PlannerOptions
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope
from repro.util.text import format_table

MIN_SPEEDUP = 1.5
JSON_PATH = os.environ.get("NEPAL_PC_JSON", "BENCH_plan_cache.json")


def _cold_plan(env: BenchEnv, kind: str) -> float:
    """Seconds to plan every instance of *kind* with no caching at all."""
    store = env.snap
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()
    started = time.perf_counter()
    for instance in env.workload_snap[kind]:
        Planner(store.schema, estimator, options).compile(instance.rpe)
    return time.perf_counter() - started


def _warm_plan(env: BenchEnv, kind: str, cache: PlanCache) -> float:
    """Seconds to 'plan' every instance of *kind* through a primed cache."""
    store = env.snap
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()

    def fetch(rpe_text: str):
        key = PlanCache.key_for(rpe_text, "default", store, estimator, options)
        return cache.get_or_compile(
            key,
            lambda: Planner(
                store.schema, estimator, options, nfa_memo=cache.nfa_memo
            ).compile(rpe_text),
        )

    for instance in env.workload_snap[kind]:  # priming pass (not timed)
        fetch(instance.rpe)
    started = time.perf_counter()
    for instance in env.workload_snap[kind]:
        fetch(instance.rpe)
    return time.perf_counter() - started


def _end_to_end(env: BenchEnv, kind: str, cache: PlanCache | None) -> float:
    """Seconds to plan *and* execute every instance of *kind* once."""
    store = env.snap
    estimator = CardinalityEstimator(store)
    options = PlannerOptions()
    scope = TimeScope.current()
    started = time.perf_counter()
    for instance in env.workload_snap[kind]:
        if cache is None:
            program = Planner(store.schema, estimator, options).compile(instance.rpe)
        else:
            key = PlanCache.key_for(instance.rpe, "default", store, estimator, options)
            program = cache.get_or_compile(
                key,
                lambda: Planner(
                    store.schema, estimator, options, nfa_memo=cache.nfa_memo
                ).compile(instance.rpe),
            )
        store.find_pathways(program, scope)
    return time.perf_counter() - started


def test_plan_cache_warm_vs_cold(service_env):
    """Warm planning must beat cold planning by ≥1.5× on every query type."""
    # One cache, sized for the whole workload (5 types × INSTANCES texts).
    total_instances = sum(len(v) for v in service_env.workload_snap.values())
    cache = PlanCache(max_size=max(2 * total_instances, 64))

    rows = []
    total_cold = total_warm = 0.0
    for kind in service_env.workload_snap:
        instances = len(service_env.workload_snap[kind])
        cold = _cold_plan(service_env, kind)
        warm = _warm_plan(service_env, kind, cache)
        total_cold += cold
        total_warm += warm
        speedup = cold / warm if warm > 0 else float("inf")
        rows.append([
            kind,
            f"{1000 * cold / instances:.3f}",
            f"{1000 * warm / instances:.3f}",
            f"{speedup:.1f}x",
        ])

    print()
    print(f"== Plan cache — Table 1 workload, {INSTANCES} instances/type ==")
    print(format_table(["type", "cold plan ms", "warm plan ms", "speedup"], rows))
    counters = cache.stats()
    print(
        f"cache: {counters['entries']} entries, "
        f"{counters['hits']} hits / {counters['misses']} misses"
    )

    overall = total_cold / total_warm if total_warm > 0 else float("inf")
    print(f"overall planning speedup: {overall:.1f}x")

    payload = {
        "bench": "plan_cache",
        "instances_per_type": INSTANCES,
        "cold_plan_s": total_cold,
        "warm_plan_s": total_warm,
        "planning_speedup": overall,
        "cache": {k: v for k, v in counters.items() if isinstance(v, (int, float))},
        # Machine-independent ratio, compared against the committed
        # baseline by benchmarks/check_regression.py in CI.
        "gate": {
            "higher_is_better": {"planning_speedup": overall},
            "lower_is_better": {},
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"(written to {JSON_PATH})")

    assert overall >= MIN_SPEEDUP, (
        f"warm planning only {overall:.2f}x faster than cold "
        f"(required ≥{MIN_SPEEDUP}x)"
    )


def test_plan_cache_end_to_end(service_env):
    """Plan+execute with a warm cache never loses to planning from scratch.

    Execution dominates the heavy horizontal types, so the end-to-end win
    is modest there — the guard is that caching is not a pessimization,
    and the printed table records how much of each type's latency was
    planning.
    """
    total_instances = sum(len(v) for v in service_env.workload_snap.values())
    cache = PlanCache(max_size=max(2 * total_instances, 64))
    rows = []
    total_cold = total_warm = 0.0
    for kind in service_env.workload_snap:
        _end_to_end(service_env, kind, cache)  # prime
        cold = _end_to_end(service_env, kind, None)
        warm = _end_to_end(service_env, kind, cache)
        total_cold += cold
        total_warm += warm
        rows.append([kind, f"{1000 * cold:.1f}", f"{1000 * warm:.1f}"])
    print()
    print("== Plan cache — end-to-end (plan + execute), total ms ==")
    print(format_table(["type", "cold total ms", "warm total ms"], rows))
    # Generous slack: execution noise must not fail the suite, only a real
    # regression where cache lookups cost more than planning would.
    assert total_warm <= total_cold * 1.2
