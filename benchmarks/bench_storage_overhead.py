"""E4 — §6.1 temporal storage overhead.

"While we are storing 60 days of graph snapshots, the space overhead is
only 16% for the large legacy graph — as opposed to 5,900% for the
conventional approach of storing 60 separate graphs."  (The service graph's
60-day history was 6% larger.)

The transaction-time store only grows where elements change, so the
overhead equals the churn rate — independent of how many days pass.  The
naive alternative (one full copy per day) costs days × 100%.
"""

from benchmarks.support import T0

#: The paper's reported growth: dataset -> (history %, naive-60-copies %).
PAPER = {
    "service": (6.0, 5900.0),
    "legacy": (16.0, 5900.0),
}


def _measure(env) -> tuple[float, float]:
    snapshot_cells = env.snap.storage_cells()
    history_cells = env.hist.storage_cells()
    overhead = 100.0 * (history_cells - snapshot_cells) / snapshot_cells
    naive = 60 * 100.0
    return overhead, naive


def test_print_storage_overhead(service_env, legacy_flat_env):
    print()
    print("== §6.1 storage overhead of 60 days of history ==")
    for label, env in (("service", service_env), ("legacy", legacy_flat_env)):
        overhead, naive = _measure(env)
        paper_overhead, paper_naive = PAPER[label]
        print(
            f"  {label:8s} temporal store +{overhead:6.1f}% "
            f"(paper +{paper_overhead:g}%)   "
            f"60 daily copies +{naive:.0f}% (paper +{paper_naive:g}%)"
        )
        # The headline claim: two orders of magnitude below daily copies.
        assert overhead < naive / 50
        # And in the single-digit / low-double-digit band the paper reports.
        assert 0.0 < overhead < 40.0


def test_history_grows_with_change_not_time(service_env):
    """Same churn spread over more days costs the same storage."""
    from repro.inventory.churn import ChurnParams, ChurnSimulator
    from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
    from repro.schema.builtin import build_network_schema
    from repro.storage.memgraph.store import MemGraphStore
    from repro.temporal.clock import TransactionClock

    params = TopologyParams(
        services=2, vms=60, virtual_networks=15, virtual_routers=5,
        racks=3, hosts_per_rack=3, seed=20180610,
    )
    cells = {}
    for days in (10, 60):
        store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0))
        handles = VirtualizedServiceTopology(params).apply(store)
        ChurnSimulator(
            store, ChurnParams(days=days, growth_ratio=0.05, seed=5)
        ).run(handles.all_nodes(), handles.all_edges())
        cells[days] = store.storage_cells()
    ratio = cells[60] / cells[10]
    assert 0.9 < ratio < 1.15  # time alone is free; only change costs


def test_bench_storage_accounting(benchmark, service_env):
    benchmark(service_env.hist.storage_cells)
