"""Session-scoped benchmark environments (built once, shared by benches)."""

import pytest

from benchmarks.support import build_legacy_env, build_service_env


@pytest.fixture(scope="session")
def service_env():
    return build_service_env()


@pytest.fixture(scope="session")
def legacy_flat_env():
    return build_legacy_env(subclassed=False)


@pytest.fixture(scope="session")
def legacy_subclassed_env():
    return build_legacy_env(subclassed=True)
