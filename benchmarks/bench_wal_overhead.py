"""Durability ablation: what journaling and checkpointing cost at ingest.

The paper keeps its history overhead "at the few-percent level" (§6.1); the
WAL is the corresponding write-path tax.  This bench ingests the same
batched node/edge/update workload into four configurations —

* **bare** — a plain :class:`MemGraphStore`, the no-durability baseline;
* **journaled (no fsync)** — every mutation framed and written, OS-buffered;
* **journaled (fsync/commit)** — the default policy: one ``fsync`` per
  commit unit (here, per batch), the crash-safe configuration;
* **journaled + checkpoint** — fsync/commit plus a full-history compaction
  every few batches, the steady-state operating mode —

and prints throughput plus overhead relative to bare.  It then recovers
every durable directory and asserts the rebuilt history is identical, so
the bench doubles as an end-to-end durability check at benchmark scale.

``NEPAL_WAL_OPS`` scales the workload (default 3000 mutations); the CI
bench smoke shrinks it to finish in seconds.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro.schema.builtin import build_network_schema
from repro.storage.durable import DurableStore
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.wal import history_digest
from repro.temporal.clock import TransactionClock
from repro.util.text import format_table

T0 = 1_600_000_000.0
OPS = int(os.environ.get("NEPAL_WAL_OPS", "3000"))
BATCH = 50
CHECKPOINT_EVERY = 10  # batches, for the checkpointing configuration


def ingest(store, ops: int, checkpoint_every: int | None = None) -> float:
    """Run the batched workload; returns elapsed seconds."""
    hosts: list[int] = []
    started = time.perf_counter()
    done = 0
    batch_index = 0
    while done < ops:
        with store.bulk():
            for _ in range(min(BATCH, ops - done)):
                turn = done % 3
                if turn == 0 or not hosts:
                    hosts.append(store.insert_node("Host", {"name": f"h{done}"}))
                elif turn == 1:
                    vm = store.insert_node("VM", {"name": f"v{done}"})
                    store.insert_edge("OnServer", vm, hosts[done % len(hosts)])
                else:
                    store.update_element(
                        hosts[done % len(hosts)], {"status": "Amber"}
                    )
                done += 1
        store.clock.advance(1)
        batch_index += 1
        if checkpoint_every and batch_index % checkpoint_every == 0:
            store.checkpoint()
    return time.perf_counter() - started


def build_bare():
    return MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0))


def build_durable(data_dir, sync):
    return DurableStore.open(
        data_dir, build_network_schema(),
        clock=TransactionClock(start=T0), sync=sync,
    )


def test_wal_overhead_table(capsys):
    root = tempfile.mkdtemp(prefix="nepal-wal-bench-")
    try:
        bare = build_bare()
        bare_seconds = ingest(bare, OPS)
        reference = history_digest(bare)

        configs = [
            ("journaled (no fsync)", "none", None),
            ("journaled (fsync/commit)", "commit", None),
            ("journaled + checkpoint", "commit", CHECKPOINT_EVERY),
        ]
        rows = [[
            "bare", f"{bare_seconds * 1000:.1f}",
            f"{OPS / bare_seconds:.0f}", "-", "-",
        ]]
        for label, sync, every in configs:
            data_dir = os.path.join(root, sync + str(every))
            store = build_durable(data_dir, sync)
            seconds = ingest(store, OPS, checkpoint_every=every)
            assert history_digest(store) == reference
            store.close()
            overhead = 100.0 * (seconds - bare_seconds) / bare_seconds
            rows.append([
                label, f"{seconds * 1000:.1f}",
                f"{OPS / seconds:.0f}", f"{overhead:+.1f}%",
                f"{os.path.getsize(os.path.join(data_dir, 'wal.log'))}",
            ])

            # The journal must actually recover: rebuild and compare.
            recovered = build_durable(data_dir, "commit")
            assert history_digest(recovered) == reference
            recovered.close()

        with capsys.disabled():
            print()
            print(f"== WAL ingest overhead ({OPS} mutations, batches of {BATCH}) ==")
            print(format_table(
                ["configuration", "total ms", "ops/s", "overhead", "wal bytes"],
                rows,
            ))
    finally:
        shutil.rmtree(root, ignore_errors=True)
