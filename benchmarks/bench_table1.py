"""E1 — Table 1: query response times on the virtualized service graph.

Reproduces the five query types of the paper's Table 1 on the synthetic
~2k-node service topology, on both the current snapshot and the database
with a 60-day history, printing measured averages next to the paper's
numbers.  Absolute times differ from the paper's testbed; the claims under
test are the *shape* ones:

* vertical queries (top-down, bottom-up) are fast and return few paths;
* overlay/underlay navigation returns orders of magnitude more paths, and
  the 6-hop host query costs clearly more than the 4-hop one;
* full-history execution is only moderately slower than snapshot execution
  (E5; the paper's history was 6% larger than its snapshot).
"""

import pytest

from benchmarks.support import print_paper_table, sweep, timed_subset

#: Table 1 of the paper: type -> (#paths, snap seconds, hist seconds).
PAPER_TABLE_1 = {
    "top-down": (19.5, 0.058, 0.073),
    "bottom-up": (2.3, 0.061, 0.072),
    "VM-VM (4)": (215.9, 0.184, 0.206),
    "Host-Host (4)": (18.5, 0.067, 0.081),
    "Host-Host (6)": (561.7, 0.67, 0.68),
}

KINDS = list(PAPER_TABLE_1)


def test_print_table1(service_env):
    """Full 50-instance sweep for every query type (prints the table)."""
    results = [sweep(service_env, kind) for kind in KINDS]
    print_paper_table(
        "Table 1 — virtualized service graph "
        f"(history +{100 * service_env.churn_growth:.1f}%)",
        results,
        PAPER_TABLE_1,
    )
    by_kind = {result.kind: result for result in results}
    # Shape assertions from the paper:
    # vertical queries return few paths, horizontal many.
    assert by_kind["bottom-up"].avg_paths < by_kind["top-down"].avg_paths * 5
    assert by_kind["VM-VM (4)"].avg_paths > by_kind["Host-Host (4)"].avg_paths
    # Widening Host-Host from 4 to 6 hops explodes the path count and cost.
    assert by_kind["Host-Host (6)"].avg_paths > 3 * by_kind["Host-Host (4)"].avg_paths
    assert (
        by_kind["Host-Host (6)"].avg_seconds_snap
        > by_kind["Host-Host (4)"].avg_seconds_snap
    )
    # E5: history only moderately slower (paper: <30%; we allow 2x).
    for kind in ("top-down", "bottom-up", "Host-Host (4)"):
        result = by_kind[kind]
        assert result.avg_seconds_hist < max(result.avg_seconds_snap * 2.0, 0.01)


@pytest.mark.parametrize("kind", KINDS)
def test_bench_table1(benchmark, service_env, kind):
    """pytest-benchmark timing of a 10-instance slice per query type."""
    run = timed_subset(service_env, kind, count=10)
    total = benchmark(run)
    assert total >= 0


def test_table1_snapshot_smoke(service_env):
    """CI's non-blocking smoke: the snapshot-store workload end to end.

    Runs every query type against the snapshot store only (no history
    sweep) and prints the per-type timings, so the bench job's logs show
    plan-cache or traversal regressions at reduced scale
    (``NEPAL_BENCH_INSTANCES`` / ``NEPAL_CHURN_DAYS``).  Selected with
    ``-k snapshot``.
    """
    from benchmarks.support import run_instances

    for kind in KINDS:
        instances = service_env.workload_snap[kind]
        paths, seconds = run_instances(
            service_env.snap, service_env.planner(service_env.snap), instances
        )
        print(
            f"snapshot {kind}: {paths:.1f} avg paths, "
            f"{1000 * seconds:.2f} ms avg over {len(instances)} instances"
        )
        assert seconds < 5.0, f"{kind} snapshot query took {seconds:.2f}s on average"
