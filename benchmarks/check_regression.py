#!/usr/bin/env python
"""Benchmark regression gate: compare ``BENCH_*.json`` against baselines.

Each gated benchmark writes a ``gate`` section into its JSON payload::

    "gate": {
        "higher_is_better": {"min_historical_speedup": 31.2},
        "lower_is_better":  {"io_p99_ms": 12.4}
    }

Baselines live in ``benchmarks/baselines/`` under the same filename the
bench emits (``BENCH_timetravel.json`` etc.), generated at the reduced CI
scale.  A current value fails when it is worse than the baseline by more
than ``--tolerance`` (default 2.0x) in its direction — a deliberately
loose bar: machine-independent ratios and sleep-dominated serving numbers
sit well inside it, while a real 3x regression (a dropped index, an
accidentally quadratic join) blows straight through.

Exit status: 0 all gated metrics within tolerance, 1 otherwise (or when a
current file is missing its baseline, unless ``--allow-missing``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_gate(path: Path) -> dict[str, dict[str, float]]:
    with path.open(encoding="utf-8") as handle:
        payload = json.load(handle)
    gate = payload.get("gate", {})
    return {
        "higher_is_better": dict(gate.get("higher_is_better", {})),
        "lower_is_better": dict(gate.get("lower_is_better", {})),
    }


def compare(
    name: str,
    current: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    tolerance: float,
) -> list[str]:
    problems = []
    for metric, base in baseline["lower_is_better"].items():
        cur = current["lower_is_better"].get(metric)
        if cur is None:
            problems.append(f"{name}: gated metric {metric!r} missing from current run")
            continue
        if base > 0 and cur > base * tolerance:
            problems.append(
                f"{name}: {metric} regressed {cur / base:.2f}x "
                f"(current {cur:.4g} vs baseline {base:.4g}, "
                f"tolerance {tolerance}x)"
            )
    for metric, base in baseline["higher_is_better"].items():
        cur = current["higher_is_better"].get(metric)
        if cur is None:
            problems.append(f"{name}: gated metric {metric!r} missing from current run")
            continue
        if cur > 0 and base / cur > tolerance:
            problems.append(
                f"{name}: {metric} regressed {base / cur:.2f}x "
                f"(current {cur:.4g} vs baseline {base:.4g}, "
                f"tolerance {tolerance}x)"
            )
        elif cur <= 0:
            problems.append(
                f"{name}: {metric} collapsed to {cur!r} (baseline {base:.4g})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current", nargs="+", type=Path,
        help="BENCH_*.json files from the run under test",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=Path("benchmarks/baselines"),
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float, default=2.0,
        help="worse-by factor that fails the gate (default: 2.0)",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="skip (instead of fail) current files without a baseline",
    )
    args = parser.parse_args(argv)

    problems: list[str] = []
    checked = 0
    for current_path in args.current:
        if not current_path.exists():
            problems.append(f"{current_path}: current result file missing")
            continue
        baseline_path = args.baseline_dir / current_path.name
        if not baseline_path.exists():
            message = f"{current_path.name}: no baseline at {baseline_path}"
            if args.allow_missing:
                print(f"skip: {message}")
                continue
            problems.append(message)
            continue
        current = load_gate(current_path)
        baseline = load_gate(baseline_path)
        gated = sum(len(v) for v in baseline.values())
        if gated == 0:
            print(f"skip: {baseline_path.name} gates no metrics")
            continue
        found = compare(current_path.name, current, baseline, args.tolerance)
        problems.extend(found)
        checked += gated
        status = "FAIL" if found else "ok"
        print(f"{status}: {current_path.name} ({gated} gated metrics)")

    if problems:
        print(f"\nregression gate FAILED ({len(problems)} problems):", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"\nregression gate passed ({checked} metrics within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
