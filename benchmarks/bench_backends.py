"""A3 — retargetable architecture: the same queries on both backends, plus
a federated cross-backend join (§3.1, §5).

Nepal compiles one operator DAG and executes it either as in-memory
traversal (the Gremlin stand-in) or as set-at-a-time SQL (the Postgres
stand-in).  Results must be identical; relative speed is reported.  The
federation bench measures a join whose two range variables live in
different backends, with endpoint sets shipped through the Python layer.
"""

import statistics
import time

import pytest

from repro.core.federation import Federation
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.inventory.workload import table1_workload
from repro.plan.planner import Planner
from repro.schema.builtin import build_network_schema
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock

CURRENT = TimeScope.current()
T0 = 1_600_000_000.0

PARAMS = TopologyParams(
    services=6, vms=400, virtual_networks=80, virtual_routers=20,
    racks=10, hosts_per_rack=6, spine_switches=5, routers=3,
    seed=20180610,
)


@pytest.fixture(scope="module")
def twin_stores():
    mem = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0),
                        name="memgraph")
    mem_handles = VirtualizedServiceTopology(PARAMS).apply(mem)
    rel = RelationalStore(build_network_schema(), clock=TransactionClock(start=T0),
                          name="relational")
    rel_handles = VirtualizedServiceTopology(PARAMS).apply(rel)
    return (mem, mem_handles), (rel, rel_handles)


def _run_kind(store, handles, kind, count=10):
    planner = Planner(store.schema, CardinalityEstimator(store))
    workload = table1_workload(handles, instances=count, seed=4711)[kind][:count]
    durations = []
    keys = set()
    for instance in workload:
        program = planner.compile(instance.rpe)
        started = time.perf_counter()
        pathways = store.find_pathways(program, CURRENT)
        durations.append(time.perf_counter() - started)
        keys |= {p.key() for p in pathways}
    return statistics.mean(durations), keys


def test_print_backend_comparison(twin_stores):
    (mem, mem_handles), (rel, rel_handles) = twin_stores
    print()
    print("== A3: same Nepal queries on both backends ==")
    for kind in ("top-down", "bottom-up", "Host-Host (4)", "VM-VM (4)"):
        mem_time, mem_keys = _run_kind(mem, mem_handles, kind)
        rel_time, rel_keys = _run_kind(rel, rel_handles, kind)
        assert mem_keys == rel_keys, kind
        print(
            f"  {kind:14s} memgraph {mem_time * 1000:8.2f} ms   "
            f"relational {rel_time * 1000:8.2f} ms   "
            f"({rel_time / mem_time:5.1f}x)"
        )


def test_print_federated_join(twin_stores):
    (mem, mem_handles), (rel, rel_handles) = twin_stores
    federation = Federation({"cloud": mem, "assets": rel}, default="cloud")
    vnf = mem_handles.vnfs[0]
    query = (
        f"Select target(P).name From PATHS@cloud P, PATHS@assets Q "
        f"Where P MATCHES VNF(id={vnf})->[Vertical()]{{1,6}}->Host() "
        f"And Q MATCHES VM()->OnServer()->Host() "
        f"And target(P) = target(Q)"
    )
    started = time.perf_counter()
    result = federation.query(query)
    elapsed = time.perf_counter() - started
    print()
    print("== A3: federated join (memgraph ⋈ relational) ==")
    print(f"  {len(result)} joined rows in {elapsed * 1000:.1f} ms")
    assert len(result) >= 1


def test_bench_memgraph(benchmark, twin_stores):
    (mem, mem_handles), _ = twin_stores
    benchmark(lambda: _run_kind(mem, mem_handles, "top-down", count=8)[0])


def test_bench_relational(benchmark, twin_stores):
    _, (rel, rel_handles) = twin_stores
    benchmark(lambda: _run_kind(rel, rel_handles, "top-down", count=8)[0])
