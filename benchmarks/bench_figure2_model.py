"""F1 — Figure 2 structure census.

Figures 1–3 of the paper are model diagrams, not measurements; this bench
verifies the generated inventory instantiates the four-layer model (and
prints the census), plus times the model-driven checks the schema enables.
"""

from collections import Counter

from repro.storage.base import TimeScope

CURRENT = TimeScope.current()

LAYER_OF = {
    "Service": "service",
    "DNS": "service", "Firewall": "service", "LoadBalancer": "service", "EPC": "service",
    "ProxyVFC": "logical", "WebServerVFC": "logical",
    "DatabaseVFC": "logical", "PacketCoreVFC": "logical",
    "VMWare": "virtualization", "OnMetal": "virtualization", "Docker": "virtualization",
    "VirtualNetwork": "virtualization", "VirtualRouter": "virtualization",
    "Host": "physical", "TorSwitch": "physical", "SpineSwitch": "physical",
    "Router": "physical",
}

#: Vertical edge classes and the (upper layer, lower layer) pairs they may
#: connect in the Figure 2 model.
VERTICAL_DISCIPLINE = {
    "ComposedOf": {("service", "service"), ("service", "logical")},
    "OnVM": {("logical", "virtualization")},
    "OnServer": {("virtualization", "physical")},
}


def test_print_figure2_census(service_env):
    store = service_env.snap
    layers = Counter()
    for uid in store.current_uids():
        record = store.get_element(uid, CURRENT)
        if record.is_node:
            layers[LAYER_OF.get(record.cls.name, "other")] += 1
    print()
    print("== Figure 2: layered network model census ==")
    for layer in ("service", "logical", "virtualization", "physical"):
        print(f"  {layer:15s} {layers[layer]:5d} nodes")
    assert layers["other"] == 0
    assert all(layers[layer] > 0 for layer in
               ("service", "logical", "virtualization", "physical"))


def test_vertical_edges_respect_layering(service_env):
    """Every vertical edge descends the Figure 2 layers (or stays within
    the service layer for Service->VNF composition)."""
    store = service_env.snap
    checked = 0
    for uid in store.current_uids():
        record = store.get_element(uid, CURRENT)
        if record is None or record.is_node:
            continue
        if record.cls.name not in VERTICAL_DISCIPLINE:
            continue
        source = store.get_element(record.source_uid, CURRENT)
        target = store.get_element(record.target_uid, CURRENT)
        pair = (LAYER_OF[source.cls.name], LAYER_OF[target.cls.name])
        assert pair in VERTICAL_DISCIPLINE[record.cls.name], (record, pair)
        checked += 1
    assert checked > 500


def test_horizontal_edges_stay_in_layer(service_env):
    store = service_env.snap
    horizontal = store.schema.resolve("Horizontal")
    for uid in store.current_uids():
        record = store.get_element(uid, CURRENT)
        if record is None or record.is_node or not record.cls.is_subclass_of(horizontal):
            continue
        source = store.get_element(record.source_uid, CURRENT)
        target = store.get_element(record.target_uid, CURRENT)
        assert LAYER_OF[source.cls.name] == LAYER_OF[target.cls.name], record


def test_bench_census(benchmark, service_env):
    store = service_env.snap

    def census():
        return sum(
            1
            for uid in store.current_uids()
            if store.get_element(uid, CURRENT).is_node
        )

    benchmark(census)
