"""Time-travel ablation: indexed vs brute-force historical anchor scans.

Time-travel is a headline feature of the paper (§4), and before the
temporal indexes every historical anchor degraded to a scan over every
uid ever admitted.  This bench builds a ~10k-element inventory, churns it
hard (a quarter of all VMs replaced per simulated day, so dead uids pile
up well past the live population), then times `scan_atom` under current,
point-in-time and range scopes with ``temporal_index_enabled`` flipped on
and off.  Every timed pair is also checked for identical results, so the
ablation doubles as a differential test at benchmark scale.

Results land in ``BENCH_timetravel.json`` (uploaded as a CI artifact) so
the perf trajectory is tracked from the PR that introduced the indexes.

``NEPAL_TT_ELEMENTS`` / ``NEPAL_TT_DAYS`` scale the inventory and the
churn history (CI's bench smoke shrinks both); ``NEPAL_TT_REPEAT`` is the
best-of repetition count.  At full scale the bench asserts the >= 10x
speedup the indexes were built for; at reduced scale it only asserts the
indexes never lose to the scan.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.rpe.parser import parse_rpe
from repro.schema.builtin import build_network_schema
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock
from repro.util.text import format_table

T0 = 1_600_000_000.0
DAY = 86_400.0

ELEMENTS = int(os.environ.get("NEPAL_TT_ELEMENTS", "10000"))
DAYS = int(os.environ.get("NEPAL_TT_DAYS", "45"))
REPEAT = int(os.environ.get("NEPAL_TT_REPEAT", "3"))
JSON_PATH = os.environ.get("NEPAL_TT_JSON", "BENCH_timetravel.json")

#: The acceptance target only applies at the 10k-element/high-churn scale
#: the ISSUE names; the reduced CI smoke just guards the sign.
FULL_SCALE = ELEMENTS >= 10_000

CHURN_FRACTION = 0.4  # of live VMs replaced per simulated day
SEED = 20180612


def build_churned_store() -> MemGraphStore:
    """~ELEMENTS initial elements, then DAYS days of heavy VM turnover."""
    rng = random.Random(SEED)
    store = MemGraphStore(
        build_network_schema(),
        clock=TransactionClock(start=T0),
        indexed_fields=("name", "status"),
    )
    n_hosts = max(ELEMENTS // 20, 4)
    n_vms = max((ELEMENTS - n_hosts) // 2, 8)

    hosts: list[int] = []
    with store.bulk():
        for i in range(n_hosts):
            hosts.append(
                store.insert_node("Host", {"name": f"h{i}", "status": "Green"})
            )

    serial = 0
    vm_edge: dict[int, int] = {}

    def spawn_vm() -> None:
        nonlocal serial
        status = rng.choice(("Green", "Amber", "Red"))
        uid = store.insert_node("VM", {"name": f"v{serial}", "status": status})
        vm_edge[uid] = store.insert_edge("OnServer", uid, hosts[serial % n_hosts])
        serial += 1

    with store.bulk():
        for _ in range(n_vms):
            spawn_vm()

    for _ in range(DAYS):
        store.clock.advance(DAY)
        doomed = rng.sample(sorted(vm_edge), int(len(vm_edge) * CHURN_FRACTION))
        with store.bulk():
            for uid in doomed:
                store.delete_element(vm_edge.pop(uid))
                store.delete_element(uid)
            for _ in doomed:
                spawn_vm()
            for host in rng.sample(hosts, max(len(hosts) // 10, 1)):
                store.update_element(
                    host, {"status": rng.choice(["Green", "Amber", "Red"])}
                )
    store.clock.advance(DAY)
    return store


def timed(fn):
    """(best-of-REPEAT seconds, last result)."""
    best = None
    result = None
    for _ in range(REPEAT):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def digest(records) -> set[tuple]:
    return {(r.uid, r.period.start) for r in records}


def test_time_travel_table(capsys):
    store = build_churned_store()
    end = store.clock.now()
    mid = (T0 + end) / 2

    cases = [
        ("VM() current", "VM()", TimeScope.current()),
        ("VM() AT t_mid", "VM()", TimeScope.at(mid)),
        ("VM() AT t0", "VM()", TimeScope.at(T0)),
        ("VM(status='Green') AT t_mid", "VM(status='Green')", TimeScope.at(mid)),
        ("VM(name='v10') AT t0", "VM(name='v10')", TimeScope.at(T0)),
        ("Host(status='Amber') AT t_mid", "Host(status='Amber')", TimeScope.at(mid)),
        ("VM() RANGE [t_mid, +1d)", "VM()", TimeScope.between(mid, mid + DAY)),
    ]

    rows = []
    table_rows = []
    for label, atom_text, scope in cases:
        atom = parse_rpe(atom_text).bind(store.schema)

        store.temporal_index_enabled = True
        indexed_s, indexed_result = timed(lambda: store.scan_atom(atom, scope))
        store.temporal_index_enabled = False
        try:
            scan_s, scan_result = timed(lambda: store.scan_atom(atom, scope))
        finally:
            store.temporal_index_enabled = True

        # Zero result diffs: the ablation is also a correctness oracle.
        assert digest(indexed_result) == digest(scan_result), label

        speedup = scan_s / indexed_s if indexed_s > 0 else float("inf")
        rows.append({
            "label": label,
            "historical": not scope.is_current,
            "matches": len(indexed_result),
            "indexed_ms": indexed_s * 1000,
            "scan_ms": scan_s * 1000,
            "speedup": speedup,
        })
        table_rows.append([
            label, f"{len(indexed_result)}",
            f"{indexed_s * 1000:.2f}", f"{scan_s * 1000:.2f}", f"{speedup:.1f}x",
        ])

    historical = [row for row in rows if row["historical"]]
    min_speedup = min(row["speedup"] for row in historical)
    current_speedup = min(
        row["speedup"] for row in rows if not row["historical"]
    )

    payload = {
        "bench": "time_travel",
        "elements": ELEMENTS,
        "days": DAYS,
        "repeat": REPEAT,
        "full_scale": FULL_SCALE,
        "churn_fraction": CHURN_FRACTION,
        "uids_ever": len(store.known_uids()),
        "live": {name: store.class_count(name) for name in ("Host", "VM", "OnServer")},
        "rows": rows,
        "min_historical_speedup": min_speedup,
        "current_speedup": current_speedup,
        # Machine-independent ratios, compared against the committed
        # baseline by benchmarks/check_regression.py in CI.  The current
        # cell is gated too: the cost-gated class index plus the batch
        # engine must never lose to a brute live scan again.
        "gate": {
            "higher_is_better": {
                "min_historical_speedup": min_speedup,
                "current_speedup": current_speedup,
            },
            "lower_is_better": {},
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    with capsys.disabled():
        print()
        print(
            f"== time-travel anchor scans ({ELEMENTS} elements, {DAYS} churn days, "
            f"{payload['uids_ever']} uids ever) =="
        )
        print(format_table(
            ["scan", "#matches", "indexed ms", "scan ms", "speedup"], table_rows,
        ))
        print(f"(written to {JSON_PATH})")

    # The indexes must never lose to the scan — current scope included;
    # at the ISSUE's named scale the historical hot path must be at least
    # an order of magnitude ahead.
    assert min_speedup > 1.0
    assert current_speedup >= 1.0, payload
    if FULL_SCALE:
        assert min_speedup >= 10.0, payload
