"""A2 — ExtendBlock fusion ablation (§5.2), relational backend.

The paper fuses chains of Extend operators into ExtendBlock "to improve
efficiency by keeping the data in the Gremlin database for multiple
operators (avoiding data transfer overheads)".  Our relational target is
*embedded* SQLite, where there is no client-server transfer to save — so
the expected finding differs from the paper's motivation: fusion roughly
halves the number of SQL statements and TEMP tables, but the fused
multi-join can be slower than materializing intermediates, because SQLite
re-derives the UNION-ALL class views inside each join.

Both configurations must return identical pathway sets.
"""

import statistics
import time

from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.plan.planner import Planner
from repro.schema.builtin import build_network_schema
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock

import pytest

CURRENT = TimeScope.current()
T0 = 1_600_000_000.0

PARAMS = TopologyParams(
    services=6, vms=400, virtual_networks=80, virtual_routers=20,
    racks=10, hosts_per_rack=6, spine_switches=5, routers=3,
    seed=20180610,
)


@pytest.fixture(scope="module")
def stores():
    built = {}
    for fused in (True, False):
        store = RelationalStore(
            build_network_schema(), clock=TransactionClock(start=T0),
            use_extend_block=fused, name=f"rel-fused-{fused}",
        )
        handles = VirtualizedServiceTopology(PARAMS).apply(store)
        built[fused] = (store, handles)
    return built


def _workload(handles, count=12):
    from repro.inventory.workload import table1_workload

    return table1_workload(handles, instances=count, seed=4711)["top-down"][:count]


def _run(store, handles, count=12):
    planner = Planner(store.schema, CardinalityEstimator(store))
    durations = []
    keys = []
    statements = 0
    for instance in _workload(handles, count):
        program = planner.compile(instance.rpe)
        statements += len(store.sql_trace(program, CURRENT))
        started = time.perf_counter()
        pathways = store.find_pathways(program, CURRENT)
        durations.append(time.perf_counter() - started)
        keys.append(frozenset(p.key() for p in pathways))
    return statistics.mean(durations), statements, keys


def test_print_extendblock_ablation(stores):
    fused_time, fused_statements, fused_keys = _run(*stores[True])
    plain_time, plain_statements, plain_keys = _run(*stores[False])
    print()
    print("== A2: ExtendBlock fusion ablation (relational backend) ==")
    print(f"  fused:   {fused_statements:4d} SQL statements, {fused_time * 1000:8.2f} ms avg")
    print(f"  unfused: {plain_statements:4d} SQL statements, {plain_time * 1000:8.2f} ms avg")
    print(
        "  finding: fusion saves statements "
        f"({plain_statements / fused_statements:.1f}x fewer) but on embedded "
        "SQLite there is no transfer overhead to amortize — see EXPERIMENTS.md"
    )
    assert fused_keys == plain_keys
    # The structural claim that motivates the operator: fewer statements.
    assert fused_statements < plain_statements


def test_bench_fused(benchmark, stores):
    store, handles = stores[True]
    benchmark(lambda: _run(store, handles, count=5)[0])


def test_bench_unfused(benchmark, stores):
    store, handles = stores[False]
    benchmark(lambda: _run(store, handles, count=5)[0])
