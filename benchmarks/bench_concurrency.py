"""Concurrent read serving: throughput & latency vs reader-thread count.

The concurrency subsystem promises that many threads can serve queries
against consistent snapshot views while a single writer commits.  This
bench measures exactly that promise on the virtualized service topology:

* **cpu mode** — readers issue back-to-back ``db.query`` calls.  Pure
  Python holds the GIL, so thread scaling here reports what the runtime
  can and cannot give; it is printed but not gated.
* **io mode** — each request also waits ``NEPAL_CC_IO_MS`` of simulated
  downstream I/O (client network, disk, an RPC fan-out), released from
  the GIL like any real ``select``/``read``.  This is the serving shape
  the HTTP front end exists for, and where thread scaling is load-bearing:
  the bench asserts ≥2x read throughput at 4 threads vs 1.

Every cell runs twice: without a writer, and with a concurrent churn
writer flipping VM statuses through the single-writer commit gate — the
"with writer" columns show what read latency pays for concurrent commits.

Results land in ``BENCH_concurrency.json`` with a ``gate`` section the CI
regression check compares against ``benchmarks/baselines/``.

Env knobs: ``NEPAL_CC_SECONDS`` per-cell duration, ``NEPAL_CC_IO_MS``
simulated per-request I/O, ``NEPAL_CC_THREADS`` comma-separated thread
counts, ``NEPAL_CC_JSON`` output path.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import threading
import time

from repro.core.database import NepalDB
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.inventory.workload import table1_workload
from repro.util.text import format_table

SECONDS = float(os.environ.get("NEPAL_CC_SECONDS", "1.0"))
IO_MS = float(os.environ.get("NEPAL_CC_IO_MS", "4.0"))
THREADS = [int(t) for t in os.environ.get("NEPAL_CC_THREADS", "1,2,4").split(",")]
JSON_PATH = os.environ.get("NEPAL_CC_JSON", "BENCH_concurrency.json")

SEED = 20180613
MIN_IO_SCALING = 2.0


def build_db() -> tuple[NepalDB, list[int], list[str]]:
    """A served database, the VM uids the churn writer flips, and a
    corpus of paper-workload NPQL texts."""
    db = NepalDB()  # wall transaction clock, like a deployment
    handles = VirtualizedServiceTopology(TopologyParams(seed=SEED)).apply(db.store)
    # Placement point lookups — the monitoring-style requests a serving
    # tier answers in volume ("where does this VM run right now?").  The
    # heavy analytical kinds of Table 1 are benched elsewhere; their
    # multi-hundred-ms tails would measure the GIL, not the server.
    rng = random.Random(SEED)
    corpus = [
        f"Retrieve P From PATHS P Where P MATCHES VM(id={vm})->OnServer()->Host()"
        for vm in rng.sample(handles.vms, 16)
    ]
    # Prime parse/typecheck/plan caches so cells measure serving, not warmup.
    for text in corpus:
        db.query(text)
    return db, handles.vms, corpus


def run_cell(
    db: NepalDB,
    corpus: list[str],
    threads: int,
    io_s: float,
    writer_vms: list[int] | None,
) -> dict[str, float]:
    """One duration-based serving cell; returns qps and latency quantiles."""
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(threads)]
    errors: list[BaseException] = []

    def reader(slot: int) -> None:
        rng = random.Random(SEED + slot)
        own = latencies[slot]
        try:
            while not stop.is_set():
                text = corpus[rng.randrange(len(corpus))]
                started = time.perf_counter()
                db.query(text)
                if io_s:
                    time.sleep(io_s)
                own.append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)

    def writer() -> None:
        rng = random.Random(SEED ^ 0xC0FFEE)
        statuses = ("Green", "Amber", "Red")
        try:
            while not stop.is_set():
                uid = writer_vms[rng.randrange(len(writer_vms))]
                db.update(uid, {"status": rng.choice(statuses)})
                time.sleep(0.001)
        except BaseException as error:  # noqa: BLE001
            errors.append(error)

    workers = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(threads)
    ]
    if writer_vms is not None:
        workers.append(threading.Thread(target=writer, daemon=True))
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    time.sleep(SECONDS)
    stop.set()
    for worker in workers:
        worker.join(timeout=30)
        assert not worker.is_alive(), "serving cell failed to drain"
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]

    merged = sorted(lat for own in latencies for lat in own)
    assert merged, "cell completed zero requests"
    return {
        "requests": len(merged),
        "qps": len(merged) / elapsed,
        "p50_ms": 1000 * statistics.quantiles(merged, n=100)[49]
        if len(merged) >= 100
        else 1000 * statistics.median(merged),
        "p99_ms": 1000 * statistics.quantiles(merged, n=100)[98]
        if len(merged) >= 100
        else 1000 * merged[-1],
    }


def test_concurrent_read_serving(capsys):
    db, vms, corpus = build_db()

    # Calibrate the simulated I/O so it dominates a single query's CPU —
    # the serving regime the front end runs in.  Below that, 4 Python
    # threads cannot beat 1 (the GIL serializes the CPU part) and the
    # cell would measure the runtime, not the subsystem.  The mean
    # (1/qps), not the median, sets the floor: the corpus is tail-heavy
    # and it is the tail that serializes.
    calibration = run_cell(db, corpus, threads=1, io_s=0.0, writer_vms=None)
    io_s = max(IO_MS / 1000.0, 3.0 / calibration["qps"])

    cells: list[dict[str, object]] = []
    table_rows = []
    for mode, mode_io in (("cpu", 0.0), ("io", io_s)):
        for threads in THREADS:
            for with_writer in (False, True):
                cell = run_cell(
                    db, corpus, threads, mode_io, vms if with_writer else None
                )
                cells.append(
                    {
                        "mode": mode,
                        "threads": threads,
                        "writer": with_writer,
                        **cell,
                    }
                )
                table_rows.append([
                    mode,
                    str(threads),
                    "yes" if with_writer else "no",
                    f"{cell['qps']:.0f}",
                    f"{cell['p50_ms']:.2f}",
                    f"{cell['p99_ms']:.2f}",
                ])

    def qps(mode: str, threads: int, writer: bool = False) -> float:
        for cell in cells:
            if (
                cell["mode"] == mode
                and cell["threads"] == threads
                and cell["writer"] == writer
            ):
                return cell["qps"]  # type: ignore[return-value]
        raise KeyError((mode, threads, writer))

    io_scaling = qps("io", max(THREADS)) / qps("io", min(THREADS))
    cpu_scaling = qps("cpu", max(THREADS)) / qps("cpu", min(THREADS))
    writer_cost = qps("io", max(THREADS)) / qps("io", max(THREADS), writer=True)

    payload = {
        "bench": "concurrency",
        "seconds_per_cell": SECONDS,
        "io_ms": io_s * 1000,
        "threads": THREADS,
        "corpus": len(corpus),
        "calibration_p50_ms": calibration["p50_ms"],
        "cells": cells,
        "read_scaling": {"io": io_scaling, "cpu": cpu_scaling},
        "writer_slowdown_io": writer_cost,
        "commits": db.write_gate.commits,
        "gate": {
            "higher_is_better": {
                "io_read_scaling": io_scaling,
                "io_qps_max_threads": qps("io", max(THREADS)),
                "io_qps_with_writer": qps("io", max(THREADS), writer=True),
            },
            "lower_is_better": {},
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    with capsys.disabled():
        print()
        print(
            f"== concurrent read serving ({SECONDS:.1f}s cells, "
            f"{io_s * 1000:.1f}ms simulated I/O, corpus {len(corpus)}) =="
        )
        print(format_table(
            ["mode", "threads", "writer", "qps", "p50 ms", "p99 ms"], table_rows
        ))
        print(
            f"io-mode read scaling {min(THREADS)}->{max(THREADS)} threads: "
            f"{io_scaling:.2f}x   (cpu-mode, ungated: {cpu_scaling:.2f}x)"
        )
        print(f"concurrent-writer slowdown (io mode): {writer_cost:.2f}x")
        print(f"(written to {JSON_PATH})")

    # The acceptance bar: serving-shaped reads scale ≥2x from 1 to 4
    # threads.  (Pure-CPU scaling is reported above but not asserted —
    # the GIL owns that number, not this subsystem.)
    if min(THREADS) == 1 and max(THREADS) >= 4:
        assert io_scaling >= MIN_IO_SCALING, payload["read_scaling"]
