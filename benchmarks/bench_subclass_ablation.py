"""E3 — the §6 subclass-refinement experiment.

"We created 66 subclasses, one for each possible edge type_indicator value,
and loaded a graph from the most recent day's data. ... Reverse service
path: average of 8.390 sec [from 9.844].  Bottom up: average of .049 sec
[from .672] — fast enough for interactive applications."

The same generated graph is loaded twice: once with one node class and one
edge class (type indicators kept as fields, queries filter on the
``category`` field), once with the 66 edge subclasses (queries name the
``CircuitEdge``/``VerticalEdge`` concept classes).  The mechanism under
test is "the automatic elimination of many useless edges from the
navigation joins": class-partitioned adjacency skips the noise edges that
the flat load must fetch and filter one by one.

Expected shape: bottom-up improves several-fold (paper: ~14x, driven by hub
nodes whose in-edges are almost all irrelevant — the measured factor scales
with the hub noise volume, i.e. with NEPAL_BENCH_SCALE); reverse path
improves only moderately (its fanout is mostly *relevant* edges).
"""

from benchmarks.support import run_instances, sweep

#: §6 in-text numbers: (flat seconds, subclassed seconds).
PAPER = {
    "reverse path": (9.844, 8.390),
    "bottom-up": (0.672, 0.049),
}


def test_print_subclass_ablation(legacy_flat_env, legacy_subclassed_env):
    print()
    print("== §6 subclass refinement ablation (legacy topology) ==")
    rows = []
    measured = {}
    for kind in ("service path", "reverse path", "top-down", "bottom-up"):
        flat = sweep(legacy_flat_env, kind)
        sub = sweep(legacy_subclassed_env, kind)
        measured[kind] = (flat, sub)
        speedup = (
            flat.avg_seconds_snap / sub.avg_seconds_snap
            if sub.avg_seconds_snap
            else float("inf")
        )
        paper_flat, paper_sub = PAPER.get(kind, (0.0, 0.0))
        paper_note = (
            f"paper {paper_flat / paper_sub:.1f}x" if paper_sub else "paper n/a"
        )
        rows.append(
            f"  {kind:13s} flat {flat.avg_seconds_snap * 1000:8.1f} ms -> "
            f"subclassed {sub.avg_seconds_snap * 1000:8.1f} ms "
            f"({speedup:5.1f}x; {paper_note})"
        )
    print("\n".join(rows))

    # Results must be identical — only the physical layout changed.
    for kind, (flat, sub) in measured.items():
        assert abs(flat.avg_paths - sub.avg_paths) < 1e-9, kind

    flat_bu, sub_bu = measured["bottom-up"]
    flat_rp, sub_rp = measured["reverse path"]
    bottom_up_speedup = flat_bu.avg_seconds_snap / max(sub_bu.avg_seconds_snap, 1e-9)
    reverse_speedup = flat_rp.avg_seconds_snap / max(sub_rp.avg_seconds_snap, 1e-9)
    # The paper's qualitative findings:
    assert bottom_up_speedup > 3.0, "bottom-up should improve drastically"
    assert reverse_speedup < bottom_up_speedup, (
        "reverse path improves only moderately (fanout is mostly relevant)"
    )
    # Subclassed bottom-up is interactive.
    assert sub_bu.avg_seconds_snap < 0.05


def test_bench_bottom_up_flat(benchmark, legacy_flat_env):
    env = legacy_flat_env
    instances = env.workload_snap["bottom-up"][:10]

    def run():
        return run_instances(env.snap, env.planner(env.snap), instances)

    benchmark(run)


def test_bench_bottom_up_subclassed(benchmark, legacy_subclassed_env):
    env = legacy_subclassed_env
    instances = env.workload_snap["bottom-up"][:10]

    def run():
        return run_instances(env.snap, env.planner(env.snap), instances)

    benchmark(run)
