"""E2 — Table 2: query response times on the legacy topology.

The synthetic legacy graph is scaled down from AT&T's 1.6M nodes / 7.1M
edges (see DESIGN.md); the claims under test are the relative ones the
paper reports:

* forward-anchored queries (service path, top-down) run fast;
* the reverse service-path query "returns a huge number of results" and is
  orders of magnitude more expensive;
* the bottom-up query is the pathological one on the flat load (measured
  separately in the subclass ablation);
* history execution is only moderately slower (the paper's legacy history
  was 16% larger).

The default (flat single-class) load is benchmarked here, matching the
paper's original Table 2 run.
"""

import pytest

from benchmarks.support import print_paper_table, sweep, timed_subset

#: Table 2 of the paper: type -> (#paths, snap seconds, hist seconds).
PAPER_TABLE_2 = {
    "service path": (32.9, 0.038, 0.040),
    "reverse path": (391_000, 9.844, 9.520),
    "top-down": (4.4, 0.029, 0.039),
    "bottom-up": (73.18, 0.672, 0.772),
}

KINDS = list(PAPER_TABLE_2)


def test_print_table2(legacy_flat_env):
    results = [sweep(legacy_flat_env, kind) for kind in KINDS]
    print_paper_table(
        "Table 2 — legacy topology, flat single-class load "
        f"(history +{100 * legacy_flat_env.churn_growth:.1f}%)",
        results,
        PAPER_TABLE_2,
    )
    by_kind = {result.kind: result for result in results}
    # Reverse path dominates both path count and cost (the deep-mining query).
    assert by_kind["reverse path"].avg_paths > 10 * by_kind["service path"].avg_paths
    assert (
        by_kind["reverse path"].avg_seconds_snap
        > 5 * by_kind["service path"].avg_seconds_snap
    )
    # Forward-anchored queries are interactive-fast.
    assert by_kind["service path"].avg_seconds_snap < 0.1
    assert by_kind["top-down"].avg_seconds_snap < 0.1


@pytest.mark.parametrize("kind", KINDS)
def test_bench_table2(benchmark, legacy_flat_env, kind):
    count = 3 if kind == "reverse path" else 10
    run = timed_subset(legacy_flat_env, kind, count=count)
    total = benchmark(run)
    assert total >= 0
