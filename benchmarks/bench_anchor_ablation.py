"""A1 — anchor selection ablation (§5.1).

The paper's planner picks the lowest-cardinality atom as the anchor; this
bench forces the *other* end of the paper's vertical query and measures the
penalty.  For ``VNF(id=…)->[Vertical()]{1,6}->Host()``:

* natural anchor: the id-pinned VNF (cardinality 1) — forward extension
  from one seed;
* forced anchor: the bare ``Host()`` atom (hundreds of seeds) — backward
  extension from every host, almost all of which lead nowhere relevant.

The same pathway sets must come back either way; only the work changes.
This quantifies why §3.3 requires anchored RPEs at all.
"""

import statistics
import time

from repro.plan.planner import Planner, PlannerOptions
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope

CURRENT = TimeScope.current()


def _run(env, forced_anchor, instances):
    store = env.snap
    options = PlannerOptions(forced_anchor=forced_anchor)
    planner = Planner(store.schema, CardinalityEstimator(store), options)
    durations = []
    keys = []
    for instance in instances:
        program = planner.compile(instance.rpe)
        started = time.perf_counter()
        pathways = store.find_pathways(program, CURRENT)
        durations.append(time.perf_counter() - started)
        keys.append(frozenset(p.key() for p in pathways))
    return statistics.mean(durations), keys


def test_print_anchor_ablation(service_env):
    instances = service_env.workload_snap["top-down"][:15]
    natural_time, natural_keys = _run(service_env, None, instances)
    forced_time, forced_keys = _run(service_env, "Host", instances)
    print()
    print("== A1: anchor selection ablation (top-down vertical query) ==")
    print(f"  natural anchor (VNF(id=…), cardinality 1): {natural_time * 1000:8.2f} ms")
    print(f"  forced anchor  (Host(), cardinality ~200): {forced_time * 1000:8.2f} ms")
    print(f"  penalty: {forced_time / natural_time:5.1f}x")
    # Identical answers regardless of plan.
    assert natural_keys == forced_keys
    # The cheap anchor matters: a bad choice costs at least several-fold.
    assert forced_time > 3 * natural_time


def test_planner_picks_the_cheap_anchor(service_env):
    """The cost model must choose the id-pinned atom without being told."""
    store = service_env.snap
    planner = service_env.planner(store)
    vnf = service_env.handles.vnfs[0]
    program = planner.compile(f"VNF(id={vnf})->[Vertical()]{{1,6}}->Host()")
    assert program.anchor_plan.splits[0].anchor.class_name == "VNF"
    program = planner.compile(f"VNF()->[Vertical()]{{1,6}}->Host(id={service_env.handles.hosts[0]})")
    assert program.anchor_plan.splits[0].anchor.class_name == "Host"


def test_bench_natural_anchor(benchmark, service_env):
    instances = service_env.workload_snap["top-down"][:10]

    def run():
        return _run(service_env, None, instances)[0]

    benchmark(run)


def test_bench_forced_anchor(benchmark, service_env):
    instances = service_env.workload_snap["top-down"][:10]

    def run():
        return _run(service_env, "Host", instances)[0]

    benchmark(run)
