"""Replication: ship+apply throughput, steady-state lag, replica reads.

The replication subsystem promises three things this bench measures:

* **ship+apply throughput** — how fast a replica can ingest a primary's
  journal through ``read_wal`` → ``replication_apply`` (the bulk of a
  catch-up after downtime).  Reported as records/s and gated.
* **steady-state lag** — with a primary taking writes over HTTP and a
  real puller streaming them, how far behind does the replica sit?
  Reported (records and seconds); the *gate* is catch-up completeness —
  once writes stop, the replica must reach the primary's exact LSN.
* **replica read parity** — a replica must answer the paper corpus at
  near-primary speed (same store, same indexes; replication adds no read
  tax).  Gated as a ratio, which keeps it machine-independent.

Results land in ``BENCH_replication.json`` with a ``gate`` section the CI
regression check compares against ``benchmarks/baselines/``.

Env knobs: ``NEPAL_REP_RECORDS`` journal size for the throughput phase,
``NEPAL_REP_SECONDS`` duration of the steady-state churn phase,
``NEPAL_REP_JSON`` output path.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.core.database import NepalDB
from repro.server import NepalClient, NepalServer, ServerConfig
from repro.util.text import format_table

RECORDS = int(os.environ.get("NEPAL_REP_RECORDS", "2000"))
SECONDS = float(os.environ.get("NEPAL_REP_SECONDS", "2.0"))
JSON_PATH = os.environ.get("NEPAL_REP_JSON", "BENCH_replication.json")

CORPUS = [
    "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Retrieve P From PATHS P Where P MATCHES Host()",
]


def bench_ship_apply(tmp_dir: str) -> dict:
    """Throughput of the raw journal pipe, no HTTP in the way."""
    primary = NepalDB(data_dir=os.path.join(tmp_dir, "ship-primary"))
    host = primary.insert_node("Host", {"name": "h0"})
    for i in range(RECORDS - 1):
        vm = primary.insert_node("VM", {"name": f"vm{i}"})
        if i % 8 == 0:
            primary.insert_edge("OnServer", vm, host)
    source = primary.durable_store()
    wal_bytes, _ = source.read_wal(0, limit=1 << 30)

    replica = NepalDB(data_dir=os.path.join(tmp_dir, "ship-replica"))
    target = replica.durable_store()
    target.begin_replication("bench")
    chunk = 1 << 16
    started = time.perf_counter()
    applied = 0
    for offset in range(0, len(wal_bytes), chunk):
        result = target.replication_apply(wal_bytes[offset:offset + chunk])
        applied += result.applied
    elapsed = time.perf_counter() - started
    assert target.last_lsn == source.last_lsn, "replica did not converge"
    primary.close()
    replica.close()
    return {
        "records": applied,
        "journal_bytes": len(wal_bytes),
        "seconds": elapsed,
        "records_per_s": applied / elapsed,
        "mb_per_s": len(wal_bytes) / elapsed / 1e6,
    }


def bench_steady_state(tmp_dir: str) -> dict:
    """Real HTTP shipping under live writes: lag samples + catch-up."""
    primary_db = NepalDB(data_dir=os.path.join(tmp_dir, "live-primary"))
    primary = NepalServer(primary_db, ServerConfig(port=0))
    primary.start()
    replica_db = NepalDB(data_dir=os.path.join(tmp_dir, "live-replica"))
    replica = NepalServer(replica_db, ServerConfig(port=0))
    replica.start()
    try:
        puller = replica.replication.become_replica(
            "%s:%d" % primary.address, poll_interval=0.01
        )
        client = NepalClient(*primary.address)
        lag_samples: list[float] = []
        writes = 0
        deadline = time.monotonic() + SECONDS
        while time.monotonic() < deadline:
            client.insert_node("VM", {"name": f"live{writes}"})
            writes += 1
            lag_samples.append(
                replica_db.metrics.gauge_value("replication.lag_records") or 0.0
            )
        caught_up = puller.wait_caught_up(timeout=30.0)
        complete = bool(
            caught_up
            and replica_db.durable_store().last_lsn
            == primary_db.durable_store().last_lsn
        )
        return {
            "writes": writes,
            "writes_per_s": writes / SECONDS,
            "lag_records_mean": statistics.fmean(lag_samples) if lag_samples else 0.0,
            "lag_records_max": max(lag_samples) if lag_samples else 0.0,
            "catch_up_complete": complete,
        }
    finally:
        replica.graceful_stop()
        primary.graceful_stop()


def bench_read_parity(tmp_dir: str) -> dict:
    """Paper-corpus latency on the replica vs the primary."""
    primary_db = NepalDB(data_dir=os.path.join(tmp_dir, "read-primary"))
    primary = NepalServer(primary_db, ServerConfig(port=0))
    primary.start()
    replica_db = NepalDB(data_dir=os.path.join(tmp_dir, "read-replica"))
    replica = NepalServer(replica_db, ServerConfig(port=0))
    replica.start()
    try:
        primary_client = NepalClient(*primary.address)
        hosts = [primary_client.insert_node("Host", {"name": f"h{i}"})
                 for i in range(4)]
        for i in range(48):
            vm = primary_client.insert_node("VM", {"name": f"v{i}"})
            primary_client.insert_edge("OnServer", vm, hosts[i % 4])
        puller = replica.replication.become_replica("%s:%d" % primary.address)
        assert puller.wait_caught_up(timeout=30.0)
        replica_client = NepalClient(*replica.address)

        def qps(client: NepalClient) -> float:
            # Warm both plan caches, then measure.
            for query in CORPUS:
                client.query(query)
            count = 0
            started = time.perf_counter()
            while time.perf_counter() - started < max(0.5, SECONDS / 2):
                client.query(CORPUS[count % len(CORPUS)])
                count += 1
            return count / (time.perf_counter() - started)

        primary_qps = qps(primary_client)
        replica_qps = qps(replica_client)
        return {
            "primary_qps": primary_qps,
            "replica_qps": replica_qps,
            "parity": replica_qps / primary_qps,
        }
    finally:
        replica.graceful_stop()
        primary.graceful_stop()


def test_replication_bench(tmp_path, capsys):
    ship = bench_ship_apply(str(tmp_path))
    steady = bench_steady_state(str(tmp_path))
    parity = bench_read_parity(str(tmp_path))

    payload = {
        "bench": "replication",
        "records": RECORDS,
        "seconds": SECONDS,
        "ship_apply": ship,
        "steady_state": steady,
        "read_parity": parity,
        "gate": {
            "higher_is_better": {
                "ship_apply_records_per_s": ship["records_per_s"],
                "catch_up_complete": 1.0 if steady["catch_up_complete"] else 0.0,
                "replica_read_parity": parity["parity"],
            },
            "lower_is_better": {},
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    with capsys.disabled():
        print()
        print(f"== replication ({RECORDS} records shipped, "
              f"{SECONDS:.1f}s churn) ==")
        print(format_table(
            ["phase", "metric", "value"],
            [
                ["ship+apply", "records/s", f"{ship['records_per_s']:.0f}"],
                ["ship+apply", "MB/s", f"{ship['mb_per_s']:.2f}"],
                ["steady-state", "writes/s", f"{steady['writes_per_s']:.0f}"],
                ["steady-state", "mean lag (records)",
                 f"{steady['lag_records_mean']:.2f}"],
                ["steady-state", "max lag (records)",
                 f"{steady['lag_records_max']:.0f}"],
                ["steady-state", "catch-up complete",
                 str(steady["catch_up_complete"])],
                ["reads", "primary qps", f"{parity['primary_qps']:.0f}"],
                ["reads", "replica qps", f"{parity['replica_qps']:.0f}"],
                ["reads", "parity", f"{parity['parity']:.2f}x"],
            ],
        ))
        print(f"(written to {JSON_PATH})")

    # Correctness bars (the perf bars live in check_regression.py).
    assert steady["catch_up_complete"], "replica never converged after churn"
    assert parity["parity"] > 0.3, (
        "replica reads are dramatically slower than primary reads: "
        f"{parity['parity']:.2f}x"
    )
