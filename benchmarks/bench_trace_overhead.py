"""Tracing overhead: the disabled path must be effectively free.

Per-query tracing is opt-in, so its cost model has two sides:

* **disabled** — every instrumentation point in the executor, traversal
  and metrics layers guards itself with one ``ContextVar`` read
  (:func:`~repro.stats.tracing.current_trace`) and, on the span sites,
  the shared no-op :data:`~repro.stats.tracing.NULL_SPAN`.  This bench
  counts how many guard touches one warm query actually performs (from a
  traced run's span/counter census), times the guard primitive in
  isolation, and asserts the summed guard cost stays **under 5%** of the
  measured warm query latency;
* **enabled** — a full span tree per query.  The traced/untraced latency
  ratio is recorded and gated (machine-independent) so tracing staying
  "cheap enough to sample in production" is a tested property, not a
  hope.

``NEPAL_TRACE_REPS`` overrides the repetition count (CI uses a small
value); the JSON payload lands in ``BENCH_trace_overhead.json`` for
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.database import NepalDB
from repro.stats.tracing import TraceContext, current_trace
from repro.util.text import format_table

MAX_DISABLED_OVERHEAD_PCT = 5.0
REPS = int(os.environ.get("NEPAL_TRACE_REPS", "40"))
JSON_PATH = os.environ.get("NEPAL_TRACE_JSON", "BENCH_trace_overhead.json")

QUERIES = (
    "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Select source(P).name From PATHS P Where P MATCHES VM(status='Green')",
    "Select source(P).name, target(P).name "
    "From PATHS P Where P MATCHES Service()->ComposedOf()->VNF()",
    "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,5}->Host()",
)


def _build_db() -> NepalDB:
    db = NepalDB()
    hosts = [db.insert_node("Host", {"name": f"h{i}"}) for i in range(6)]
    service = db.insert_node("Service", {"name": "svc", "customer": "acme"})
    for i in range(3):
        vnf = db.insert_node("Firewall", {"name": f"fw{i}", "status": "Green"})
        db.insert_edge("ComposedOf", service, vnf)
        for j in range(4):
            vfc = db.insert_node("ProxyVFC", {"name": f"vfc{i}-{j}"})
            db.insert_edge("ComposedOf", vnf, vfc)
            vm = db.insert_node(
                "VMWare", {"name": f"vm{i}-{j}", "status": "Green"}
            )
            db.insert_edge("OnVM", vfc, vm)
            db.insert_edge("OnServer", vm, hosts[(i * 4 + j) % len(hosts)])
    return db


def _per_query_seconds(db: NepalDB, traced: bool) -> float:
    """Mean warm latency per query, optionally under a fresh trace each."""
    for query in QUERIES:  # warm the plan cache and memos (not timed)
        db.query(query)
    started = time.perf_counter()
    for _ in range(REPS):
        for query in QUERIES:
            db.query(query, trace=TraceContext() if traced else None)
    return (time.perf_counter() - started) / (REPS * len(QUERIES))


def _guard_touches_per_query(db: NepalDB) -> float:
    """How many disabled-path guard reads one warm query performs.

    Census from a traced run: every span is one ``maybe_span`` /
    ``current_trace`` site that the untraced path still visits, and every
    counter increment is one ``MetricsRegistry.event`` mirror (one
    ``ContextVar`` read each).  Untraced executions visit the same sites.
    """
    touches = 0
    for query in QUERIES:
        trace = TraceContext()
        db.query(query, trace=trace)
        spans = trace.spans()
        touches += len(spans)
        touches += sum(sum(span.counters.values()) for span in spans)
    return touches / len(QUERIES)


def _guard_unit_cost() -> float:
    """Seconds per ``current_trace()`` read with no trace installed."""
    probes = 200_000
    started = time.perf_counter()
    for _ in range(probes):
        current_trace()
    return (time.perf_counter() - started) / probes


def test_disabled_tracing_overhead_under_budget():
    db = _build_db()

    untraced = _per_query_seconds(db, traced=False)
    traced = _per_query_seconds(db, traced=True)
    touches = _guard_touches_per_query(db)
    unit = _guard_unit_cost()

    guard_cost = touches * unit
    overhead_pct = 100.0 * guard_cost / untraced if untraced > 0 else 0.0
    ratio = traced / untraced if untraced > 0 else 1.0

    print()
    print(f"== Trace overhead — {len(QUERIES)} queries x {REPS} reps ==")
    print(format_table(
        ["metric", "value"],
        [
            ["untraced query", f"{untraced * 1e6:.1f} us"],
            ["traced query", f"{traced * 1e6:.1f} us"],
            ["traced/untraced", f"{ratio:.2f}x"],
            ["guard touches/query", f"{touches:.0f}"],
            ["guard unit cost", f"{unit * 1e9:.1f} ns"],
            ["disabled overhead", f"{overhead_pct:.3f} %"],
        ],
    ))

    payload = {
        "bench": "trace_overhead",
        "reps": REPS,
        "untraced_query_s": untraced,
        "traced_query_s": traced,
        "traced_over_untraced": ratio,
        "guard_touches_per_query": touches,
        "guard_unit_cost_s": unit,
        "disabled_overhead_pct": overhead_pct,
        # Machine-independent ratios, gated against the committed
        # baseline by benchmarks/check_regression.py in CI.
        "gate": {
            "higher_is_better": {},
            "lower_is_better": {
                "traced_over_untraced": ratio,
                "disabled_overhead_pct": overhead_pct,
            },
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"(written to {JSON_PATH})")

    assert overhead_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled-tracing guards cost {overhead_pct:.2f}% of a warm query "
        f"(budget {MAX_DISABLED_OVERHEAD_PCT}%)"
    )
    # Tracing itself must stay sample-friendly: not an order of magnitude.
    assert ratio < 5.0, f"traced execution {ratio:.1f}x slower than untraced"
