"""Legacy shim so editable installs work on offline machines without wheel."""
from setuptools import setup

setup()
