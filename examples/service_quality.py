#!/usr/bin/env python3
"""Service-quality management over a churning inventory (§2.3.2, §6.1).

Run: ``python examples/service_quality.py``

Loads the full virtualized service topology, replays two weeks of realistic
churn (status flaps, VM migrations, link outages) with the simulator, then
runs the service-quality checks an SQM prototype would schedule:

* shared-element analysis: do the data flows of two complaining customers
  share infrastructure? ("data flows for a given set of customers
  experiencing service quality issues share a common set of elements");
* single-point-of-failure audit: services whose every VNF placement leads
  to one host;
* stability report: WHEN EXISTS over the two weeks for each service's
  vertical placements — how often did each footprint change?
* storage accounting: how much did two weeks of history actually cost.
"""

from collections import Counter

from repro import NepalDB
from repro.inventory.churn import ChurnParams, ChurnSimulator
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import Interval, format_timestamp

T0 = 1_700_000_000.0


def main() -> None:
    db = NepalDB(clock=TransactionClock(start=T0))
    params = TopologyParams(
        services=6, vms=200, virtual_networks=50, virtual_routers=15,
        racks=8, hosts_per_rack=5, spine_switches=4, routers=3,
    )
    handles = VirtualizedServiceTopology(params).apply(db.store)
    cells_before = db.store.storage_cells()
    print(f"inventory: {handles.summary()}")

    # ----- two weeks of churn ------------------------------------------------
    simulator = ChurnSimulator(
        db.store, ChurnParams(days=14, growth_ratio=0.05, seed=11)
    )
    report = simulator.run(
        handles.all_nodes(), handles.all_edges(),
        migratable={vm: handles.hosts for vm in handles.vms},
    )
    print(
        f"churn: {report.events} events over {report.days} days, "
        f"history {report.history_versions} versions "
        f"(+{100 * report.growth:.1f}% vs current)"
    )

    # ----- shared infrastructure between two services -------------------------
    service_a, service_b = handles.services[0], handles.services[1]
    shared = db.query(
        f"Select target(P).name From PATHS P, PATHS Q "
        f"Where P MATCHES Service(id={service_a})->[Vertical()]{{1,6}}->Host() "
        f"And Q MATCHES Service(id={service_b})->[Vertical()]{{1,6}}->Host() "
        f"And target(P) = target(Q)"
    )
    shared_hosts = sorted(set(shared.scalars()))
    print(f"\n-- hosts shared by service-0 and service-1: {len(shared_hosts)} --")
    for name in shared_hosts[:5]:
        print(f"  {name}")

    # ----- single-point-of-failure audit ---------------------------------------
    print("\n-- per-service physical footprint (small = risky) --")
    for service in handles.services:
        rows = db.query(
            f"Select target(P).name From PATHS P "
            f"Where P MATCHES Service(id={service})->[Vertical()]{{1,8}}->Host()"
        )
        footprint = set(rows.scalars())
        flag = "  <-- single point of failure!" if len(footprint) == 1 else ""
        print(f"  service#{service}: {len(footprint)} hosts{flag}")

    # ----- placement stability over the window ----------------------------------
    print("\n-- VNFs whose placement changed during the window --")
    window = (report.start_time, report.end_time)
    changed = Counter()
    for vnf in handles.vnfs:
        pathways = db.find_paths(
            f"VNF(id={vnf})->[Vertical()]{{1,6}}->Host()", between=window
        )
        # A placement that was not valid for the whole window changed.
        for pathway in pathways:
            covered = pathway.validity.clip(Interval(*window))
            if covered.total_duration() < (window[1] - window[0]) * 0.999:
                changed[vnf] += 1
    movers = changed.most_common(5)
    for vnf, count in movers:
        print(f"  VNF#{vnf}: {count} placement pathways changed")

    # ----- when did service-0's footprint exist? ----------------------------------
    rows = db.query(
        f"WHEN EXISTS AT {window[0]} : {window[1]} Retrieve P From PATHS P "
        f"Where P MATCHES Service(id={service_a})->[Vertical()]{{1,8}}->Host()"
    )
    print("\n-- intervals during which service-0 had a complete placement --")
    for (start, end), in (row.values for row in rows):
        print(f"  {format_timestamp(start)} .. {format_timestamp(end) if end else '(now)'}")

    # ----- storage accounting (the §6.1 claim) -------------------------------------
    cells_after = db.store.storage_cells()
    overhead = 100 * (cells_after - cells_before) / cells_before
    print(
        f"\nstorage: {cells_before} cells before churn, {cells_after} after "
        f"(+{overhead:.1f}% for {report.days} days of history; "
        f"{report.days} daily copies would cost +{report.days * 100}%)"
    )


if __name__ == "__main__":
    main()
