#!/usr/bin/env python3
"""A tour of the full NPQL surface, including the extensions.

Run: ``python examples/language_tour.py``

Demonstrates, on one small inventory: generalization atoms, structured-data
predicates, views, joins, ordering/limits, aggregates, time travel, the
operator plan, the generated SQL, and the generated Python program.
See docs/LANGUAGE.md for the reference.
"""

from repro import NepalDB
from repro.temporal.clock import TransactionClock

T0 = 1_700_000_000.0


def build(db: NepalDB) -> dict:
    ids = {}
    ids["r1"] = db.insert_node("Router", {
        "name": "edge-router-1",
        "routing_table": [
            {"address": "10.0.0.0", "mask": 8, "interface": "ge-0/0"},
            {"address": "192.168.0.0", "mask": 16, "interface": "ge-0/1"},
        ],
    })
    ids["r2"] = db.insert_node("Router", {
        "name": "edge-router-2",
        "routing_table": [
            {"address": "172.16.0.0", "mask": 12, "interface": "xe-0"},
        ],
    })
    ids["spine"] = db.insert_node("SpineSwitch", {"name": "spine-1", "ports": 64})
    db.connect("SwitchRouter", ids["spine"], ids["r1"])
    db.connect("SwitchRouter", ids["spine"], ids["r2"])
    for rack in range(2):
        tor = db.insert_node("TorSwitch", {"name": f"tor-{rack}", "ports": 48})
        db.connect("SwitchSwitch", tor, ids["spine"])
        for slot in range(2):
            host = db.insert_node(
                "Host",
                {"name": f"host-{rack}{slot}", "cpu_cores": 32 * (slot + 1),
                 "status": "Green"},
            )
            db.connect("ServerSwitch", host, tor)
            vm = db.insert_node(
                "VMWare" if slot == 0 else "OnMetal",
                {"name": f"vm-{rack}{slot}", "status": "Green", "vcpus": 4},
            )
            db.insert_edge("OnServer", vm, host)
            ids.setdefault("vms", []).append(vm)
            ids.setdefault("hosts", []).append(host)
    return ids


def show(title: str, body: str) -> None:
    print(f"\n### {title}")
    print(body)


def main() -> None:
    db = NepalDB(clock=TransactionClock(start=T0))
    ids = build(db)

    show("generalization: one atom covers VMWare and OnMetal",
         db.query("Select source(P).name From PATHS P Where P MATCHES VM()"
                  " Order By source(P).name").to_table())

    show("structured data: which routers can reach 10/8?",
         db.query("Select source(P).name From PATHS P "
                  "Where P MATCHES Router(routing_table.address='10.0.0.0')"
                  ).to_table())

    db.define_view("PLACEMENTS", "VM()->OnServer()->Host()")
    show("views: PLACEMENTS needs no MATCHES",
         db.query("Select source(P).name, target(P).name From PLACEMENTS P "
                  "Order By source(P).name").to_table())

    show("aggregates over a view",
         db.query("Select count(P), max(target(P).cpu_cores) From PLACEMENTS P"
                  ).to_table())

    show("join: placements on big hosts",
         db.query("Select source(P).name From PLACEMENTS P, PATHS H "
                  "Where H MATCHES Host(cpu_cores>=64) "
                  "And target(P) = source(H)").to_table())

    # time travel: retire a VM
    db.clock.advance(3600)
    victim = ids["vms"][0]
    db.delete(victim)
    show("time travel: the fleet an hour ago vs now",
         db.query(f"AT {T0 + 60} Select count(P) From PATHS P Where P MATCHES VM()"
                  ).to_table()
         + "\n" +
         db.query("Select count(P) From PATHS P Where P MATCHES VM()").to_table())

    show("maximal validity ranges",
         "\n".join(
             f"{p.render()}  valid={list(map(str, p.validity))}"
             for p in db.find_paths(
                 f"VM(id={victim})->OnServer()->Host()",
                 between=(T0, T0 + 7200),
             )
         ))

    show("the operator plan (§5.1)",
         db.explain("Retrieve P From PATHS P "
                    "Where P MATCHES Switch()->[ConnectedTo()]{1,2}->Router(id=%d)"
                    % ids["r1"]).splitlines().__getitem__(2))

    show("the generated Python program (§3.1), first lines",
         "\n".join(db.translate(
             "Select source(P).name From PLACEMENTS P Order By source(P).name"
         ).splitlines()[:14]))

    from repro import RelationalStore, build_network_schema
    from repro.storage.snapshot import SnapshotLoader, export_snapshot

    mirror = RelationalStore(build_network_schema(),
                             clock=TransactionClock(start=T0))
    SnapshotLoader(mirror).apply(export_snapshot(db.store))
    from repro.plan.planner import Planner
    from repro.stats.cardinality import CardinalityEstimator
    from repro.storage.base import TimeScope

    planner = Planner(mirror.schema, CardinalityEstimator(mirror))
    program = planner.compile("VM()->OnServer()->Host()")
    show("the generated SQL on the relational mirror (§5.2), first statements",
         "\n".join(mirror.sql_trace(program, TimeScope.current())[:2]))


if __name__ == "__main__":
    main()
