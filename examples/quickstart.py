#!/usr/bin/env python3
"""Quickstart: build a small inventory, ask Nepal path questions.

Run: ``python examples/quickstart.py``

Walks the basics in five minutes: defining elements under the built-in
layered network schema, pathway queries with class generalization, joins,
and a first taste of time travel.
"""

from repro import NepalDB
from repro.temporal.clock import TransactionClock

T0 = 1_700_000_000.0  # a fixed epoch so the output is reproducible


def build_inventory(db: NepalDB) -> dict:
    """A two-rack micro-datacenter running one firewall VNF."""
    uids = {}
    # Physical layer ------------------------------------------------------
    uids["host_a"] = db.insert_node("Host", {"name": "host-a", "cpu_cores": 64})
    uids["host_b"] = db.insert_node("Host", {"name": "host-b", "cpu_cores": 32})
    uids["tor_a"] = db.insert_node("TorSwitch", {"name": "tor-a", "ports": 48})
    uids["tor_b"] = db.insert_node("TorSwitch", {"name": "tor-b", "ports": 48})
    db.connect("ServerSwitch", uids["host_a"], uids["tor_a"],
               {"server_interface": "eth0", "switch_interface": "ge-0/0"})
    db.connect("ServerSwitch", uids["host_b"], uids["tor_b"],
               {"server_interface": "eth0", "switch_interface": "ge-0/1"})
    db.connect("SwitchSwitch", uids["tor_a"], uids["tor_b"])

    # Virtualization layer ---------------------------------------------------
    uids["vm_1"] = db.insert_node("VMWare", {"name": "vm-1", "status": "Green", "vcpus": 4})
    uids["vm_2"] = db.insert_node("OnMetal", {"name": "vm-2", "status": "Green", "vcpus": 8})
    uids["net"] = db.insert_node("VirtualNetwork", {"name": "tenant-net", "cidr": "10.1.0.0/24"})
    db.insert_edge("OnServer", uids["vm_1"], uids["host_a"])
    db.insert_edge("OnServer", uids["vm_2"], uids["host_b"])
    db.connect("VmNetwork", uids["vm_1"], uids["net"], {"ip_address": "10.1.0.2"})
    db.connect("VmNetwork", uids["vm_2"], uids["net"], {"ip_address": "10.1.0.3"})

    # Service layers ------------------------------------------------------------
    uids["service"] = db.insert_node(
        "Service", {"name": "vpn-east", "customer": "acme", "service_type": "vpn"}
    )
    uids["fw"] = db.insert_node(
        "Firewall", {"name": "fw-east", "status": "Green", "ruleset_version": "42"}
    )
    uids["proxy"] = db.insert_node("ProxyVFC", {"name": "fw-proxy", "role": "active"})
    uids["engine"] = db.insert_node("PacketCoreVFC", {"name": "fw-engine", "role": "active"})
    db.insert_edge("ComposedOf", uids["service"], uids["fw"])
    db.insert_edge("ComposedOf", uids["fw"], uids["proxy"])
    db.insert_edge("ComposedOf", uids["fw"], uids["engine"])
    db.insert_edge("OnVM", uids["proxy"], uids["vm_1"])
    db.insert_edge("OnVM", uids["engine"], uids["vm_2"])
    return uids


def main() -> None:
    db = NepalDB(clock=TransactionClock(start=T0))
    uids = build_inventory(db)
    print(db.store.describe())

    # 1. The paper's flagship question: which VNFs depend on host-a?
    #    The Vertical superclass spares us knowing the exact edge chain.
    print("\n-- VNFs affected by replacing host-a --")
    result = db.query(
        f"Select source(P).name From PATHS P "
        f"Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(id={uids['host_a']})"
    )
    print(result.to_table())

    # 2. Pathways are first-class: Retrieve returns them whole.
    print("\n-- how fw-east reaches its hardware --")
    for pathway in db.find_paths(
        f"VNF(id={uids['fw']})->[Vertical()]{{1,6}}->Host()"
    ):
        print(" ", pathway.render())

    # 3. A join: the physical route between the two VMs' hosts.
    print("\n-- physical route between the firewall's two hosts --")
    result = db.query(
        f"Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
        f"Where D1 MATCHES VM(id={uids['vm_1']})->OnServer()->Host() "
        f"And D2 MATCHES VM(id={uids['vm_2']})->OnServer()->Host() "
        f"And Phys MATCHES [ConnectedTo()]{{1,4}} "
        f"And source(Phys)=target(D1) And target(Phys)=target(D2)"
    )
    for row in result:
        print(" ", row.pathway("Phys").render())

    # 4. Time travel: migrate vm-1, then ask about the past.
    db.clock.advance(3600)
    placement = db.find_paths(f"VM(id={uids['vm_1']})->OnServer()->Host()")[0]
    db.delete(placement.edges[0].uid)
    db.insert_edge("OnServer", uids["vm_1"], uids["host_b"])

    print("\n-- where is vm-1 now, and where was it an hour ago? --")
    now = db.query(
        f"Select target(P).name From PATHS P "
        f"Where P MATCHES VM(id={uids['vm_1']})->OnServer()->Host()"
    )
    then = db.query(
        f"AT {T0 + 60} Select target(P).name From PATHS P "
        f"Where P MATCHES VM(id={uids['vm_1']})->OnServer()->Host()"
    )
    print(f"  now:  {now.scalars()}")
    print(f"  then: {then.scalars()}")

    # 5. A time-range query returns maximal validity intervals.
    print("\n-- placement history of vm-1 (maximal ranges) --")
    for pathway in db.find_paths(
        f"VM(id={uids['vm_1']})->OnServer()->Host()", between=(T0, T0 + 7200)
    ):
        print(f"  {pathway.render()}")
        for interval in pathway.validity:
            print(f"    valid {interval}")


if __name__ == "__main__":
    main()
