#!/usr/bin/env python3
"""Troubleshooting a dropped-calls incident with time travel (§2.3.2, §4).

Run: ``python examples/troubleshooting.py``

The scenario the paper opens Section 4 with: "to diagnose an increase in
dropped calls starting at 10:00 am, the network engineer needs to consult
the state of the network at 10:00 am, not the current 1:00 pm state."

We build the full virtualized service topology, replay three days of
incidents (a ToR uplink flap, a VM migration, a host going Red), then
investigate after the fact:

1. a timeslice query reconstructs the 10:00 am state;
2. a time-range query finds which service paths flowed through the flapping
   link, with their maximal validity intervals;
3. ``FIRST TIME WHEN EXISTS`` pins down when the degraded placement began;
4. a path-evolution query lists every field change on the suspect pathway;
5. a shared-fate query sizes the blast radius of the Red host.
"""

import random

from repro import NepalDB
from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.storage.base import TimeScope
from repro.temporal.interval import format_timestamp
from repro.temporal.clock import TransactionClock

T0 = 1_700_000_000.0
HOUR = 3600.0


def main() -> None:
    db = NepalDB(clock=TransactionClock(start=T0))
    params = TopologyParams(
        services=4, vms=150, virtual_networks=40, virtual_routers=12,
        racks=6, hosts_per_rack=5, spine_switches=4, routers=3,
    )
    handles = VirtualizedServiceTopology(params).apply(db.store)
    print(f"inventory: {handles.summary()}")
    rng = random.Random(42)

    # ----- the incident timeline (what actually happened) -----------------
    scope = TimeScope.current()
    vnf = handles.vnfs[0]
    vfc = handles.vnf_vfcs[vnf][0]
    vm = handles.vfc_vm[vfc]
    old_host = handles.vm_host[vm]

    # 09:30 — a ToR uplink starts flapping.
    tor_uplink = next(
        edge
        for switch in handles.switches
        for edge in db.store.out_edges(switch, scope)
        if edge.cls.name == "SwitchSwitch"
    )
    db.clock.set(T0 + 9.5 * HOUR)
    db.delete(tor_uplink.uid)
    db.clock.set(T0 + 9.75 * HOUR)
    db.insert_edge("SwitchSwitch", tor_uplink.source_uid, tor_uplink.target_uid,
                   uid=tor_uplink.uid)

    # 10:00 — the VM behind the complaining service is migrated (to a host
    # that is healthy at migration time).
    db.clock.set(T0 + 10 * HOUR)
    placement = next(
        e for e in db.store.out_edges(vm, scope) if e.cls.name == "OnServer"
    )
    new_host = rng.choice([
        h for h in handles.hosts
        if h != old_host and db.store.get_element(h, scope).get("status") == "Green"
    ])
    db.delete(placement.uid)
    db.insert_edge("OnServer", vm, new_host)

    # 10:20 — the destination host degrades.
    db.clock.set(T0 + 10.33 * HOUR)
    db.update(new_host, {"status": "Red"})

    # 13:00 — the engineer starts investigating.
    db.clock.set(T0 + 13 * HOUR)

    # ----- 1. reconstruct the 10:00 am state -------------------------------
    print("\n== where did the service's VNF run at 10:05, vs now? ==")
    for label, clause in (("10:05", f"AT {T0 + 10.08 * HOUR} "), ("now", "")):
        result = db.query(
            f"{clause}Select target(P).name, target(P).status From PATHS P "
            f"Where P MATCHES VNF(id={vnf})->VFC(id={vfc})->VM()->Host()"
        )
        print(f"  {label}: {result.value_rows()}")

    # ----- 2. which paths flowed through the flapping link? ----------------
    print("\n== paths through the flapping ToR uplink, 09:00–11:00 ==")
    paths = db.find_paths(
        f"Switch()->SwitchSwitch(id={tor_uplink.uid})->Switch()",
        between=(T0 + 9 * HOUR, T0 + 11 * HOUR),
    )
    for pathway in paths:
        print(f"  {pathway.render()}")
        for interval in pathway.validity:
            end = format_timestamp(interval.end) or "(still up)"
            print(f"    up {format_timestamp(interval.start)} .. {end}")

    # ----- 3. when did the degraded placement start? ------------------------
    print("\n== first time the VNF's component sat on the degraded host ==")
    first = db.query(
        f"FIRST TIME WHEN EXISTS AT {T0 + 9 * HOUR} : {T0 + 13 * HOUR} "
        f"Retrieve P From PATHS P "
        f"Where P MATCHES VNF(id={vnf})->[Vertical()]{{1,6}}->Host(id={new_host}, status='Red')"
    )
    for value in first.scalars():
        print(f"  {format_timestamp(value)}")

    # ----- 4. how did the suspect pathway evolve? ----------------------------
    print("\n== evolution of the current placement pathway ==")
    current = db.find_paths(
        f"VNF(id={vnf})->VFC(id={vfc})->VM(id={vm})->Host(id={new_host})"
    )
    if current:
        evolution = db.path_evolution(
            current[0], between=(T0 + 9 * HOUR, T0 + 13 * HOUR)
        )
        print(evolution.render())

    # ----- 5. blast radius of the Red host -----------------------------------
    print("\n== every VNF that depends on the Red host right now ==")
    blast = db.query(
        f"Select source(P).name From PATHS P "
        f"Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(id={new_host})"
    )
    for name in sorted(set(blast.scalars())):
        print(f"  {name}")


if __name__ == "__main__":
    main()
