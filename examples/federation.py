#!/usr/bin/env python3
"""Federated queries over fragmented inventories (§1, §3.1).

Run: ``python examples/federation.py``

"Most large-scale complex networks include network information stored in
different types of inventories" — here a cloud inventory on the in-memory
property-graph backend and a legacy inventory on the relational (SQLite)
backend, each with its own schema.  Nepal queries name the store per range
variable (``PATHS@cloud P``) and the executor ships endpoint sets between
backends to evaluate the join.

The reconciliation question: which physical hosts known to the cloud
controller are still carried as 'planned' in the legacy asset system?
"""

from repro import Federation, MemGraphStore, RelationalStore, build_network_schema
from repro.inventory.legacy import build_legacy_schema
from repro.temporal.clock import TransactionClock

T0 = 1_700_000_000.0


def build_cloud() -> MemGraphStore:
    store = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0),
                          name="cloud")
    for rack in range(2):
        tor = store.insert_node("TorSwitch", {"name": f"tor-{rack}", "ports": 48})
        for slot in range(3):
            host = store.insert_node(
                "Host",
                {"name": f"host-{rack}-{slot}", "cpu_cores": 64, "status": "Green"},
            )
            store.insert_symmetric_edge("ServerSwitch", host, tor)
            vm = store.insert_node("VM", {"name": f"vm-{rack}-{slot}", "status": "Green"})
            store.insert_edge("OnServer", vm, host)
    return store


def build_legacy() -> RelationalStore:
    store = RelationalStore(build_legacy_schema(False),
                            clock=TransactionClock(start=T0), name="legacy")
    site = store.insert_node("Entity", {"name": "site-ATL", "kind": "site", "status": "up"})
    # The asset system knows some of the same hosts, with its own lifecycle
    # states, wired under the site via vertical records.
    states = {
        "host-0-0": "in-service",
        "host-0-1": "planned",       # stale!
        "host-1-0": "in-service",
        "host-1-2": "planned",       # stale!
    }
    for name, state in states.items():
        asset = store.insert_node("Entity", {"name": name, "kind": "server", "status": state})
        store.insert_edge(
            "GenericEdge", site, asset,
            {"category": "vertical", "kind": "vertical_00"},
        )
    return store


def main() -> None:
    federation = Federation(
        {"cloud": build_cloud(), "legacy": build_legacy()}, default="cloud"
    )
    print(federation.describe())

    print("\n-- hosts the cloud controller runs VMs on --")
    result = federation.query(
        "Select target(P).name From PATHS@cloud P "
        "Where P MATCHES VM()->OnServer()->Host()"
    )
    for name in sorted(result.scalars()):
        print(f"  {name}")

    print("\n-- legacy assets under site-ATL --")
    result = federation.query(
        "Select target(Q).name, target(Q).status From PATHS@legacy Q "
        "Where Q MATCHES Entity(kind='site')->GenericEdge(category='vertical')->Entity()"
    )
    for name, status in sorted(result.value_rows()):
        print(f"  {name:10s} {status}")

    print("\n-- RECONCILIATION: live in the cloud but 'planned' in legacy --")
    result = federation.query(
        "Select source(P).name From PATHS@cloud P, PATHS@legacy Q "
        "Where P MATCHES Host() "
        "And Q MATCHES Entity(kind='server', status='planned') "
        "And source(P).name = source(Q).name"
    )
    for name in sorted(result.scalars()):
        print(f"  {name}  <-- update the asset system")

    print("\n-- same query, explained (note the per-store plans) --")
    print(
        federation.explain(
            "Select source(P).name From PATHS@cloud P, PATHS@legacy Q "
            "Where P MATCHES Host() "
            "And Q MATCHES Entity(kind='server', status='planned') "
            "And source(P).name = source(Q).name"
        ).split("\n\n")[0]
    )


if __name__ == "__main__":
    main()
