# Convenience targets for the Nepal reproduction.

.PHONY: install test lint coverage ci bench bench-smoke sweep examples all

# Minimum line coverage enforced by `make coverage` and the CI test job.
COVERAGE_FLOOR ?= 80

install:
	pip install -e ".[dev]"

test:
	PYTHONPATH=src python -m pytest -x -q

# Skips with a warning when ruff is not installed (it is optional locally;
# the CI lint job always has it).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "warning: ruff not installed; skipping lint (CI runs it)"; \
	fi

# Tier-1 suite under pytest-cov with the coverage floor.  Skips with a
# warning when pytest-cov is not installed (optional locally, like ruff;
# the CI test job always has it).
coverage:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		PYTHONPATH=src python -m pytest -x -q \
			--cov=repro --cov-report=term \
			--cov-report=xml:coverage.xml \
			--cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "warning: pytest-cov not installed; skipping coverage (CI runs it)"; \
	fi

# Mirror of .github/workflows/ci.yml: lint, the tier-1 suite, coverage.
ci: lint test coverage

bench:
	pytest benchmarks/ --benchmark-only

# Reduced-scale smoke of the Table 1 workload, the WAL-overhead ablation
# and the time-travel index ablation (CI's non-blocking bench job).
bench-smoke:
	NEPAL_BENCH_INSTANCES=5 NEPAL_CHURN_DAYS=5 NEPAL_BENCH_SCALE=small \
		PYTHONPATH=src python -m pytest benchmarks/bench_table1.py -s --benchmark-disable -k snapshot
	NEPAL_WAL_OPS=600 \
		PYTHONPATH=src python -m pytest benchmarks/bench_wal_overhead.py -s --benchmark-disable
	NEPAL_TT_ELEMENTS=1500 NEPAL_TT_DAYS=8 \
		PYTHONPATH=src python -m pytest benchmarks/bench_time_travel.py -s --benchmark-disable

# The paper-style comparison tables (Tables 1-2, ablations, storage).
sweep:
	pytest benchmarks/ -s --benchmark-disable

examples:
	python examples/quickstart.py
	python examples/troubleshooting.py
	python examples/service_quality.py
	python examples/federation.py
	python examples/language_tour.py

all: install test bench
