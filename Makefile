# Convenience targets for the Nepal reproduction.

.PHONY: install test lint coverage ci stress bench bench-smoke sweep examples all

# Minimum line coverage enforced by `make coverage` and the CI test job.
COVERAGE_FLOOR ?= 80

install:
	pip install -e ".[dev]"

test:
	PYTHONPATH=src python -m pytest -x -q

# Skips with a warning when ruff is not installed (it is optional locally;
# the CI lint job always has it).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "warning: ruff not installed; skipping lint (CI runs it)"; \
	fi

# Tier-1 suite under pytest-cov with the coverage floor.  Skips with a
# warning when pytest-cov is not installed (optional locally, like ruff;
# the CI test job always has it).
coverage:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		PYTHONPATH=src python -m pytest -x -q \
			--cov=repro --cov-report=term \
			--cov-report=xml:coverage.xml \
			--cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "warning: pytest-cov not installed; skipping coverage (CI runs it)"; \
	fi

# Mirror of .github/workflows/ci.yml: lint, the tier-1 suite, coverage.
ci: lint test coverage

# The concurrency suite CI repeats 20x under pytest-timeout.  Locally the
# timeout/repeat plugins are optional; this runs the suite once, plain.
stress:
	PYTHONPATH=src python -m pytest -q tests/concurrency

bench:
	pytest benchmarks/ --benchmark-only

# Reduced-scale smoke of the Table 1 workload, the WAL-overhead ablation,
# the plan-cache / time-travel ablations and the concurrent-serving bench,
# then the regression gate against benchmarks/baselines/ (mirrors CI's
# gating bench-smoke job).
bench-smoke:
	NEPAL_BENCH_INSTANCES=5 NEPAL_CHURN_DAYS=5 NEPAL_BENCH_SCALE=small \
		PYTHONPATH=src python -m pytest benchmarks/bench_table1.py -s --benchmark-disable -k snapshot
	NEPAL_WAL_OPS=600 \
		PYTHONPATH=src python -m pytest benchmarks/bench_wal_overhead.py -s --benchmark-disable
	NEPAL_BENCH_INSTANCES=5 NEPAL_CHURN_DAYS=5 NEPAL_BENCH_SCALE=small \
		PYTHONPATH=src python -m pytest benchmarks/bench_plan_cache.py::test_plan_cache_warm_vs_cold -s --benchmark-disable
	NEPAL_TT_ELEMENTS=1500 NEPAL_TT_DAYS=8 \
		PYTHONPATH=src python -m pytest benchmarks/bench_time_travel.py -s --benchmark-disable
	NEPAL_CC_SECONDS=0.5 \
		PYTHONPATH=src python -m pytest benchmarks/bench_concurrency.py -s --benchmark-disable
	python benchmarks/check_regression.py --baseline-dir benchmarks/baselines \
		BENCH_plan_cache.json BENCH_timetravel.json BENCH_concurrency.json

# The paper-style comparison tables (Tables 1-2, ablations, storage).
sweep:
	pytest benchmarks/ -s --benchmark-disable

examples:
	python examples/quickstart.py
	python examples/troubleshooting.py
	python examples/service_quality.py
	python examples/federation.py
	python examples/language_tour.py

all: install test bench
