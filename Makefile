# Convenience targets for the Nepal reproduction.

.PHONY: install test bench sweep examples all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# The paper-style comparison tables (Tables 1-2, ablations, storage).
sweep:
	pytest benchmarks/ -s --benchmark-disable

examples:
	python examples/quickstart.py
	python examples/troubleshooting.py
	python examples/service_quality.py
	python examples/federation.py
	python examples/language_tour.py

all: install test bench
