# Convenience targets for the Nepal reproduction.

# Recipes run under bash with pipefail so a failing command on the left
# of a pipe (pytest | tee, etc.) fails the target instead of vanishing
# behind the pipe's exit status.  -e aborts multi-command recipes on the
# first failure; -u catches unset-variable typos; -c is required by make.
SHELL := bash
.SHELLFLAGS := -eu -o pipefail -c

.PHONY: install test lint coverage ci stress bench bench-smoke observability replication sweep examples all

# Minimum line coverage enforced by `make coverage` and the CI test job.
COVERAGE_FLOOR ?= 80

install:
	pip install -e ".[dev]"

test:
	PYTHONPATH=src python -m pytest -x -q

# Skips with a warning when ruff is not installed (it is optional locally;
# the CI lint job always has it).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "warning: ruff not installed; skipping lint (CI runs it)"; \
	fi

# Tier-1 suite under pytest-cov with the coverage floor.  Skips with a
# warning when pytest-cov is not installed (optional locally, like ruff;
# the CI test job always has it).
coverage:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		PYTHONPATH=src python -m pytest -x -q \
			--cov=repro --cov-report=term \
			--cov-report=xml:coverage.xml \
			--cov-fail-under=$(COVERAGE_FLOOR); \
	else \
		echo "warning: pytest-cov not installed; skipping coverage (CI runs it)"; \
	fi

# Mirror of .github/workflows/ci.yml: lint, the tier-1 suite, coverage.
ci: lint test coverage

# The concurrency suite CI repeats 20x under pytest-timeout.  Locally the
# timeout/repeat plugins are optional; this runs the suite once, plain.
stress:
	PYTHONPATH=src python -m pytest -q tests/concurrency

# The tracing / EXPLAIN ANALYZE / slow-query-log suite (mirrors CI's
# observability job).  Refresh the EXPLAIN goldens after an intentional
# format change with:
#   PYTHONPATH=src python -m pytest tests/observability --update-goldens
observability:
	PYTHONPATH=src python -m pytest -q tests/observability tests/concurrency/test_traced_serving.py

# The replication suite including the multi-process failover chaos
# matrix (mirrors CI's replication job).  Scenario reports land in
# replication-reports/ when NEPAL_REPLICATION_REPORT_DIR is set.
replication:
	PYTHONPATH=src python -m pytest -q tests/replication

bench:
	pytest benchmarks/ --benchmark-only

# Reduced-scale smoke of the Table 1 workload, the WAL-overhead ablation,
# the plan-cache / time-travel ablations, the concurrent-serving bench
# and the tracing-overhead bench, then the regression gate against
# benchmarks/baselines/ (mirrors CI's gating bench-smoke job).
bench-smoke:
	NEPAL_BENCH_INSTANCES=5 NEPAL_CHURN_DAYS=5 NEPAL_BENCH_SCALE=small \
		PYTHONPATH=src python -m pytest benchmarks/bench_table1.py -s --benchmark-disable -k snapshot
	NEPAL_WAL_OPS=600 \
		PYTHONPATH=src python -m pytest benchmarks/bench_wal_overhead.py -s --benchmark-disable
	NEPAL_BENCH_INSTANCES=5 NEPAL_CHURN_DAYS=5 NEPAL_BENCH_SCALE=small \
		PYTHONPATH=src python -m pytest benchmarks/bench_plan_cache.py::test_plan_cache_warm_vs_cold -s --benchmark-disable
	NEPAL_TT_ELEMENTS=1500 NEPAL_TT_DAYS=8 \
		PYTHONPATH=src python -m pytest benchmarks/bench_time_travel.py -s --benchmark-disable
	NEPAL_EXEC_ELEMENTS=1500 NEPAL_EXEC_DAYS=4 \
		PYTHONPATH=src python -m pytest benchmarks/bench_executor.py -s --benchmark-disable
	NEPAL_CC_SECONDS=0.5 \
		PYTHONPATH=src python -m pytest benchmarks/bench_concurrency.py -s --benchmark-disable
	NEPAL_TRACE_REPS=15 \
		PYTHONPATH=src python -m pytest benchmarks/bench_trace_overhead.py -s --benchmark-disable
	NEPAL_REP_RECORDS=600 NEPAL_REP_SECONDS=1.0 \
		PYTHONPATH=src python -m pytest benchmarks/bench_replication.py -s --benchmark-disable
	python benchmarks/check_regression.py --baseline-dir benchmarks/baselines \
		BENCH_plan_cache.json BENCH_timetravel.json BENCH_executor.json \
		BENCH_concurrency.json BENCH_trace_overhead.json BENCH_replication.json

# The paper-style comparison tables (Tables 1-2, ablations, storage).
sweep:
	pytest benchmarks/ -s --benchmark-disable

examples:
	python examples/quickstart.py
	python examples/troubleshooting.py
	python examples/service_quality.py
	python examples/federation.py
	python examples/language_tour.py

all: install test bench
