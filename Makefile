# Convenience targets for the Nepal reproduction.

.PHONY: install test lint ci bench bench-smoke sweep examples all

install:
	pip install -e ".[dev]"

test:
	PYTHONPATH=src python -m pytest -x -q

# Skips with a warning when ruff is not installed (it is optional locally;
# the CI lint job always has it).
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "warning: ruff not installed; skipping lint (CI runs it)"; \
	fi

# Mirror of .github/workflows/ci.yml: lint, then the tier-1 suite.
ci: lint test

bench:
	pytest benchmarks/ --benchmark-only

# Reduced-scale smoke of the Table 1 workload (CI's non-blocking bench job).
bench-smoke:
	NEPAL_BENCH_INSTANCES=5 NEPAL_CHURN_DAYS=5 NEPAL_BENCH_SCALE=small \
		PYTHONPATH=src python -m pytest benchmarks/bench_table1.py -s --benchmark-disable -k snapshot

# The paper-style comparison tables (Tables 1-2, ablations, storage).
sweep:
	pytest benchmarks/ -s --benchmark-disable

examples:
	python examples/quickstart.py
	python examples/troubleshooting.py
	python examples/service_quality.py
	python examples/federation.py
	python examples/language_tour.py

all: install test bench
