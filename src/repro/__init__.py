"""Nepal — a model-driven temporal graph database for network inventory.

Reproduction of "A Graph Database for a Virtualized Network Infrastructure"
(SIGMOD 2018).  See README.md for a tour and DESIGN.md for the system
inventory.

Quick start::

    from repro import NepalDB

    db = NepalDB()                         # built-in layered network schema
    host = db.insert_node("Host", {"name": "server-1"})
    vm = db.insert_node("VM", {"name": "vm-1", "status": "Green"})
    db.insert_edge("OnServer", vm, host)

    result = db.query(
        "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()"
    )
    for row in result:
        print(row.pathway().render())
"""

from repro.core.concurrency import ReadSnapshot, SnapshotStore, WriteGate
from repro.core.database import NepalDB
from repro.core.federation import Federation
from repro.core.resilience import CircuitBreaker, ResiliencePolicy, ResilientStore
from repro.errors import NepalError, QueryDeadlineExceeded
from repro.storage.chaos import FaultInjectingStore, FaultPlan
from repro.query.parser import parse_query
from repro.query.results import QueryResult, ResultRow
from repro.rpe.parser import parse_rpe
from repro.schema.builtin import build_network_schema
from repro.schema.registry import Schema
from repro.schema.tosca import schema_from_tosca, schema_from_tosca_file
from repro.storage.base import GraphStore, TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.storage.snapshot import Snapshot, SnapshotLoader, export_snapshot

__version__ = "1.0.0"

__all__ = [
    "CircuitBreaker",
    "FaultInjectingStore",
    "FaultPlan",
    "Federation",
    "GraphStore",
    "MemGraphStore",
    "NepalDB",
    "NepalError",
    "QueryDeadlineExceeded",
    "QueryResult",
    "ReadSnapshot",
    "RelationalStore",
    "ResiliencePolicy",
    "ResilientStore",
    "ResultRow",
    "Schema",
    "Snapshot",
    "SnapshotLoader",
    "SnapshotStore",
    "TimeScope",
    "WriteGate",
    "build_network_schema",
    "export_snapshot",
    "parse_query",
    "parse_rpe",
    "schema_from_tosca",
    "schema_from_tosca_file",
]
