"""Recursive-descent parser for NPQL.

Grammar (keywords case-insensitive)::

    query      := [temporal_op] [at_clause] verb projections
                  FROM from_item (',' from_item)*
                  [WHERE predicate (AND predicate)*]
    temporal_op:= FIRST TIME WHEN EXISTS | LAST TIME WHEN EXISTS | WHEN EXISTS
    at_clause  := AT timestamp [':' timestamp]
    verb       := RETRIEVE | SELECT
    from_item  := PATHS ['@' store] NAME ['(' '@' timestamp [':' timestamp] ')']
    predicate  := NAME MATCHES <rpe>
               | [NOT] EXISTS '(' query ')'
               | expr cmp expr
    expr       := func '(' NAME ')' ['.' NAME]
               | agg '(' expr ')'          -- count/min/max/sum/avg
               | NAME | literal

The MATCHES right-hand side is delimited by token scanning (a depth-zero
``AND``, comma, or closing parenthesis of an enclosing subquery ends it) and
handed to the RPE parser, so the full RPE syntax is available verbatim.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.query.ast import (
    FIRST_TIME,
    LAST_TIME,
    RETRIEVE,
    SELECT,
    WHEN_EXISTS,
    AggregateCall,
    ComparePredicate,
    ExistsPredicate,
    Expression,
    FieldAccess,
    FunctionCall,
    Literal,
    MatchesPredicate,
    Predicate,
    Query,
    RangeVariable,
    TemporalSpec,
    OrderKey,
    VariableRef,
)
from repro.query.lexer import QueryToken, tokenize_query
from repro.rpe.parser import parse_rpe
from repro.temporal.interval import parse_timestamp

_OPENERS = {"(", "[", "{"}
_CLOSERS = {")", "]", "}"}
_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}
_PATHWAY_FUNCTIONS = {"source", "target", "length", "hops"}
_AGGREGATE_FUNCTIONS = {"count", "min", "max", "sum", "avg"}


class _QueryParser:
    def __init__(self, text: str, tokens: list[QueryToken], offset: int = 0):
        self.text = text
        self.tokens = tokens
        self.index = offset

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> QueryToken | None:
        index = self.index + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def advance(self) -> QueryToken:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query", len(self.text), self.text)
        self.index += 1
        return token

    def expect_keyword(self, *keywords: str) -> QueryToken:
        token = self.advance()
        if not token.is_keyword(*keywords):
            raise ParseError(
                f"expected {' or '.join(k.upper() for k in keywords)}, got {token.value!r}",
                token.position,
                self.text,
            )
        return token

    def expect_name(self) -> QueryToken:
        token = self.advance()
        if token.kind != "name":
            raise ParseError(f"expected a name, got {token.value!r}", token.position, self.text)
        return token

    def expect_punct(self, value: str) -> QueryToken:
        token = self.advance()
        if not token.is_punct(value):
            raise ParseError(
                f"expected {value!r}, got {token.value!r}", token.position, self.text
            )
        return token

    def at_keyword(self, *keywords: str, ahead: int = 0) -> bool:
        token = self.peek(ahead)
        return token is not None and token.is_keyword(*keywords)

    def eat_punct(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token.is_punct(value):
            self.index += 1
            return True
        return False

    # -- clauses --------------------------------------------------------------

    def parse(self, top_level: bool = True) -> Query:
        temporal_op = self._temporal_op()
        at = self._at_clause()
        if at is None and temporal_op is not None:
            at = self._at_clause()
        verb = self.expect_keyword("retrieve", "select")
        mode = RETRIEVE if verb.value.lower() == "retrieve" else SELECT
        projections = self._projections(mode)
        self.expect_keyword("from")
        variables = [self._from_item()]
        while self.eat_punct(","):
            variables.append(self._from_item())
        predicates: list[Predicate] = []
        if self.at_keyword("where"):
            self.advance()
            predicates.append(self._predicate())
            while self.at_keyword("and"):
                self.advance()
                predicates.append(self._predicate())
        order_by: list[OrderKey] = []
        if self.at_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            order_by.append(self._order_key())
            while self.eat_punct(","):
                order_by.append(self._order_key())
        limit: int | None = None
        if self.at_keyword("limit"):
            self.advance()
            token = self.advance()
            if token.kind != "number" or "." in token.value or int(token.value) < 0:
                raise ParseError(
                    "Limit needs a non-negative integer", token.position, self.text
                )
            limit = int(token.value)
        if top_level:
            trailing = self.peek()
            if trailing is not None:
                raise ParseError(
                    f"trailing input {trailing.value!r}", trailing.position, self.text
                )
        return Query(
            mode=mode,
            projections=tuple(projections),
            variables=tuple(variables),
            predicates=tuple(predicates),
            at=at,
            temporal_op=temporal_op,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _order_key(self) -> OrderKey:
        expression = self._expression()
        descending = False
        if self.at_keyword("desc"):
            self.advance()
            descending = True
        elif self.at_keyword("asc"):
            self.advance()
        return OrderKey(expression, descending)

    def _temporal_op(self) -> str | None:
        if self.at_keyword("first", "last") and self.at_keyword("time", ahead=1):
            which = self.advance().value.lower()
            self.advance()  # TIME
            self.expect_keyword("when")
            self.expect_keyword("exists")
            return FIRST_TIME if which == "first" else LAST_TIME
        if self.at_keyword("when") and self.at_keyword("exists", ahead=1):
            self.advance()
            self.advance()
            return WHEN_EXISTS
        return None

    def _timestamp(self) -> float:
        token = self.advance()
        if token.kind == "string":
            return parse_timestamp(token.value[1:-1])
        if token.kind == "number":
            return float(token.value)
        raise ParseError(
            f"expected a timestamp literal, got {token.value!r}", token.position, self.text
        )

    def _at_clause(self) -> TemporalSpec | None:
        if not self.at_keyword("at"):
            return None
        self.advance()
        start = self._timestamp()
        end: float | None = None
        if self.eat_punct(":"):
            end = self._timestamp()
        return TemporalSpec(start, end)

    def _projections(self, mode: str) -> list[Expression]:
        projections = [self._projection(mode)]
        while True:
            token = self.peek()
            if token is not None and token.is_punct(","):
                # Stop if the comma belongs to the FROM list (defensive; the
                # FROM keyword always intervenes in well-formed queries).
                self.index += 1
                projections.append(self._projection(mode))
            else:
                break
        return projections

    def _projection(self, mode: str) -> Expression:
        if mode == RETRIEVE:
            return VariableRef(self.expect_name().value)
        return self._expression()

    def _from_item(self) -> RangeVariable:
        source = self.expect_name().value
        view = None if source.lower() == "paths" else source
        store: str | None = None
        if self.eat_punct("@"):
            store = self.expect_name().value
        name = self.expect_name().value
        at: TemporalSpec | None = None
        if self.eat_punct("("):
            self.expect_punct("@")
            start = self._timestamp()
            end: float | None = None
            if self.eat_punct(":"):
                end = self._timestamp()
            self.expect_punct(")")
            at = TemporalSpec(start, end)
        return RangeVariable(name, at=at, store=store, view=view)

    # -- predicates -------------------------------------------------------------

    def _predicate(self) -> Predicate:
        if self.at_keyword("not"):
            self.advance()
            self.expect_keyword("exists")
            return self._exists(negated=True)
        if self.at_keyword("exists"):
            self.advance()
            return self._exists(negated=False)
        if (
            self.peek() is not None
            and self.peek().kind == "name"
            and self.at_keyword("matches", ahead=1)
        ):
            variable = self.expect_name().value
            self.advance()  # MATCHES
            return MatchesPredicate(variable, self._rpe())
        left = self._expression()
        op_token = self.advance()
        if op_token.kind != "op" or op_token.value not in _COMPARE_OPS:
            raise ParseError(
                f"expected a comparison operator, got {op_token.value!r}",
                op_token.position,
                self.text,
            )
        right = self._expression()
        return ComparePredicate(left, op_token.value, right)

    def _exists(self, negated: bool) -> ExistsPredicate:
        self.expect_punct("(")
        inner = _QueryParser(self.text, self.tokens, self.index)
        subquery = inner.parse(top_level=False)
        self.index = inner.index
        self.expect_punct(")")
        return ExistsPredicate(subquery, negated=negated)

    def _rpe(self):
        """Delimit the MATCHES right-hand side and hand it to the RPE parser."""
        start_token = self.peek()
        if start_token is None:
            raise ParseError("missing pathway expression", len(self.text), self.text)
        depth = 0
        last_end = start_token.position
        while True:
            token = self.peek()
            if token is None:
                break
            if depth == 0 and (
                token.is_keyword("and", "from", "where", "order", "limit")
                or token.is_punct(",")
            ):
                break
            if token.kind == "punct" and token.value in _CLOSERS and depth == 0:
                break  # closing parenthesis of an enclosing subquery
            if token.kind == "punct" and token.value in _OPENERS:
                depth += 1
            elif token.kind == "punct" and token.value in _CLOSERS:
                depth -= 1
            last_end = token.end
            self.index += 1
        snippet = self.text[start_token.position:last_end]
        if not snippet.strip():
            raise ParseError(
                "missing pathway expression", start_token.position, self.text
            )
        return parse_rpe(snippet)

    # -- expressions ----------------------------------------------------------------

    def _expression(self) -> Expression:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression", len(self.text), self.text)
        if token.kind == "number":
            self.advance()
            return Literal(float(token.value) if "." in token.value else int(token.value))
        if token.kind == "string":
            self.advance()
            return Literal(token.value[1:-1])
        if token.kind == "name":
            if token.value.lower() in ("true", "false"):
                self.advance()
                return Literal(token.value.lower() == "true")
            name = self.advance().value
            if self.eat_punct("("):
                lowered = name.lower()
                if lowered in _AGGREGATE_FUNCTIONS:
                    inner = self._expression()
                    self.expect_punct(")")
                    return AggregateCall(lowered, inner)
                if lowered not in _PATHWAY_FUNCTIONS:
                    raise ParseError(
                        f"unknown pathway function {name!r}", token.position, self.text
                    )
                variable = self.expect_name().value
                self.expect_punct(")")
                call = FunctionCall(lowered, variable)
                if self.eat_punct("."):
                    field_name = self.expect_name().value
                    return FieldAccess(call, field_name)
                return call
            return VariableRef(name)
        raise ParseError(
            f"unexpected token {token.value!r} in expression", token.position, self.text
        )


def parse_query(text: str) -> Query:
    """Parse NPQL *text* into a :class:`~repro.query.ast.Query`."""
    tokens = tokenize_query(text)
    if not tokens:
        raise ParseError("empty query", 0, text)
    return _QueryParser(text, tokens).parse()
