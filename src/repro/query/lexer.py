"""Tokenizer for NPQL query text.

Shares the RPE token shapes (so the parser can delimit a MATCHES expression
by scanning tokens) and adds the query-level punctuation: ``@`` for
per-variable timestamps and store names, ``.`` for field access, and a bare
``:`` for time ranges.  Keywords are ordinary name tokens classified by the
parser, keeping class names like ``Select`` usable inside RPEs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?::[A-Za-z_][A-Za-z_0-9]*)*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[()\[\]{},|@.:])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class QueryToken:
    kind: str
    value: str
    position: int

    @property
    def end(self) -> int:
        return self.position + len(self.value)

    def is_keyword(self, *keywords: str) -> bool:
        return self.kind == "name" and self.value.lower() in keywords

    def is_punct(self, value: str) -> bool:
        return self.kind == "punct" and self.value == value


def tokenize_query(text: str) -> list[QueryToken]:
    """Split query text into tokens, raising :class:`ParseError` on junk."""
    tokens: list[QueryToken] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", position=position, text=text)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(QueryToken(kind, match.group(), position))
        position = match.end()
    return tokens
