"""Abstract syntax of NPQL queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.rpe.ast import RpeNode

RETRIEVE = "retrieve"
SELECT = "select"

FIRST_TIME = "first_time"
LAST_TIME = "last_time"
WHEN_EXISTS = "when_exists"


@dataclass(frozen=True)
class TemporalSpec:
    """An ``AT`` clause: a time point or a time range (epoch seconds)."""

    start: float
    end: float | None = None

    @property
    def is_range(self) -> bool:
        return self.end is not None

    def render(self) -> str:
        if self.end is None:
            return f"AT {self.start}"
        return f"AT {self.start} : {self.end}"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class of value expressions in Where and Select clauses."""

    def variables(self) -> set[str]:
        return set()

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def render(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A pathway function applied to a range variable, e.g. ``source(P)``."""

    function: str
    variable: str

    def variables(self) -> set[str]:
        return {self.variable}

    def render(self) -> str:
        return f"{self.function}({self.variable})"


@dataclass(frozen=True)
class FieldAccess(Expression):
    """Field access on a pathway function result, e.g. ``source(P).name``."""

    base: FunctionCall
    field_name: str

    def variables(self) -> set[str]:
        return self.base.variables()

    def render(self) -> str:
        return f"{self.base.render()}.{self.field_name}"


@dataclass(frozen=True)
class AggregateCall(Expression):
    """An aggregate over the whole pathway set, e.g. ``count(P)`` or
    ``avg(length(P))`` — the "aggregation queries on pathway sets" the paper
    lists as future work (§8)."""

    function: str
    argument: "Expression"

    def variables(self) -> set[str]:
        return self.argument.variables()

    def render(self) -> str:
        return f"{self.function}({self.argument.render()})"


@dataclass(frozen=True)
class VariableRef(Expression):
    """A bare range variable in a Retrieve list."""

    name: str

    def variables(self) -> set[str]:
        return {self.name}

    def render(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class of Where-clause conjuncts."""

    def variables(self) -> set[str]:
        return set()

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class MatchesPredicate(Predicate):
    """``P MATCHES <rpe>`` — constrains one pathway variable."""

    variable: str
    rpe: RpeNode

    def variables(self) -> set[str]:
        return {self.variable}

    def render(self) -> str:
        return f"{self.variable} MATCHES {self.rpe.render()}"


@dataclass(frozen=True)
class ComparePredicate(Predicate):
    """A comparison between two expressions, e.g. ``source(P) = target(Q)``."""

    left: Expression
    op: str
    right: Expression

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


@dataclass(frozen=True)
class ExistsPredicate(Predicate):
    """``[NOT] EXISTS (<subquery>)`` — possibly correlated with outer vars."""

    query: "Query"
    negated: bool = False

    def variables(self) -> set[str]:
        # Correlated references are the sub-query's free variables.
        return self.query.free_variables()

    def render(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} ({self.query.render()})"


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangeVariable:
    """One ``From PATHS P`` item, with optional timestamp and store.

    ``view`` names a defined pathway view instead of the universal PATHS
    source ("The source is an unmaterialized view of pathways, and the view
    PATHS is the set of all pathways.  Additional views can be defined",
    §3.4): the variable then ranges over pathways satisfying the view's
    RPE, and any explicit MATCHES is an additional (conjunctive) filter.
    """

    name: str
    at: TemporalSpec | None = None
    store: str | None = None
    """Federation: name of the backend this variable ranges over."""

    view: str | None = None
    """Name of a defined pathway view (None = the universal PATHS view)."""

    def render(self) -> str:
        source = self.view or "PATHS"
        if self.store is not None:
            source += f"@{self.store}"
        suffix = ""
        if self.at is not None:
            timestamp = f"@{self.at.start}"
            if self.at.end is not None:
                timestamp += f":{self.at.end}"
            suffix = f"({timestamp})"
        return f"{source} {self.name}{suffix}"


@dataclass(frozen=True)
class OrderKey:
    """One ``Order By`` key: an expression plus direction."""

    expression: Expression
    descending: bool = False

    def render(self) -> str:
        return self.expression.render() + (" Desc" if self.descending else "")


@dataclass(frozen=True)
class Query:
    """A complete NPQL query."""

    mode: str
    projections: tuple[Expression, ...]
    variables: tuple[RangeVariable, ...]
    predicates: tuple[Predicate, ...]
    at: TemporalSpec | None = None
    temporal_op: str | None = field(default=None)
    """``first_time`` / ``last_time`` / ``when_exists`` aggregate prefix."""

    order_by: tuple[OrderKey, ...] = ()
    limit: int | None = None

    def declared_variables(self) -> set[str]:
        return {variable.name for variable in self.variables}

    def free_variables(self) -> set[str]:
        """Variables referenced but not declared (correlation with outer)."""
        referenced: set[str] = set()
        for projection in self.projections:
            referenced |= projection.variables()
        for predicate in self.predicates:
            referenced |= predicate.variables()
        return referenced - self.declared_variables()

    def matches_for(self, variable: str) -> MatchesPredicate | None:
        for predicate in self.predicates:
            if isinstance(predicate, MatchesPredicate) and predicate.variable == variable:
                return predicate
        return None

    def render(self) -> str:
        parts: list[str] = []
        if self.temporal_op == FIRST_TIME:
            parts.append("FIRST TIME WHEN EXISTS")
        elif self.temporal_op == LAST_TIME:
            parts.append("LAST TIME WHEN EXISTS")
        elif self.temporal_op == WHEN_EXISTS:
            parts.append("WHEN EXISTS")
        if self.at is not None:
            parts.append(self.at.render())
        keyword = "Retrieve" if self.mode == RETRIEVE else "Select"
        parts.append(f"{keyword} " + ", ".join(p.render() for p in self.projections))
        parts.append("From " + ", ".join(v.render() for v in self.variables))
        if self.predicates:
            parts.append("Where " + " And ".join(p.render() for p in self.predicates))
        if self.order_by:
            parts.append("Order By " + ", ".join(k.render() for k in self.order_by))
        if self.limit is not None:
            parts.append(f"Limit {self.limit}")
        return " ".join(parts)
