"""Pathway functions (Section 3.4).

"The most basic functions are source(P) and target(P), which return the
source and target nodes of P" — plus ``length``/``hops``.  Expression
evaluation over a variable binding lives here, shared by the Where-clause
comparator and the Select projection.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import TypeCheckError
from repro.model.elements import NodeRecord
from repro.model.pathway import Pathway
from repro.query.ast import (
    Expression,
    FieldAccess,
    FunctionCall,
    Literal,
    VariableRef,
)


def apply_function(function: str, pathway: Pathway) -> Any:
    if function == "source":
        return pathway.source
    if function == "target":
        return pathway.target
    if function in ("length", "hops"):
        return pathway.hop_count
    raise TypeCheckError(f"unknown pathway function {function!r}")


def evaluate_expression(expression: Expression, bindings: Mapping[str, Pathway]) -> Any:
    """Evaluate an expression against pathway bindings."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, FunctionCall):
        pathway = _lookup(expression.variable, bindings)
        return apply_function(expression.function, pathway)
    if isinstance(expression, FieldAccess):
        base = evaluate_expression(expression.base, bindings)
        if not isinstance(base, NodeRecord):
            raise TypeCheckError(
                f"field access {expression.render()} applies to a node, got {base!r}"
            )
        return base.get(expression.field_name)
    if isinstance(expression, VariableRef):
        return _lookup(expression.name, bindings)
    raise TypeCheckError(f"cannot evaluate expression {expression!r}")


def compare_values(left: Any, op: str, right: Any) -> bool:
    """Comparison semantics for Where predicates.

    Node-to-node equality compares element identity (uid), as in
    ``source(Phys) = target(D1)``; everything else is plain value comparison
    with type mismatches evaluating to false rather than raising.
    """
    if isinstance(left, NodeRecord) and isinstance(right, NodeRecord):
        left, right = left.uid, right.uid
    elif isinstance(left, NodeRecord) or isinstance(right, NodeRecord):
        # Comparing a node against e.g. an id literal compares the uid.
        if isinstance(left, NodeRecord):
            left = left.uid
        if isinstance(right, NodeRecord):
            right = right.uid
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise TypeCheckError(f"unknown comparison operator {op!r}")


def _lookup(variable: str, bindings: Mapping[str, Pathway]) -> Pathway:
    try:
        return bindings[variable]
    except KeyError:
        raise TypeCheckError(f"unbound range variable {variable!r}") from None
