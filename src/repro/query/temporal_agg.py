"""Targeted temporal queries (Section 4 / reference [18]).

Besides the ``FIRST TIME / LAST TIME / WHEN EXISTS`` aggregates (available
as query prefixes and re-exposed here as functions), this module implements
the *path evolution query*: "tracks the changes of the field values in a
specific pathway (i.e. with specific node and edge ids)".  It powers
visualization applications where an engineer picks one returned path and
explores how it changed over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.model.pathway import Pathway
from repro.storage.base import GraphStore
from repro.temporal.interval import (
    Interval,
    IntervalSet,
    format_timestamp,
    intersect_all,
)


@dataclass(frozen=True)
class FieldChange:
    """One observed change of one field on one pathway element."""

    at: float
    uid: int
    class_name: str
    field_name: str
    old_value: Any
    new_value: Any

    def render(self) -> str:
        return (
            f"{format_timestamp(self.at)}  {self.class_name}#{self.uid} "
            f"{self.field_name}: {self.old_value!r} -> {self.new_value!r}"
        )


@dataclass(frozen=True)
class PathEvolution:
    """The full history of a specific pathway over a window."""

    pathway: Pathway
    window: Interval
    existence: IntervalSet
    """Instants at which every element of the pathway structurally existed."""

    changes: tuple[FieldChange, ...]
    """Field changes on any element, in time order."""

    def render(self) -> str:
        lines = [f"evolution of {self.pathway.render()}"]
        lines.append(
            "existed during: "
            + (
                ", ".join(str(interval) for interval in self.existence)
                or "(never within window)"
            )
        )
        for change in self.changes:
            lines.append("  " + change.render())
        return "\n".join(lines)


def path_evolution(
    store: GraphStore,
    pathway: Pathway,
    window: Interval,
) -> PathEvolution:
    """Compute the evolution of *pathway* within *window*.

    Existence is the intersection of the structural validity of every
    element; field changes are diffs between consecutive versions of each
    element whose transition instant falls inside the window.
    """
    element_sets: list[IntervalSet] = []
    changes: list[FieldChange] = []
    for element in pathway.elements:
        versions = store.versions(element.uid, window)
        element_sets.append(
            IntervalSet(version.period for version in versions)
        )
        # Fetch the full chain overlapping the window to diff fields.
        for previous, current in zip(versions, versions[1:]):
            transition = current.period.start
            if not window.contains(transition):
                continue
            fields = set(previous.fields) | set(current.fields)
            for field_name in sorted(fields):
                old = previous.fields.get(field_name)
                new = current.fields.get(field_name)
                if old != new:
                    changes.append(
                        FieldChange(
                            at=transition,
                            uid=element.uid,
                            class_name=element.cls.name,
                            field_name=field_name,
                            old_value=old,
                            new_value=new,
                        )
                    )
    existence = intersect_all(element_sets).clip(window)
    changes.sort(key=lambda change: (change.at, change.uid, change.field_name))
    return PathEvolution(
        pathway=pathway, window=window, existence=existence, changes=tuple(changes)
    )


def first_time_when_exists(validities: list[IntervalSet]) -> float | None:
    """Earliest instant covered by any validity set."""
    instants = [v.first_instant() for v in validities if not v.is_empty()]
    return min(instants) if instants else None


def last_time_when_exists(validities: list[IntervalSet]) -> float | None:
    """Latest instant covered by any validity set (``FOREVER`` = still now)."""
    union = IntervalSet.empty()
    for validity in validities:
        union = union.union(validity)
    last = union.last_instant()
    return last


def when_exists(validities: list[IntervalSet]) -> IntervalSet:
    """Union of all validity sets — the intervals a match can be found."""
    union = IntervalSet.empty()
    for validity in validities:
        union = union.union(validity)
    return union
