"""Query results.

A row carries the projected values, the pathway bound to each range
variable, and — for time-range queries — validity interval sets: one joint
set under a query-level ``AT`` range ("all results must coexist during the
associated time range"), or per-variable sets when each range variable has
its own timestamp (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.model.pathway import Pathway
from repro.temporal.interval import IntervalSet, format_timestamp
from repro.util.text import format_table


@dataclass(frozen=True)
class ResultRow:
    values: tuple[Any, ...]
    bindings: dict[str, Pathway] = field(default_factory=dict)
    validity: IntervalSet | None = None
    variable_validity: dict[str, IntervalSet] | None = None

    def pathway(self, variable: str | None = None) -> Pathway:
        """The pathway bound to *variable* (or the only variable)."""
        if variable is None:
            if len(self.bindings) != 1:
                raise KeyError(
                    f"row binds {sorted(self.bindings)}; name the variable explicitly"
                )
            return next(iter(self.bindings.values()))
        return self.bindings[variable]

    def times(self) -> list[tuple[str, str]]:
        """The joint validity rendered the way the paper prints results."""
        if self.validity is None:
            return []
        return [
            (format_timestamp(interval.start),
             format_timestamp(interval.end) if not interval.is_current else "")
            for interval in self.validity
        ]


class QueryResult:
    """An ordered collection of result rows with column labels.

    ``warnings`` is non-empty only for degraded federated executions
    (``allow_partial=True``): each entry names a range variable whose
    backend stayed unavailable through the resilience budget and was
    dropped from the join.  Rows then cover the surviving variables only,
    and projections over dropped variables evaluate to ``None``.
    """

    def __init__(
        self,
        columns: tuple[str, ...],
        rows: list[ResultRow],
        warnings: tuple[str, ...] = (),
    ):
        self.columns = columns
        self.rows = rows
        self.warnings = tuple(warnings)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> ResultRow:
        return self.rows[index]

    def pathways(self, variable: str | None = None) -> list[Pathway]:
        """All pathways bound to a variable across rows (Retrieve results)."""
        return [row.pathway(variable) for row in self.rows]

    def scalars(self) -> list[Any]:
        """First projected value of each row (single-column Select results)."""
        return [row.values[0] for row in self.rows]

    def value_rows(self) -> list[tuple[Any, ...]]:
        return [row.values for row in self.rows]

    def to_table(self) -> str:
        def cell(value: Any) -> str:
            if isinstance(value, Pathway):
                return value.render()
            return str(value)

        return format_table(
            self.columns, [[cell(v) for v in row.values] for row in self.rows]
        )

    def __repr__(self) -> str:
        suffix = f", {len(self.warnings)} warnings" if self.warnings else ""
        return f"<QueryResult {len(self.rows)} rows x {len(self.columns)} columns{suffix}>"
