"""Semantic analysis of NPQL queries (Section 3.4).

Checks performed before planning:

* every range variable has a MATCHES predicate ("Each pathway variable must
  have a MATCHES predicate"), and only one;
* every RPE binds against the schema of the variable's store (atom classes
  exist, predicate fields are fields of the atom's class);
* expressions reference declared variables (or variables of an enclosing
  query, for correlated subqueries);
* field accesses like ``source(P).name`` are validated against the *least
  common ancestor* of every class the MATCHES analysis says could appear at
  that endpoint — the typing rule the paper gives for pathway functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TypeCheckError
from repro.query.ast import (
    AggregateCall,
    ComparePredicate,
    ExistsPredicate,
    Expression,
    FieldAccess,
    FunctionCall,
    MatchesPredicate,
    Query,
    RangeVariable,
    VariableRef,
)
from repro.rpe.ast import Alternation, Atom, Repetition, RpeNode, Sequence
from repro.rpe.normalize import length_bounds, normalize
from repro.schema.classes import EdgeClass, ElementClass, NodeClass, least_common_ancestor
from repro.schema.registry import Schema

SchemaResolver = Callable[[RangeVariable], Schema]

#: Maps a view name to its defining RPE text, or None when undefined.
ViewResolver = Callable[[str], "str | None"]


@dataclass
class CheckedQuery:
    """A query plus the artifacts of successful typechecking."""

    query: Query
    bound_matches: dict[str, RpeNode]
    source_class: dict[str, ElementClass]
    target_class: dict[str, ElementClass]
    subqueries: dict[int, "CheckedQuery"] = field(default_factory=dict)
    extra_matches: dict[str, RpeNode] = field(default_factory=dict)
    """Additional conjunctive RPEs for variables ranging over a view whose
    query also has an explicit MATCHES predicate."""
    rendered_matches: dict[str, str] = field(default_factory=dict)
    """Interned ``render()`` of each bound RPE, computed once at typecheck
    time.  Plan-cache keys reuse these str objects, so CPython's per-object
    hash cache turns every warm key build into a dict probe instead of
    re-hashing the full query source."""


def boundary_atoms(rpe: RpeNode, end: str) -> list[Atom]:
    """Atoms that can match the first (``end='source'``) or last element."""
    atoms: list[Atom] = []

    def first_of(node: RpeNode) -> None:
        if isinstance(node, Atom):
            atoms.append(node)
        elif isinstance(node, Sequence):
            parts = node.parts if end == "source" else tuple(reversed(node.parts))
            for part in parts:
                first_of(part)
                if length_bounds(part)[0] > 0:
                    break
        elif isinstance(node, Alternation):
            for alternative in node.alternatives:
                first_of(alternative)
        elif isinstance(node, Repetition):
            first_of(node.body)

    first_of(rpe)
    return atoms


def endpoint_class(rpe: RpeNode, schema: Schema, end: str) -> ElementClass:
    """The class of ``source(P)``/``target(P)`` per the paper's LCA rule."""
    classes: list[ElementClass] = []
    for atom in boundary_atoms(rpe, end):
        cls = atom.cls
        assert cls is not None, "endpoint analysis requires a bound RPE"
        if isinstance(cls, NodeClass):
            classes.append(cls)
        elif isinstance(cls, EdgeClass):
            # The endpoint is the edge's implicit node: constrained only by
            # the edge class's endpoint rules.
            rules = cls.endpoint_rules
            if rules:
                key = "source" if end == "source" else "target"
                classes.extend(getattr(rule, key) for rule in rules)
            else:
                classes.append(schema.node_root)
    if not classes:
        return schema.node_root
    return least_common_ancestor(classes) or schema.node_root


def typecheck_query(
    query: Query,
    schema_for: SchemaResolver,
    outer_variables: dict[str, tuple[ElementClass, ElementClass]] | None = None,
    view_rpe: ViewResolver | None = None,
) -> CheckedQuery:
    """Validate *query*; returns bound RPEs and endpoint classes."""
    declared = query.declared_variables()
    outer = dict(outer_variables or {})

    duplicate_check: set[str] = set()
    for variable in query.variables:
        if variable.name in duplicate_check:
            raise TypeCheckError(f"range variable {variable.name!r} declared twice")
        duplicate_check.add(variable.name)
        if variable.name in outer:
            raise TypeCheckError(
                f"range variable {variable.name!r} shadows an outer variable"
            )

    bound_matches: dict[str, RpeNode] = {}
    extra_matches: dict[str, RpeNode] = {}
    source_class: dict[str, ElementClass] = {}
    target_class: dict[str, ElementClass] = {}
    schemas = {variable.name: schema_for(variable) for variable in query.variables}

    # Variables over a defined view carry the view's RPE implicitly.
    from repro.rpe.parser import parse_rpe as _parse_rpe

    view_based: set[str] = set()
    for variable in query.variables:
        if variable.view is None:
            continue
        definition = view_rpe(variable.view) if view_rpe is not None else None
        if definition is None:
            raise TypeCheckError(
                f"unknown pathway view {variable.view!r} "
                f"(variable {variable.name!r})"
            )
        schema = schemas[variable.name]
        bound = normalize(_parse_rpe(definition).bind(schema))
        bound_matches[variable.name] = bound
        source_class[variable.name] = endpoint_class(bound, schema, "source")
        target_class[variable.name] = endpoint_class(bound, schema, "target")
        view_based.add(variable.name)

    for predicate in query.predicates:
        if not isinstance(predicate, MatchesPredicate):
            continue
        if predicate.variable not in declared:
            raise TypeCheckError(
                f"MATCHES references undeclared variable {predicate.variable!r}"
            )
        schema = schemas[predicate.variable]
        bound = normalize(predicate.rpe.bind(schema))
        if predicate.variable in view_based:
            # An explicit MATCHES on a view variable is an additional,
            # conjunctive constraint ("unless one is implicit in the
            # pathway view source", §3.4).
            if predicate.variable in extra_matches:
                raise TypeCheckError(
                    f"variable {predicate.variable!r} has more than one "
                    "MATCHES predicate"
                )
            extra_matches[predicate.variable] = bound
            continue
        if predicate.variable in bound_matches:
            raise TypeCheckError(
                f"variable {predicate.variable!r} has more than one MATCHES predicate"
            )
        bound_matches[predicate.variable] = bound
        source_class[predicate.variable] = endpoint_class(bound, schema, "source")
        target_class[predicate.variable] = endpoint_class(bound, schema, "target")

    missing = declared - set(bound_matches)
    if missing:
        raise TypeCheckError(
            f"range variables without a MATCHES predicate: {sorted(missing)}"
        )

    endpoint_classes = {
        name: (source_class[name], target_class[name]) for name in bound_matches
    }
    visible = {**outer, **endpoint_classes}

    checked = CheckedQuery(
        query=query,
        bound_matches=bound_matches,
        source_class=source_class,
        target_class=target_class,
        extra_matches=extra_matches,
        rendered_matches={
            name: rpe.render() for name, rpe in bound_matches.items()
        },
    )

    for index, predicate in enumerate(query.predicates):
        if isinstance(predicate, ComparePredicate):
            _check_expression(predicate.left, visible)
            _check_expression(predicate.right, visible)
        elif isinstance(predicate, ExistsPredicate):
            checked.subqueries[index] = typecheck_query(
                predicate.query, schema_for, outer_variables=visible,
                view_rpe=view_rpe,
            )

    aggregates = [
        p for p in query.projections if isinstance(p, AggregateCall)
    ]
    if aggregates and len(aggregates) != len(query.projections):
        raise TypeCheckError(
            "aggregate and non-aggregate projections cannot be mixed "
            "(no GROUP BY in NPQL)"
        )
    for key in query.order_by:
        _check_expression(key.expression, visible)
    for projection in query.projections:
        if isinstance(projection, AggregateCall):
            if projection.function != "count" and isinstance(
                projection.argument, VariableRef
            ):
                raise TypeCheckError(
                    f"{projection.render()}: {projection.function}() needs a "
                    "value expression, e.g. length(P) or source(P).vcpus"
                )
            _check_expression(projection.argument, visible)
        else:
            _check_expression(projection, visible)

    return checked


def _check_expression(
    expression: Expression,
    visible: dict[str, tuple[ElementClass, ElementClass]],
) -> None:
    if isinstance(expression, AggregateCall):
        raise TypeCheckError(
            f"{expression.render()}: aggregates are only allowed as Select "
            "projections"
        )
    if isinstance(expression, VariableRef):
        if expression.name not in visible:
            raise TypeCheckError(f"reference to undeclared variable {expression.name!r}")
        return
    if isinstance(expression, FunctionCall):
        if expression.variable not in visible:
            raise TypeCheckError(
                f"{expression.render()} references undeclared variable "
                f"{expression.variable!r}"
            )
        return
    if isinstance(expression, FieldAccess):
        _check_expression(expression.base, visible)
        endpoint = 0 if expression.base.function == "source" else 1
        if expression.base.function in ("length", "hops"):
            raise TypeCheckError(
                f"{expression.render()}: {expression.base.function}() returns a "
                "number, not a node"
            )
        cls = visible[expression.base.variable][endpoint]
        if expression.field_name != "id" and not cls.has_field(expression.field_name):
            raise TypeCheckError(
                f"{expression.render()}: class {cls.path} has no field "
                f"{expression.field_name!r}"
            )
