"""The Nepal query language (NPQL), Sections 3.3–4.

An SQL-like surface over pathways::

    AT '2017-02-15 10:00:00'
    Select source(P)
    From PATHS P
    Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)

``Retrieve`` returns pathways; ``Select`` post-processes them with pathway
functions (``source``, ``target``, ...).  Range variables may carry their
own timestamps (``PATHS P(@'...')``), queries may join pathway variables,
nest ``NOT EXISTS`` subqueries, and prefix temporal aggregates
(``FIRST TIME WHEN EXISTS``, ``LAST TIME WHEN EXISTS``, ``WHEN EXISTS``).
"""

from repro.query.ast import (
    ComparePredicate,
    ExistsPredicate,
    FieldAccess,
    FunctionCall,
    Literal,
    MatchesPredicate,
    Query,
    RangeVariable,
    TemporalSpec,
)
from repro.query.parser import parse_query
from repro.query.results import QueryResult, ResultRow

__all__ = [
    "ComparePredicate",
    "ExistsPredicate",
    "FieldAccess",
    "FunctionCall",
    "Literal",
    "MatchesPredicate",
    "Query",
    "QueryResult",
    "RangeVariable",
    "ResultRow",
    "TemporalSpec",
    "parse_query",
]
