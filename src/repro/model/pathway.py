"""Pathways — the first-class citizens of the Nepal query language (§3.3).

A pathway is an alternating sequence of nodes and edges that always starts
and ends with a node: ``n1, e1, ..., e(k-1), nk``.  A single node is a
pathway; a single edge implies its endpoint nodes.  Queries range over
pathways and return pathways, which is what makes the language closed under
composition.

For time-range queries a pathway additionally carries its *validity* — the
maximal :class:`~repro.temporal.interval.IntervalSet` during which every
element version in the pathway coexisted (§4).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import NepalError
from repro.model.elements import EdgeRecord, ElementRecord, NodeRecord
from repro.temporal.interval import IntervalSet, intersect_all


class Pathway:
    """An immutable alternating node/edge sequence with optional validity."""

    __slots__ = ("_elements", "_validity", "_key")

    def __init__(
        self,
        elements: Sequence[ElementRecord],
        validity: IntervalSet | None = None,
    ):
        if not elements:
            raise NepalError("a pathway must contain at least one node")
        for position, element in enumerate(elements):
            expect_node = position % 2 == 0
            if expect_node and not isinstance(element, NodeRecord):
                raise NepalError(
                    f"pathway position {position} must be a node, got {element}"
                )
            if not expect_node and not isinstance(element, EdgeRecord):
                raise NepalError(
                    f"pathway position {position} must be an edge, got {element}"
                )
        if len(elements) % 2 == 0:
            raise NepalError("a pathway must start and end with a node")
        self._elements: tuple[ElementRecord, ...] = tuple(elements)
        self._validity = validity
        self._key: tuple[int, ...] | None = None

    # -- accessors -------------------------------------------------------

    @property
    def elements(self) -> tuple[ElementRecord, ...]:
        """The alternating node/edge sequence."""
        return self._elements

    @property
    def source(self) -> NodeRecord:
        """The first node — the ``source(P)`` pathway function."""
        return self._elements[0]  # type: ignore[return-value]

    @property
    def target(self) -> NodeRecord:
        """The last node — the ``target(P)`` pathway function."""
        return self._elements[-1]  # type: ignore[return-value]

    @property
    def nodes(self) -> tuple[NodeRecord, ...]:
        """The node elements, in pathway order."""
        return self._elements[0::2]  # type: ignore[return-value]

    @property
    def edges(self) -> tuple[EdgeRecord, ...]:
        """The edge elements, in pathway order."""
        return self._elements[1::2]  # type: ignore[return-value]

    @property
    def hop_count(self) -> int:
        """Number of edges."""
        return len(self._elements) // 2

    @property
    def validity(self) -> IntervalSet | None:
        """Maximal transaction-time ranges during which the pathway existed.

        ``None`` for snapshot-query results, where validity is not computed.
        """
        return self._validity

    def key(self) -> tuple[int, ...]:
        """The identity of the pathway: the uid sequence (used for dedup)."""
        if self._key is None:
            self._key = tuple(element.uid for element in self._elements)
        return self._key

    def uid_set(self) -> frozenset[int]:
        """The ids of all elements (for disjointness checks)."""
        return frozenset(element.uid for element in self._elements)

    def is_simple(self) -> bool:
        """No element repeats — the paper's SQL enforces this during Extend."""
        key = self.key()
        return len(set(key)) == len(key)

    # -- derivation ---------------------------------------------------------

    def with_validity(self, validity: IntervalSet) -> "Pathway":
        """A copy carrying temporal validity (time-range results)."""
        return Pathway(self._elements, validity=validity)

    def computed_validity(self) -> IntervalSet:
        """Intersection of all element version periods."""
        return intersect_all(
            [IntervalSet([element.period]) for element in self._elements]
        )

    def reversed(self) -> "Pathway":
        """The same elements in reverse order.

        Note this flips traversal order only — edge records keep their own
        source/target orientation.  Used internally when backward extension
        results are stitched onto an anchor.
        """
        return Pathway(tuple(reversed(self._elements)), validity=self._validity)

    def concat(self, other: "Pathway") -> "Pathway":
        """Join two pathways that share an endpoint node."""
        if self.target.uid != other.source.uid:
            raise NepalError(
                f"cannot concatenate: target {self.target} != source {other.source}"
            )
        validity: IntervalSet | None = None
        if self._validity is not None and other._validity is not None:
            validity = self._validity.intersect(other._validity)
        return Pathway(self._elements + other._elements[1:], validity=validity)

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[ElementRecord]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> ElementRecord:
        return self._elements[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pathway):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"Pathway({self.render()})"

    def render(self) -> str:
        """Human-readable ``node -edge-> node`` rendering."""
        parts: list[str] = []
        for position, element in enumerate(self._elements):
            if position % 2 == 0:
                parts.append(str(element))
            else:
                parts.append(f"-{element.cls.name}->")
        return " ".join(parts)
