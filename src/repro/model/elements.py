"""Typed element versions.

A Nepal database stores *versions* of nodes and edges: the element identity
is the ``uid`` (database-wide unique, stable across updates) and each version
carries the field values plus the transaction-time system period during
which that version was current.  Snapshot queries see only still-current
versions; time-travel queries see whichever version's period contains the
query time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.schema.classes import EdgeClass, ElementClass, NodeClass
from repro.temporal.interval import FOREVER, Interval


@dataclass(frozen=True)
class ElementRecord:
    """One version of a node or edge."""

    uid: int
    cls: ElementClass
    fields: Mapping[str, Any]
    period: Interval = field(default_factory=lambda: Interval(0.0, FOREVER))

    @property
    def is_node(self) -> bool:
        """True for node versions."""
        return isinstance(self.cls, NodeClass)

    @property
    def is_edge(self) -> bool:
        """True for edge versions."""
        return isinstance(self.cls, EdgeClass)

    @property
    def is_current(self) -> bool:
        """Whether this version is the live one (open system period)."""
        return self.period.is_current

    def get(self, name: str, default: Any = None) -> Any:
        """Field access; ``id`` and ``name`` resolve like ordinary fields."""
        if name == "id":
            return self.uid
        return self.fields.get(name, default)

    def with_period(self, period: Interval) -> "ElementRecord":
        """A copy of this version with a different system period."""
        return replace(self, period=period)

    def instance_of(self, cls: ElementClass) -> bool:
        """Query-time generalization: is this element's class in *cls*'s subtree?"""
        return self.cls.is_subclass_of(cls)

    def describe(self) -> str:
        """Verbose rendering including non-empty fields."""
        interesting = {
            k: v for k, v in self.fields.items() if v not in (None, "", [], {})
        }
        return f"{self.cls.name}#{self.uid}({interesting})"

    def __str__(self) -> str:
        label = self.fields.get("name")
        return f"{self.cls.name}#{self.uid}" + (f"[{label}]" if label else "")


@dataclass(frozen=True)
class NodeRecord(ElementRecord):
    """A node version."""


@dataclass(frozen=True)
class EdgeRecord(ElementRecord):
    """An edge version; ``source_uid``/``target_uid`` give its endpoints.

    Endpoints are part of the edge identity and never change across versions
    (rewiring is modelled as delete + insert, which is how the paper's
    snapshot-diff loader behaves).
    """

    source_uid: int = 0
    target_uid: int = 0

    def other_end(self, node_uid: int) -> int:
        """The endpoint opposite to *node_uid*."""
        return self.target_uid if node_uid == self.source_uid else self.source_uid

    def __str__(self) -> str:
        return f"{self.cls.name}#{self.uid}({self.source_uid}->{self.target_uid})"
