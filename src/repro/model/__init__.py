"""Runtime data model: typed element versions and pathways."""

from repro.model.elements import EdgeRecord, ElementRecord, NodeRecord
from repro.model.pathway import Pathway

__all__ = ["EdgeRecord", "ElementRecord", "NodeRecord", "Pathway"]
