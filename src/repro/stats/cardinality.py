"""Anchor cost estimation.

"The costing of an anchor is currently performed by estimating the
cardinality of the anchor (number of nodes/edges).  Database statistics are
used if available; otherwise schema hints are used." (§5.1)

The estimator asks the store for live per-class counts when it has a store,
falling back to the ``expected_count`` hints on schema classes.  Predicate
selectivities follow the classic System-R defaults: equality on the unique
``id`` pins cardinality to one, equality on ``name`` is treated as
near-unique, other equalities divide by ten, and inequalities keep a third.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.rpe.ast import Atom
from repro.schema.classes import ElementClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.base import GraphStore, TimeScope

def _scope_key(scope: "TimeScope | None") -> tuple | None:
    """Cache key fragment for a time scope (None for the current snapshot)."""
    if scope is None or scope.is_current:
        return None
    return (scope.kind, scope.start, scope.end)


_DEFAULT_CLASS_COUNT = 1000.0
_EQ_NAME_SELECTIVITY = 1e-6  # names are near-unique in inventories
_EQ_SELECTIVITY = 0.1
_RANGE_SELECTIVITY = 1.0 / 3.0
_NEQ_SELECTIVITY = 2.0 / 3.0


class CardinalityEstimator:
    """Estimates the number of elements satisfying an atom.

    The estimator carries a monotonic *statistics epoch*: it advances
    whenever the cached per-class counts are dropped, either explicitly
    via :meth:`invalidate` or automatically when the backing store's
    ``data_version`` drifts past the version last sampled.  The plan
    cache keys compiled programs on the epoch, so plans chosen under
    stale statistics are replanned — a correctness-neutral refresh, since
    statistics only steer anchor *choice* (§5.1), never result sets.
    """

    def __init__(self, store: "GraphStore | None" = None):
        self._store = store
        self._class_count_cache: dict[tuple[str, tuple | None], float] = {}
        self._epoch = 0
        self._seen_data_version = store.data_version if store is not None else 0

    @property
    def stats_epoch(self) -> int:
        """The current statistics epoch (refreshes against the store)."""
        self._refresh()
        return self._epoch

    def _refresh(self) -> None:
        if self._store is None:
            return
        version = self._store.data_version
        if version != self._seen_data_version:
            self._seen_data_version = version
            self._bump()

    def _bump(self) -> None:
        self._class_count_cache.clear()
        self._epoch += 1

    def class_cardinality(
        self, cls: ElementClass, scope: "TimeScope | None" = None
    ) -> float:
        self._refresh()
        cache_key = (cls.name, _scope_key(scope))
        cached = self._class_count_cache.get(cache_key)
        if cached is not None:
            return cached
        count: float | None = None
        exact = False
        if self._store is not None:
            if scope is None or scope.is_current:
                count = float(self._store.class_count(cls.name))
            else:
                # Historical anchors are costed with what existed *then*;
                # backends without a temporal index answer None and fall
                # through to the current count.  An indexed answer is exact
                # even when zero — "nothing existed" is real information,
                # not missing statistics.
                historical = self._store.class_count_at(cls.name, scope)
                if historical is not None:
                    count = float(historical)
                    exact = True
                else:
                    count = float(self._store.class_count(cls.name))
        if not exact and (count is None or count == 0.0):
            hints = [
                float(concrete.expected_count)
                for concrete in cls.concrete_subtree()
                if concrete.expected_count is not None
            ]
            if hints:
                count = max(sum(hints), count or 0.0)
        if count is None or (count == 0.0 and not exact):
            count = _DEFAULT_CLASS_COUNT
        self._class_count_cache[cache_key] = count
        return count

    def estimate(self, atom: Atom, scope: "TimeScope | None" = None) -> float:
        """Expected number of elements satisfying *atom* (≥ a small epsilon)."""
        if atom.cls is None:
            return _DEFAULT_CLASS_COUNT
        cardinality = self.class_cardinality(atom.cls, scope)
        for predicate in atom.predicates:
            if predicate.name == "id" and predicate.op == "=":
                return 1.0
            if predicate.op == "=":
                if predicate.name == "name":
                    cardinality = max(cardinality * _EQ_NAME_SELECTIVITY, 1.0)
                else:
                    cardinality *= _EQ_SELECTIVITY
            elif predicate.op == "!=":
                cardinality *= _NEQ_SELECTIVITY
            else:
                cardinality *= _RANGE_SELECTIVITY
        return max(cardinality, 0.5)

    def invalidate(self) -> None:
        """Drop cached counts and advance the epoch (call after bulk loads)."""
        if self._store is not None:
            self._seen_data_version = self._store.data_version
        self._bump()
