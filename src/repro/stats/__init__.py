"""Cardinality statistics for anchor costing (Section 5.1) and metrics."""

from repro.stats.cardinality import CardinalityEstimator
from repro.stats.metrics import CacheCounters, MetricsRegistry, StageTimings

__all__ = [
    "CacheCounters",
    "CardinalityEstimator",
    "MetricsRegistry",
    "StageTimings",
]
