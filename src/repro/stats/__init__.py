"""Cardinality statistics for anchor costing (Section 5.1)."""

from repro.stats.cardinality import CardinalityEstimator

__all__ = ["CardinalityEstimator"]
