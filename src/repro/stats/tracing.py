"""Per-query tracing: span trees, EXPLAIN ANALYZE plumbing, slow-query log.

A :class:`TraceContext` records what one query *actually did* as a tree of
:class:`TraceSpan` objects — parse and typecheck (memo hit or fresh),
planning per range variable (plan-cache hit/miss, estimated cardinality),
every executor operator (anchor scans, joins with their strategy and
rows in/out, EXISTS filters, projection), and — through the
:class:`~repro.stats.metrics.MetricsRegistry` event mirror — the storage
and resilience counters that fired while each span was open
(``index.temporal.*`` index-vs-brute decisions, ``index.expand.*`` batched
expansions, ``resilience.retry.*`` / ``resilience.breaker_trip.*``).

Design constraints:

* **Zero-allocation no-op when disabled.**  Code that may run untraced
  asks :func:`current_trace` (one ``ContextVar`` read) and either skips
  instrumentation on ``None`` or goes through :func:`maybe_span`, which
  returns the shared :data:`NULL_SPAN` singleton — no object is allocated
  on the untraced path.  ``benchmarks/bench_trace_overhead.py`` gates the
  cost of these guards.
* **Monotonic timings.**  Span intervals come from ``time.perf_counter``
  so child spans provably nest inside their parents.
* **Thread confinement.**  A context is installed per thread via
  :func:`TraceContext.activate` (a ``ContextVar``), matching the
  executor's one-thread-per-query evaluation; two threads tracing two
  queries never see each other's spans.

The :class:`SlowQueryLog` rides on the same machinery: every Nth query is
traced (sampling), and any query slower than the threshold is kept in a
bounded ring with its timing, row count and — when sampled — span tree.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

_CURRENT: ContextVar["TraceContext | None"] = ContextVar("nepal_trace", default=None)

_TRACE_IDS = iter(range(1, 1 << 62))
_TRACE_ID_LOCK = threading.Lock()


def current_trace() -> "TraceContext | None":
    """The trace installed on this thread, or None (the common case)."""
    return _CURRENT.get()


def next_trace_id() -> str:
    """A fresh process-unique trace id (shared with :class:`TraceContext`).

    The HTTP server stamps every response with one so even untraced
    requests correlate with server logs.
    """
    with _TRACE_ID_LOCK:
        return f"{next(_TRACE_IDS):016x}"


class _NullSpan:
    """Shared no-op span: accepts the full span API, records nothing."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def count(self, key: str, amount: int = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


def maybe_span(trace: "TraceContext | None", name: str, kind: str = "span"):
    """``trace.span(name)`` when tracing, the shared no-op span otherwise."""
    if trace is None:
        return NULL_SPAN
    return trace.span(name, kind=kind)


class TraceSpan:
    """One timed node of the trace tree.

    ``attrs`` holds one-shot facts (anchor choice, join strategy, row
    counts); ``counters`` accumulates repeated events (index hits, retry
    attempts) that fire while the span is the innermost open one.
    """

    __slots__ = ("name", "kind", "start", "end", "attrs", "counters", "children", "_trace")

    def __init__(self, trace: "TraceContext", name: str, kind: str):
        self.name = name
        self.kind = kind
        self.start: float | None = None
        self.end: float | None = None
        self.attrs: dict[str, Any] = {}
        self.counters: dict[str, int] = {}
        self.children: list[TraceSpan] = []
        self._trace = trace

    # -- recording ---------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "TraceSpan":
        self._trace._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._trace._close(self)
        return False

    # -- reading -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def elapsed(self) -> float:
        """Span duration in seconds (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["TraceSpan"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str, **attrs: Any) -> "TraceSpan | None":
        """First descendant (or self) with *name* and matching attrs."""
        for span in self.walk():
            if span.name == name and all(
                span.attrs.get(key) == value for key, value in attrs.items()
            ):
                return span
        return None

    def find_all(self, name: str) -> "list[TraceSpan]":
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready rendering (used by the server's ``?trace=1``)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "elapsed_ms": round(self.elapsed * 1000, 4),
        }
        if self.attrs:
            payload["attrs"] = {key: _jsonable(v) for key, v in self.attrs.items()}
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def render(self, indent: str = "", mask_timings: bool = False) -> str:
        """A human-readable tree rendering (the CLI's trace view)."""
        timing = "?" if mask_timings else f"{self.elapsed * 1000:.3f}"
        bits = [f"{indent}{self.name} [{timing} ms]"]
        for key in sorted(self.attrs):
            bits.append(f"{indent}  {key}={self.attrs[key]}")
        for key in sorted(self.counters):
            bits.append(f"{indent}  {key}: {self.counters[key]}")
        for child in self.children:
            bits.append(child.render(indent + "  ", mask_timings=mask_timings))
        return "\n".join(bits)

    def __repr__(self) -> str:
        return f"<TraceSpan {self.name!r} {len(self.children)} children>"


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class TraceContext:
    """Collects the span tree of one traced query execution.

    The first span opened becomes the root; later top-level spans are
    rejected so a finished trace always has exactly one root.  Use as::

        trace = TraceContext()
        result = db.query(text, trace=trace)
        trace.root.find("join", variable="P").attrs["strategy"]
    """

    def __init__(self, label: str = ""):
        self.trace_id = next_trace_id()
        self.label = label
        self.root: TraceSpan | None = None
        self._stack: list[TraceSpan] = []
        self.clock = time.perf_counter

    # -- span management ---------------------------------------------------

    def span(self, name: str, kind: str = "span") -> TraceSpan:
        """A new (unopened) span; use it as a context manager."""
        return TraceSpan(self, name, kind)

    def _open(self, span: TraceSpan) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            raise RuntimeError(
                f"trace {self.trace_id} already has a root span "
                f"({self.root.name!r}); cannot open second root {span.name!r}"
            )
        span.start = self.clock()
        self._stack.append(span)

    def _close(self, span: TraceSpan) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"trace {self.trace_id}: span {span.name!r} closed out of order"
            )
        span.end = self.clock()
        self._stack.pop()

    @property
    def current(self) -> TraceSpan | None:
        """The innermost open span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def count(self, key: str, amount: int = 1) -> None:
        """Accumulate an event counter on the innermost open span.

        The :class:`~repro.stats.metrics.MetricsRegistry` mirrors every
        ``event()`` here, which is how storage/resilience counters land on
        the operator span that caused them.
        """
        span = self.current
        if span is not None:
            span.count(key, amount)

    # -- installation ------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["TraceContext"]:
        """Install as this thread's current trace for the duration."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    # -- reading -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the root span has been opened and closed."""
        return self.root is not None and self.root.closed and not self._stack

    def spans(self) -> list[TraceSpan]:
        """Every recorded span, pre-order (empty before the root opens)."""
        return list(self.root.walk()) if self.root is not None else []

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "label": self.label,
            "root": self.root.to_dict() if self.root is not None else None,
        }

    def render(self, mask_timings: bool = False) -> str:
        if self.root is None:
            return f"trace {self.trace_id}: (no spans)"
        header = f"trace {'#' * 16 if mask_timings else self.trace_id}"
        return header + "\n" + self.root.render(mask_timings=mask_timings)

    def validate(self) -> list[str]:
        """Well-formedness problems (empty list when the tree is sound).

        Checks exactly the invariants the property suite asserts: one
        closed root, every span closed, every child interval nested inside
        its parent's, children ordered by start time.
        """
        problems: list[str] = []
        if self.root is None:
            return ["trace has no root span"]
        if self._stack:
            problems.append(f"{len(self._stack)} spans still open")
        for span in self.root.walk():
            if span.start is None or span.end is None:
                problems.append(f"span {span.name!r} never closed")
                continue
            if span.end < span.start:
                problems.append(f"span {span.name!r} ends before it starts")
            previous_start = None
            for child in span.children:
                if child.start is None or child.end is None:
                    continue  # reported when the walk reaches the child
                if child.start < span.start or child.end > span.end:
                    problems.append(
                        f"child {child.name!r} [{child.start}, {child.end}] "
                        f"escapes parent {span.name!r} [{span.start}, {span.end}]"
                    )
                if previous_start is not None and child.start < previous_start:
                    problems.append(
                        f"children of {span.name!r} out of start order at {child.name!r}"
                    )
                previous_start = child.start
        return problems


class SlowQueryLog:
    """Bounded ring of slow queries with sampled trace capture.

    ``threshold`` (seconds) decides what is *slow* enough to keep;
    ``trace_every`` samples every Nth query for full span-tree capture
    (``0`` disables tracing entirely — entries then carry timing and row
    counts only).  Sampling is decided before execution — a trace cannot
    be reconstructed after the fact — so the log trades a small tracing
    tax on one query in N for span trees on a representative sample of
    the slow ones.
    """

    def __init__(
        self,
        threshold: float = 0.25,
        capacity: int = 128,
        trace_every: int = 16,
    ):
        if threshold < 0:
            raise ValueError(f"slow-query threshold must be >= 0, got {threshold}")
        if capacity < 1:
            raise ValueError(f"slow-query capacity must be >= 1, got {capacity}")
        if trace_every < 0:
            raise ValueError(f"trace_every must be >= 0, got {trace_every}")
        self.threshold = threshold
        self.trace_every = trace_every
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seen = 0
        self._recorded = 0
        self._lock = threading.Lock()

    def wants_trace(self) -> bool:
        """Should the next query be traced?  (Counts the query as seen.)"""
        if self.trace_every == 0:
            return False
        with self._lock:
            self._seen += 1
            return (self._seen - 1) % self.trace_every == 0

    def observe(
        self,
        query: str,
        elapsed: float,
        rows: int,
        trace: TraceContext | None = None,
    ) -> bool:
        """Record the query if it crossed the threshold; True when kept."""
        if elapsed < self.threshold:
            return False
        entry: dict[str, Any] = {
            "query": query,
            "elapsed_ms": round(elapsed * 1000, 3),
            "rows": rows,
            "trace_id": trace.trace_id if trace is not None else None,
            "trace": trace.to_dict() if trace is not None else None,
        }
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return True

    def entries(self) -> list[dict[str, Any]]:
        """The retained slow queries, oldest first (JSON-ready)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "seen": self._seen,
                "recorded": self._recorded,
                "retained": len(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
