"""Lightweight execution metrics for the query pipeline.

The plan cache and the executor record counters (cache hits, misses,
invalidations, evictions) and per-stage wall-clock timings (parse,
typecheck, plan, execute) here.  A :class:`MetricsRegistry` is owned by
each :class:`~repro.core.database.NepalDB` and surfaced through
``NepalDB.cache_stats()`` and the CLI's ``.stats`` command, so the effect
of the compiled-plan cache is observable without a profiler.

All mutation paths are thread-safe: the serving layer increments
``server.*``/``concurrency.*`` events from a worker pool, and a bare
``d[k] = d.get(k, 0) + n`` read-modify-write loses increments when worker
threads interleave.  Every add happens under a lock; reads take the same
lock so snapshots are consistent.  The locks are uncontended in
single-threaded use and cheap enough to stay enabled unconditionally.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.stats.tracing import current_trace


@dataclass
class CacheCounters:
    """Hit/miss/invalidation accounting for one cache.

    The increment helpers (:meth:`hit`, :meth:`miss`, ...) are atomic and
    are what concurrent callers must use; the bare fields remain public
    for single-threaded tests and reporting.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def hit(self, count: int = 1) -> None:
        with self._lock:
            self.hits += count

    def miss(self, count: int = 1) -> None:
        with self._lock:
            self.misses += count

    def invalidation(self, count: int = 1) -> None:
        with self._lock:
            self.invalidations += count

    def eviction(self, count: int = 1) -> None:
        with self._lock:
            self.evictions += count

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            hits, misses = self.hits, self.misses
            invalidations, evictions = self.invalidations, self.evictions
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "invalidations": invalidations,
            "evictions": evictions,
            "hit_rate": round(hits / lookups if lookups else 0.0, 4),
        }

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.invalidations = self.evictions = 0


@dataclass
class StageTimings:
    """Cumulative wall-clock per pipeline stage, in seconds."""

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, stage: str, elapsed: float) -> None:
        with self._lock:
            self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed
            self.calls[stage] = self.calls.get(stage, 0) + 1

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, time.perf_counter() - started)

    def snapshot(self) -> dict[str, dict[str, float]]:
        with self._lock:
            seconds = dict(self.seconds)
            calls = dict(self.calls)
        return {
            stage: {
                "seconds": round(seconds[stage], 6),
                "calls": calls.get(stage, 0),
            }
            for stage in sorted(seconds)
        }

    def reset(self) -> None:
        with self._lock:
            self.seconds.clear()
            self.calls.clear()


class MetricsRegistry:
    """Named cache counters, free-form event counters, and stage timings.

    Event counters are plain named integers used by the resilience layer
    (``resilience.retry.<store>``, ``resilience.breaker_trip.<store>``,
    ``resilience.degraded.<store>``, ...), the durability layer
    (``wal.append``, ``wal.sync``, ``wal.bulk_commit``, ``wal.checkpoint``,
    ``recovery.replayed``, ``recovery.discarded``, ``recovery.torn_bytes``,
    ...), and the serving layer (``server.requests``, ``server.rejected``,
    ``concurrency.commits``, ``concurrency.snapshot.open``, ...) — anything
    that happens N times and has no hit/miss structure.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, CacheCounters] = {}
        self._events: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self.timings = StageTimings()

    def counters(self, name: str) -> CacheCounters:
        """The counter block for cache *name*, created on first use."""
        with self._lock:
            block = self._counters.get(name)
            if block is None:
                block = CacheCounters()
                self._counters[name] = block
            return block

    def event(self, name: str, count: int = 1) -> None:
        """Count *count* occurrences of the named event (atomic).

        Events are additionally mirrored onto the innermost open span of
        the thread's active :class:`~repro.stats.tracing.TraceContext`
        (when one is installed), which is how per-query traces pick up the
        storage, index and resilience counters that fired inside each
        operator.  Untraced callers pay one ``ContextVar`` read.
        """
        with self._lock:
            self._events[name] = self._events.get(name, 0) + count
        trace = current_trace()
        if trace is not None:
            trace.count(name, count)

    def event_count(self, name: str) -> int:
        """How many times the named event was recorded (0 if never)."""
        with self._lock:
            return self._events.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to *value* (last write wins, atomic).

        Gauges carry point-in-time levels that counters cannot —
        replication lag (``replication.lag_records`` / ``lag_seconds``),
        queue depths — and are exported next to the counters in
        :meth:`snapshot` and :meth:`to_prometheus`.
        """
        with self._lock:
            self._gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """The gauge's current level (*default* when never set)."""
        with self._lock:
            return self._gauges.get(name, default)

    def gauges(self, prefix: str = "") -> dict[str, float]:
        """All gauges (optionally restricted to a name prefix)."""
        with self._lock:
            items = sorted(self._gauges.items())
        return {name: value for name, value in items if name.startswith(prefix)}

    def events(self, prefix: str = "") -> dict[str, int]:
        """All event counters (optionally restricted to a name prefix)."""
        with self._lock:
            items = sorted(self._events.items())
        return {name: count for name, count in items if name.startswith(prefix)}

    def snapshot(self) -> dict[str, object]:
        """A JSON-ready dump of every counter block and the timings."""
        with self._lock:
            counters = dict(self._counters)
            events = dict(sorted(self._events.items()))
            gauges = dict(sorted(self._gauges.items()))
        return {
            "caches": {name: block.snapshot() for name, block in sorted(counters.items())},
            "events": events,
            "gauges": gauges,
            "timings": self.timings.snapshot(),
        }

    def reset(self) -> None:
        with self._lock:
            blocks = list(self._counters.values())
            self._events.clear()
            self._gauges.clear()
        for block in blocks:
            block.reset()
        self.timings.reset()

    def to_prometheus(self, prefix: str = "nepal") -> str:
        """The registry in Prometheus text exposition format.

        Served by the HTTP front end's ``GET /metrics`` so a scraper sees
        cache effectiveness, pipeline stage timings and the free-form
        event counters without bespoke parsing.  Metric and label names
        are sanitized to the Prometheus charset; event names become the
        ``event`` label of one ``<prefix>_events_total`` family.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            events = sorted(self._events.items())
            gauges = sorted(self._gauges.items())
        timings = self.timings.snapshot()
        lines: list[str] = []

        def sanitize(value: str) -> str:
            return "".join(
                ch if ch.isalnum() or ch in "_:." else "_" for ch in value
            )

        lines.append(f"# TYPE {prefix}_cache_operations_total counter")
        for name, block in counters:
            snapshot = block.snapshot()
            for kind in ("hits", "misses", "invalidations", "evictions"):
                lines.append(
                    f'{prefix}_cache_operations_total'
                    f'{{cache="{sanitize(name)}",kind="{kind}"}} {snapshot[kind]}'
                )
        lines.append(f"# TYPE {prefix}_events_total counter")
        for name, count in events:
            lines.append(
                f'{prefix}_events_total{{event="{sanitize(name)}"}} {count}'
            )
        lines.append(f"# TYPE {prefix}_gauge gauge")
        for name, value in gauges:
            lines.append(f'{prefix}_gauge{{gauge="{sanitize(name)}"}} {value}')
        lines.append(f"# TYPE {prefix}_stage_seconds_total counter")
        lines.append(f"# TYPE {prefix}_stage_calls_total counter")
        for stage, cell in sorted(timings.items()):
            label = sanitize(stage)
            lines.append(
                f'{prefix}_stage_seconds_total{{stage="{label}"}} {cell["seconds"]}'
            )
            lines.append(
                f'{prefix}_stage_calls_total{{stage="{label}"}} {cell["calls"]}'
            )
        return "\n".join(lines) + "\n"

    def describe(self) -> str:
        """Human-readable rendering for the CLI's ``.stats`` command."""
        with self._lock:
            counters = sorted(self._counters.items())
            events = sorted(self._events.items())
            gauges = sorted(self._gauges.items())
        lines: list[str] = []
        for name, block in counters:
            lines.append(
                f"  {name}: {block.hits} hits / {block.misses} misses "
                f"({100 * block.hit_rate:.1f}% hit rate), "
                f"{block.invalidations} invalidations, "
                f"{block.evictions} evictions"
            )
        for name, count in events:
            lines.append(f"  {name}: {count}")
        for name, value in gauges:
            lines.append(f"  {name}: {value:g}")
        timings = self.timings.snapshot()
        for stage, cell in sorted(timings.items()):
            lines.append(
                f"  {stage}: {1000 * cell['seconds']:.2f} ms over {cell['calls']} calls"
            )
        if not lines:
            return "  (no cache activity yet)"
        return "\n".join(lines)
