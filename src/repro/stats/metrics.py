"""Lightweight execution metrics for the query pipeline.

The plan cache and the executor record counters (cache hits, misses,
invalidations, evictions) and per-stage wall-clock timings (parse,
typecheck, plan, execute) here.  A :class:`MetricsRegistry` is owned by
each :class:`~repro.core.database.NepalDB` and surfaced through
``NepalDB.cache_stats()`` and the CLI's ``.stats`` command, so the effect
of the compiled-plan cache is observable without a profiler.

Counters are plain integers and timings plain float sums — cheap enough
to stay enabled unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class CacheCounters:
    """Hit/miss/invalidation accounting for one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = self.evictions = 0


@dataclass
class StageTimings:
    """Cumulative wall-clock per pipeline stage, in seconds."""

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def record(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed
        self.calls[stage] = self.calls.get(stage, 0) + 1

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, time.perf_counter() - started)

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {
            stage: {
                "seconds": round(self.seconds[stage], 6),
                "calls": self.calls.get(stage, 0),
            }
            for stage in sorted(self.seconds)
        }

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()


class MetricsRegistry:
    """Named cache counters, free-form event counters, and stage timings.

    Event counters are plain named integers used by the resilience layer
    (``resilience.retry.<store>``, ``resilience.breaker_trip.<store>``,
    ``resilience.degraded.<store>``, ...) and the durability layer
    (``wal.append``, ``wal.sync``, ``wal.bulk_commit``, ``wal.checkpoint``,
    ``recovery.replayed``, ``recovery.discarded``, ``recovery.torn_bytes``,
    ...) — anything that happens N times and has no hit/miss structure.
    """

    def __init__(self) -> None:
        self._counters: dict[str, CacheCounters] = {}
        self._events: dict[str, int] = {}
        self.timings = StageTimings()

    def counters(self, name: str) -> CacheCounters:
        """The counter block for cache *name*, created on first use."""
        block = self._counters.get(name)
        if block is None:
            block = CacheCounters()
            self._counters[name] = block
        return block

    def event(self, name: str, count: int = 1) -> None:
        """Count *count* occurrences of the named event."""
        self._events[name] = self._events.get(name, 0) + count

    def event_count(self, name: str) -> int:
        """How many times the named event was recorded (0 if never)."""
        return self._events.get(name, 0)

    def events(self, prefix: str = "") -> dict[str, int]:
        """All event counters (optionally restricted to a name prefix)."""
        return {
            name: count
            for name, count in sorted(self._events.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, object]:
        """A JSON-ready dump of every counter block and the timings."""
        return {
            "caches": {
                name: block.snapshot()
                for name, block in sorted(self._counters.items())
            },
            "events": dict(sorted(self._events.items())),
            "timings": self.timings.snapshot(),
        }

    def reset(self) -> None:
        for block in self._counters.values():
            block.reset()
        self._events.clear()
        self.timings.reset()

    def describe(self) -> str:
        """Human-readable rendering for the CLI's ``.stats`` command."""
        lines: list[str] = []
        for name, block in sorted(self._counters.items()):
            lines.append(
                f"  {name}: {block.hits} hits / {block.misses} misses "
                f"({100 * block.hit_rate:.1f}% hit rate), "
                f"{block.invalidations} invalidations, "
                f"{block.evictions} evictions"
            )
        for name, count in sorted(self._events.items()):
            lines.append(f"  {name}: {count}")
        for stage, total in sorted(self.timings.seconds.items()):
            calls = self.timings.calls.get(stage, 0)
            lines.append(f"  {stage}: {1000 * total:.2f} ms over {calls} calls")
        if not lines:
            return "  (no cache activity yet)"
        return "\n".join(lines)
