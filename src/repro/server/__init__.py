"""HTTP serving layer: concurrent reads over one database (``nepal serve``)."""

from repro.server.app import NepalServer, ServerConfig
from repro.server.client import NepalClient, ServerError

__all__ = ["NepalClient", "NepalServer", "ServerConfig", "ServerError"]
