"""HTTP serving layer: concurrent reads over one database (``nepal serve``)."""

from repro.server.app import NepalServer, RawResponse, ServerConfig
from repro.server.client import NepalClient, ServerError

__all__ = ["NepalClient", "NepalServer", "RawResponse", "ServerConfig", "ServerError"]
