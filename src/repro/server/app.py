"""A threaded HTTP front end serving one :class:`~repro.core.database.NepalDB`.

``nepal serve`` (or :class:`NepalServer` embedded in a test) exposes the
database over plain HTTP/JSON so many clients can read concurrently while
the single-writer commit gate serializes mutations:

* ``GET  /health``          — liveness + concurrency gauges;
* ``GET  /healthz``         — bare liveness probe (always 200 while up);
* ``GET  /readyz``          — readiness probe: 200 when the node should
  receive routed traffic, 503 while a replica bootstraps or lags past
  ``lag_threshold`` and on fenced nodes;
* ``GET  /stats``           — the full metrics snapshot (``db.stats()``);
* ``GET  /metrics``         — Prometheus text exposition of the metrics
  registry (``text/plain; version=0.0.4``);
* ``GET  /slowlog``         — retained slow-query entries + sampler stats;
* ``POST /query``           — ``{"query": <NPQL>, "snapshot": <id>?}``;
  add ``?trace=1`` (or ``"trace": true`` in the body) to execute under a
  fresh :class:`~repro.stats.tracing.TraceContext` and receive the span
  tree as a ``"trace"`` key in the response;
* ``POST /write``           — ``{"op": "insert_node" | "insert_edge" |
  "connect" | "update" | "delete", ...}``;
* ``POST /snapshot``        — open a pinned :class:`ReadSnapshot`, returns
  ``{"id", "as_of", "data_version"}``;
* ``POST /snapshot/close``  — ``{"id": <id>}``;
* ``GET  /replication/status|wal|snapshot`` and ``POST
  /replication/promote|repoint|fence`` — the log-shipping protocol and
  failover controls (see :mod:`repro.replication`).  Writes on a replica
  answer ``307`` with a ``Location`` pointing at the primary; writes on a
  node fenced by a higher epoch answer ``409``.  Every response carries
  ``X-Nepal-Epoch``.

Concurrency model: a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
runs the request handlers (``workers`` threads); admission control counts
requests in flight and refuses anything past ``workers + queue_depth``
with an immediate ``503`` + ``Retry-After`` instead of queueing unboundedly
(HTTP/1.0, one request per connection, so in-flight requests and open
connections coincide).  Every query request that is not bound to a held
snapshot executes against a fresh ephemeral pin with a per-request
deadline — the cooperative-cancellation deadline of
:class:`~repro.core.concurrency.SnapshotStore` — mapped to ``504`` when
overrun.  The default deadline comes from the database's configured
:class:`~repro.core.resilience.ResiliencePolicy` when one is set.

Request accounting lands in the owning ``MetricsRegistry`` under
``server.*`` (requests, queries, writes, rejected, deadline_exceeded,
errors) next to the ``concurrency.*`` counters of the commit gate.

Observability: every response carries an ``X-Nepal-Trace-Id`` header —
the id of the request's :class:`TraceContext` when one was recorded
(``?trace=1`` or slow-query sampling), a fresh id from the same sequence
otherwise — so clients can correlate responses with the slow-query log.
"""

from __future__ import annotations

import itertools
import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs

from repro.core.concurrency import ReadSnapshot
from repro.core.database import NepalDB
from repro.errors import (
    FencedError,
    NepalError,
    NotPrimaryError,
    QueryDeadlineExceeded,
)
from repro.model.elements import ElementRecord
from repro.model.pathway import Pathway
from repro.query.results import QueryResult
from repro.stats.tracing import TraceContext, next_trace_id

_REJECT_RESPONSE = (
    b"HTTP/1.0 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Retry-After: 1\r\n"
    b"Content-Length: 45\r\n"
    b"\r\n"
    b'{"error": "server saturated, retry shortly"}\n'
)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for :class:`NepalServer`.

    ``workers`` handler threads serve requests; up to ``queue_depth``
    additional requests may wait for a free thread before admission
    control starts refusing with 503.  ``deadline`` bounds each request's
    reads (``None`` defers to the database's resilience policy deadline,
    and runs unbounded when there is none).  ``port=0`` binds an
    ephemeral port — read the actual one from ``server.address``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 8
    queue_depth: int = 16
    deadline: float | None = None
    #: Readiness threshold: a replica lagging more than this many records
    #: behind its primary answers 503 on ``GET /readyz``.
    lag_threshold: int = 1000


@dataclass
class RequestContext:
    """Per-request observability state handed to every route handler.

    ``params`` holds the parsed query string (last value wins);
    ``trace_id`` is stamped onto the ``X-Nepal-Trace-Id`` response header —
    handlers that record a :class:`TraceContext` overwrite the default
    fresh id with the trace's own.  ``headers`` carries the request
    headers (the replication layer reads ``X-Nepal-Epoch`` from them).
    """

    params: Mapping[str, str]
    trace_id: str
    headers: Mapping[str, str] = field(default_factory=dict)

    def epoch_claim(self) -> int | None:
        """The epoch the caller presented, if any (fencing input)."""
        raw = self.headers.get("X-Nepal-Epoch")
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    def flag(self, name: str, payload: Mapping[str, Any] | None = None) -> bool:
        """Is boolean option *name* set via query string or JSON body?"""
        raw = self.params.get(name)
        if raw is not None:
            return raw.lower() not in ("", "0", "false", "no")
        if payload is not None:
            return bool(payload.get(name))
        return False


@dataclass(frozen=True)
class RawResponse:
    """A handler return value that controls status, body and headers.

    Route handlers normally return a ``dict`` (JSON, 200) or ``str``
    (text, 200); the replication endpoints need binary bodies
    (``/replication/wal``), non-200 statuses (``/readyz``) and extra
    headers (``Location``, ``X-Nepal-Wal-Size``), which this carries.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/octet-stream"
    headers: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls, status: int, payload: Mapping[str, Any], headers: Mapping[str, str] | None = None
    ) -> "RawResponse":
        return cls(
            status=status,
            body=(json.dumps(payload) + "\n").encode("utf-8"),
            content_type="application/json",
            headers=dict(headers or {}),
        )


def _json_value(value: Any) -> Any:
    """A JSON-representable rendering of one result cell."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return None if math.isinf(value) else value
    if isinstance(value, Pathway):
        return value.render()
    if isinstance(value, ElementRecord):
        return {
            "uid": value.uid,
            "class": value.cls.name,
            "fields": {name: _json_value(v) for name, v in value.fields.items()},
            "period": [
                _json_value(value.period.start),
                _json_value(value.period.end),
            ],
        }
    if isinstance(value, (list, tuple)):
        return [_json_value(item) for item in value]
    return str(value)


def _result_payload(result: QueryResult) -> dict[str, Any]:
    return {
        "columns": list(result.columns),
        "rows": [
            {
                "values": [_json_value(v) for v in row.values],
                "bindings": {
                    name: pathway.render()
                    for name, pathway in (row.bindings or {}).items()
                },
            }
            for row in result.rows
        ],
        "warnings": list(result.warnings),
    }


class _PooledHTTPServer(HTTPServer):
    """HTTPServer whose requests run on the app's bounded worker pool."""

    # Bind even if the previous listener is in TIME_WAIT.
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], handler: type, app: "NepalServer"):
        super().__init__(address, handler)
        self.app = app

    def process_request(self, request, client_address) -> None:
        app = self.app
        if not app._admit():
            try:
                request.sendall(_REJECT_RESPONSE)
            except OSError:
                pass
            self.shutdown_request(request)
            return
        app._pool.submit(self._work, request, client_address)

    def _work(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:  # pragma: no cover - handler errors are logged
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)
            self.app._finish()


class _Handler(BaseHTTPRequestHandler):
    # One request per connection keeps admission control exact: an open
    # connection IS an in-flight request.
    protocol_version = "HTTP/1.0"

    @property
    def app(self) -> "NepalServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the metrics registry is the access log

    # -- plumbing ----------------------------------------------------------

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        ctx: "RequestContext",
        extra_headers: Mapping[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Nepal-Trace-Id", ctx.trace_id)
        manager = self.app.replication
        if manager is not None:
            # Every response advertises the node's epoch, so any client
            # that ever talked to the new primary carries proof that
            # fences a revived stale one.
            self.send_header("X-Nepal-Epoch", str(manager.epoch))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Mapping[str, Any], ctx: "RequestContext") -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self._send_body(status, body, "application/json", ctx)

    def _send_text(self, status: int, text: str, ctx: "RequestContext") -> None:
        self._send_body(
            status,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
            ctx,
        )

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise NepalError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        app = self.app
        app._event("requests")
        path, _, query_string = self.path.partition("?")
        params = {key: values[-1] for key, values in parse_qs(query_string).items()}
        ctx = RequestContext(
            params=params, trace_id=next_trace_id(), headers=dict(self.headers)
        )
        try:
            handler = app.routes.get((method, path))
            if handler is None:
                self._send_json(404, {"error": f"no route {method} {path}"}, ctx)
                return
            payload = self._read_body() if method == "POST" else {}
            response = handler(payload, ctx)
            if isinstance(response, RawResponse):
                self._send_body(
                    response.status, response.body, response.content_type,
                    ctx, response.headers,
                )
            elif isinstance(response, str):
                self._send_text(200, response, ctx)
            else:
                self._send_json(200, response, ctx)
        except QueryDeadlineExceeded as error:
            app._event("deadline_exceeded")
            self._send_json(504, {"error": str(error)}, ctx)
        except NotPrimaryError as error:
            # A write reached a replica: answer with a redirect so even a
            # cluster-unaware client can follow it to the primary.
            app._event("not_primary")
            headers = (
                {"Location": f"http://{error.primary}{self.path}"}
                if error.primary
                else {}
            )
            self._send_body(
                307,
                (json.dumps({"error": str(error), "primary": error.primary}) + "\n")
                .encode("utf-8"),
                "application/json",
                ctx,
                headers,
            )
        except FencedError as error:
            app._event("fenced_write_rejected")
            self._send_json(
                409, {"error": str(error), "fenced_by": error.epoch}, ctx
            )
        except (NepalError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            app._event("errors")
            self._send_json(400, {"error": f"{type(error).__name__}: {error}"}, ctx)
        except Exception as error:  # pragma: no cover - defensive
            app._event("errors")
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"}, ctx)

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


class NepalServer:
    """Serve *db* over HTTP with bounded concurrency.

    >>> server = NepalServer(db, ServerConfig(port=0))
    >>> server.start()
    >>> host, port = server.address
    >>> ...
    >>> server.stop()
    """

    def __init__(
        self,
        db: NepalDB,
        config: ServerConfig | None = None,
        replication: "object | None" = None,
    ):
        from repro.replication.manager import ReplicationManager

        self.db = db
        self.config = config or ServerConfig()
        self.metrics = db.metrics
        self.replication: ReplicationManager = (
            replication or ReplicationManager(db)
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="nepal-http"
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._capacity = self.config.workers + self.config.queue_depth
        self._snapshots: dict[int, ReadSnapshot] = {}
        self._snapshot_ids = itertools.count(1)
        self._snapshot_lock = threading.Lock()
        self._httpd: _PooledHTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self.routes = {
            ("GET", "/health"): self._route_health,
            ("GET", "/healthz"): self._route_healthz,
            ("GET", "/readyz"): self._route_readyz,
            ("GET", "/stats"): self._route_stats,
            ("GET", "/metrics"): self._route_metrics,
            ("GET", "/slowlog"): self._route_slowlog,
            ("POST", "/query"): self._route_query,
            ("POST", "/write"): self._route_write,
            ("POST", "/snapshot"): self._route_snapshot_open,
            ("POST", "/snapshot/close"): self._route_snapshot_close,
            ("GET", "/replication/status"): self._route_replication_status,
            ("GET", "/replication/wal"): self._route_replication_wal,
            ("GET", "/replication/snapshot"): self._route_replication_snapshot,
            ("POST", "/replication/promote"): self._route_replication_promote,
            ("POST", "/replication/repoint"): self._route_replication_repoint,
            ("POST", "/replication/fence"): self._route_replication_fence,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "NepalServer":
        if self._httpd is not None:
            raise NepalError("server already started")
        self._httpd = _PooledHTTPServer(
            (self.config.host, self.config.port), _Handler, self
        )
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="nepal-http-accept",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        if self._httpd is None:
            raise NepalError("server is not started")
        return self._httpd.server_address[:2]

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None
        self._pool.shutdown(wait=True)
        with self._snapshot_lock:
            leftover = list(self._snapshots.values())
            self._snapshots.clear()
        for snapshot in leftover:
            snapshot.close()

    def graceful_stop(self) -> None:
        """Drain and shut down in order, leaving a clean journal behind.

        The SIGTERM path of ``nepal serve``: stop accepting connections,
        stop background replication (the puller thread), wait for every
        in-flight request to finish on the worker pool, close any
        snapshots clients left open, then flush and close the WAL.  After
        this the process can exit without losing an acknowledged write —
        and a replica's journal ends exactly at its last commit boundary.
        """
        self._event("graceful_stop")
        self.replication.shutdown()
        self.stop()  # shutdown() waits out in-flight handlers, then closes snapshots
        self.db.close()

    def __enter__(self) -> "NepalServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- admission control -------------------------------------------------

    def _admit(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self._capacity:
                self._event("rejected")
                return False
            self._inflight += 1
            return True

    def _finish(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _event(self, kind: str) -> None:
        self.metrics.event(f"server.{kind}")

    def _deadline(self) -> float | None:
        if self.config.deadline is not None:
            return self.config.deadline
        policy = self.db._resilience
        return policy.deadline if policy is not None else None

    # -- routes ------------------------------------------------------------

    def _route_health(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        return {
            "status": "ok",
            "inflight": self.inflight,
            "capacity": self._capacity,
            "workers": self.config.workers,
            "open_snapshots": self.db.write_gate.open_pins(),
            "commits": self.db.write_gate.commits,
            "data_version": self.db.store.data_version,
        }

    def _route_healthz(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        """Liveness: the process is up and handling requests.  Always 200
        — orchestration restarts on liveness failure, so this must not
        flap with replication lag (that is :meth:`_route_readyz`)."""
        return {"status": "alive"}

    def _route_readyz(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> RawResponse:
        """Readiness: should this node receive routed traffic?

        A primary is ready once recovery completed (construction is
        synchronous, so: always).  A replica is ready when its stream is
        live and record lag is under ``config.lag_threshold``.  A fenced
        node is never ready.  Not-ready answers 503, the conventional
        probe contract.
        """
        ready, detail = self.replication.readiness(self.config.lag_threshold)
        return RawResponse.json(200 if ready else 503, {"ready": ready, **detail})

    def _route_stats(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        return {"stats": self.db.stats()}

    def _route_metrics(self, payload: Mapping[str, Any], ctx: RequestContext) -> str:
        """Prometheus text exposition of the database's metrics registry."""
        return self.metrics.to_prometheus()

    def _route_slowlog(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        log = self.db.slow_query_log
        return {
            "enabled": log is not None,
            "stats": log.stats() if log is not None else None,
            "entries": self.db.slow_queries(),
        }

    def _route_query(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        text = payload.get("query")
        if not isinstance(text, str) or not text.strip():
            raise NepalError("POST /query requires a non-empty 'query' string")
        self._event("queries")
        trace: TraceContext | None = None
        if ctx.flag("trace", payload):
            trace = TraceContext(label=text)
            ctx.trace_id = trace.trace_id
            self._event("traced_queries")
        snapshot_id = payload.get("snapshot")
        if snapshot_id is not None:
            snapshot = self._held_snapshot(snapshot_id)
            result = snapshot.query(text, trace=trace)
        elif self.db.store.supports_snapshots:
            with self.db.snapshot(deadline=self._deadline()) as snapshot:
                result = snapshot.query(text, trace=trace)
        else:
            # Backend without version chains (e.g. relational): read live.
            result = self.db.query(text, trace=trace)
        response = _result_payload(result)
        if trace is not None:
            response["trace"] = trace.to_dict()
        return response

    def _route_write(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        # Replication gate first: replicas redirect (307), fenced nodes
        # refuse (409), and a client presenting a higher epoch fences a
        # stale primary before its write can diverge the history.
        self.replication.check_writable(ctx.epoch_claim())
        op = payload.get("op")
        self._event("writes")
        db = self.db
        if op == "insert_node":
            uid = db.insert_node(payload["class"], payload.get("fields"))
            return {"uid": uid}
        if op == "insert_edge":
            uid = db.insert_edge(
                payload["class"],
                int(payload["source"]),
                int(payload["target"]),
                payload.get("fields"),
            )
            return {"uid": uid}
        if op == "connect":
            uids = db.connect(
                payload["class"],
                int(payload["left"]),
                int(payload["right"]),
                payload.get("fields"),
            )
            return {"uids": list(uids)}
        if op == "update":
            db.update(int(payload["uid"]), payload["changes"])
            return {"updated": int(payload["uid"])}
        if op == "delete":
            db.delete(int(payload["uid"]))
            return {"deleted": int(payload["uid"])}
        raise NepalError(
            f"unknown write op {op!r} (expected insert_node, insert_edge, "
            f"connect, update or delete)"
        )

    def _route_snapshot_open(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        deadline = payload.get("deadline", self._deadline())
        snapshot = self.db.snapshot(deadline=deadline)
        with self._snapshot_lock:
            snapshot_id = next(self._snapshot_ids)
            self._snapshots[snapshot_id] = snapshot
        return {
            "id": snapshot_id,
            "as_of": snapshot.as_of,
            "data_version": snapshot.data_version,
        }

    def _route_snapshot_close(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        snapshot_id = payload.get("id")
        with self._snapshot_lock:
            snapshot = self._snapshots.pop(snapshot_id, None)
        if snapshot is None:
            raise NepalError(f"unknown snapshot id {snapshot_id!r}")
        snapshot.close()
        return {"closed": snapshot_id}

    # -- replication routes ------------------------------------------------

    def _require_durable(self):
        durable = self.db.durable_store()
        if durable is None:
            from repro.errors import ReplicationError

            raise ReplicationError(
                "this node has no durable store to replicate "
                "(start it with --data-dir)"
            )
        return durable

    def _route_replication_status(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        return self.replication.status()

    def _route_replication_wal(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> RawResponse:
        """Serve committed journal bytes from ``?offset=`` (log shipping).

        The chunk may end mid-frame; the replica's decoder buffers the
        split.  An offset beyond the journal answers ``416`` — the
        caller's position predates a checkpoint truncation and it must
        re-base or resync (see the puller's truncation handling).
        """
        from repro.errors import StorageError

        durable = self._require_durable()
        offset = int(ctx.params.get("offset", 0))
        limit = int(ctx.params.get("limit", 1 << 20))
        try:
            chunk, committed = durable.read_wal(offset, limit)
        except StorageError as error:
            return RawResponse.json(
                416, {"error": str(error), "wal_bytes": durable.wal_bytes}
            )
        self.metrics.event("replication.wal_served")
        return RawResponse(
            status=200,
            body=bytes(chunk),
            content_type="application/octet-stream",
            headers={
                "X-Nepal-Wal-Size": str(committed),
                "X-Nepal-Last-Lsn": str(durable.last_lsn),
            },
        )

    def _route_replication_snapshot(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> RawResponse:
        """A consistent bootstrap snapshot (compacted history + manifest)."""
        durable = self._require_durable()
        data, last_lsn, _epoch = durable.snapshot_stream()
        return RawResponse(
            status=200,
            body=data,
            content_type="application/octet-stream",
            headers={"X-Nepal-Last-Lsn": str(last_lsn)},
        )

    def _route_replication_promote(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        status = self.replication.promote()
        return {"promoted": True, **status}

    def _route_replication_repoint(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        primary = payload.get("primary")
        if not isinstance(primary, str) or not primary:
            raise NepalError(
                "POST /replication/repoint requires a 'primary' host:port"
            )
        self.replication.repoint(primary)
        return self.replication.status()

    def _route_replication_fence(
        self, payload: Mapping[str, Any], ctx: RequestContext
    ) -> dict[str, Any]:
        epoch = payload.get("epoch")
        if not isinstance(epoch, int):
            raise NepalError(
                "POST /replication/fence requires an integer 'epoch'"
            )
        self.replication.fence(epoch)
        return self.replication.status()

    def _held_snapshot(self, snapshot_id: Any) -> ReadSnapshot:
        with self._snapshot_lock:
            snapshot = self._snapshots.get(snapshot_id)
        if snapshot is None:
            raise NepalError(f"unknown snapshot id {snapshot_id!r}")
        return snapshot
