"""A minimal JSON/HTTP client for :class:`~repro.server.app.NepalServer`.

Stdlib-only (``http.client``); one connection per request, matching the
server's HTTP/1.0 one-request-per-connection admission model.  Used by the
load-test walkthrough in the README, the concurrency test suite and the
replication layer — but any HTTP client works, the protocol is plain JSON
(plus raw octet streams on the ``/replication/wal`` and
``/replication/snapshot`` endpoints, fetched via :meth:`NepalClient.raw_request`).

Admission control: a saturated server answers ``503`` with a
``Retry-After`` header.  The client honours it — it sleeps the advertised
interval and retries, up to ``retry_503`` extra attempts — instead of
surfacing the transient rejection to the caller.  The ``sleep`` callable is
injectable so tests verify the behaviour on a fake clock without real
waiting.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Mapping

from repro.errors import NepalError


class ServerError(NepalError):
    """A non-2xx response from the server, carrying the HTTP status.

    ``retry_after`` is the parsed ``Retry-After`` header (seconds) when the
    response carried one, and ``headers`` the full response header map —
    cluster-aware callers read ``X-Nepal-Epoch`` and ``Location`` from it.
    """

    def __init__(
        self,
        message: str,
        status: int,
        retry_after: float | None = None,
        headers: Mapping[str, str] | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.headers = dict(headers or {})


def _parse_retry_after(value: str | None) -> float | None:
    """The ``Retry-After`` header as seconds (delta form only; HTTP-date
    forms are ignored — this server never sends them)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return max(0.0, seconds)


class NepalClient:
    """Talk to a running :class:`~repro.server.app.NepalServer`.

    >>> client = NepalClient(*server.address)
    >>> client.query("Retrieve P From PATHS P Where P MATCHES Host()")
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry_503: int = 2,
        max_retry_after: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_503 = retry_503
        self.max_retry_after = max_retry_after
        self.sleep = sleep

    # -- transport ---------------------------------------------------------

    def raw_request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP round trip: ``(status, headers, body bytes)``.

        No status interpretation and no retries — the binary transport the
        replication puller uses for WAL chunks and snapshot streams.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=dict(headers or {}))
            response = connection.getresponse()
            raw = response.read()
            return response.status, dict(response.getheaders()), raw
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        send_headers = dict(headers or {})
        if body is not None:
            send_headers.setdefault("Content-Type", "application/json")
        attempts_left = max(0, self.retry_503)
        while True:
            status, response_headers, raw = self.raw_request(
                method, path, body=body, headers=send_headers
            )
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except json.JSONDecodeError:
                decoded = {"error": raw.decode("utf-8", "replace").strip()}
            if status < 300:
                return decoded
            retry_after = _parse_retry_after(response_headers.get("Retry-After"))
            if status == 503 and retry_after is not None and attempts_left > 0:
                # Admission control said "come back shortly": honour it
                # rather than failing a request the server could serve in
                # a moment.  The wait is capped so a hostile header cannot
                # park the caller.
                attempts_left -= 1
                self.sleep(min(retry_after, self.max_retry_after))
                continue
            raise ServerError(
                decoded.get("error", f"HTTP {status}"),
                status=status,
                retry_after=retry_after,
                headers=response_headers,
            )

    # -- convenience wrappers ----------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def readyz(self) -> dict[str, Any]:
        """Readiness probe — raises :class:`ServerError` (503) when not ready."""
        return self.request("GET", "/readyz")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/stats")["stats"]

    def replication_status(self) -> dict[str, Any]:
        return self.request("GET", "/replication/status")

    def promote(self) -> dict[str, Any]:
        return self.request("POST", "/replication/promote", {})

    def query(self, text: str, snapshot: int | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"query": text}
        if snapshot is not None:
            payload["snapshot"] = snapshot
        return self.request("POST", "/query", payload)

    def insert_node(self, class_name: str, fields: Mapping[str, Any] | None = None) -> int:
        return self.request(
            "POST", "/write", {"op": "insert_node", "class": class_name, "fields": fields}
        )["uid"]

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
    ) -> int:
        return self.request(
            "POST",
            "/write",
            {
                "op": "insert_edge",
                "class": class_name,
                "source": source,
                "target": target,
                "fields": fields,
            },
        )["uid"]

    def update(self, uid: int, changes: Mapping[str, Any]) -> None:
        self.request("POST", "/write", {"op": "update", "uid": uid, "changes": changes})

    def delete(self, uid: int) -> None:
        self.request("POST", "/write", {"op": "delete", "uid": uid})

    def open_snapshot(self, deadline: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {}
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request("POST", "/snapshot", payload)

    def close_snapshot(self, snapshot_id: int) -> None:
        self.request("POST", "/snapshot/close", {"id": snapshot_id})
