"""A minimal JSON/HTTP client for :class:`~repro.server.app.NepalServer`.

Stdlib-only (``http.client``); one connection per request, matching the
server's HTTP/1.0 one-request-per-connection admission model.  Used by the
load-test walkthrough in the README and the concurrency test suite — but
any HTTP client works, the protocol is plain JSON.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping

from repro.errors import NepalError


class ServerError(NepalError):
    """A non-2xx response from the server, carrying the HTTP status."""

    def __init__(self, message: str, status: int):
        super().__init__(message)
        self.status = status


class NepalClient:
    """Talk to a running :class:`~repro.server.app.NepalServer`.

    >>> client = NepalClient(*server.address)
    >>> client.query("Retrieve P From PATHS P Where P MATCHES Host()")
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace").strip()}
        if status >= 300:
            raise ServerError(
                decoded.get("error", f"HTTP {status}"), status=status
            )
        return decoded

    # -- convenience wrappers ----------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/stats")["stats"]

    def query(self, text: str, snapshot: int | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"query": text}
        if snapshot is not None:
            payload["snapshot"] = snapshot
        return self.request("POST", "/query", payload)

    def insert_node(self, class_name: str, fields: Mapping[str, Any] | None = None) -> int:
        return self.request(
            "POST", "/write", {"op": "insert_node", "class": class_name, "fields": fields}
        )["uid"]

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
    ) -> int:
        return self.request(
            "POST",
            "/write",
            {
                "op": "insert_edge",
                "class": class_name,
                "source": source,
                "target": target,
                "fields": fields,
            },
        )["uid"]

    def update(self, uid: int, changes: Mapping[str, Any]) -> None:
        self.request("POST", "/write", {"op": "update", "uid": uid, "changes": changes})

    def delete(self, uid: int) -> None:
        self.request("POST", "/write", {"op": "delete", "uid": uid})

    def open_snapshot(self, deadline: float | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {}
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request("POST", "/snapshot", payload)

    def close_snapshot(self, snapshot_id: int) -> None:
        self.request("POST", "/snapshot/close", {"id": snapshot_id})
