"""Small shared utilities (id generation, text helpers)."""

from repro.util.ids import IdAllocator
from repro.util.text import format_table, indent_block

__all__ = ["IdAllocator", "format_table", "indent_block"]
