"""Unique element-id allocation.

Nepal requires database-wide unique identifiers for nodes and edges (the
Postgres implementation keeps "a table to ensure that unique identifiers are
indeed unique").  The allocator hands out monotonically increasing integer
ids and can be advanced past externally supplied ids so generated and loaded
data can coexist.
"""

from __future__ import annotations

import itertools
import threading


class IdAllocator:
    """Thread-safe monotonically increasing id source.

    >>> alloc = IdAllocator()
    >>> alloc.next()
    1
    >>> alloc.observe(10)
    >>> alloc.next()
    11
    """

    def __init__(self, start: int = 1):
        self._lock = threading.Lock()
        self._counter = itertools.count(start)
        self._last = start - 1

    def next(self) -> int:
        """Return the next unused id."""
        with self._lock:
            value = next(self._counter)
            self._last = value
            return value

    def observe(self, external_id: int) -> None:
        """Record an externally assigned id so it is never handed out again."""
        with self._lock:
            if external_id > self._last:
                self._last = external_id
                self._counter = itertools.count(external_id + 1)

    @property
    def last(self) -> int:
        """The highest id seen or allocated so far."""
        return self._last
