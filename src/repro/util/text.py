"""Text formatting helpers used by explain output, the CLI and benchmarks."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table.

    Used by ``explain()`` output and by the benchmark harness to print
    paper-style result tables.

    >>> print(format_table(["a", "b"], [[1, 22], [333, 4]]))
    a   | b
    ----+---
    1   | 22
    333 | 4
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    separator = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in str_rows
    ]
    return "\n".join([header_line, separator, *body])


def indent_block(text: str, prefix: str = "  ") -> str:
    """Indent every line of *text* with *prefix*."""
    return "\n".join(prefix + line for line in text.splitlines())


def pluralize(count: int, singular: str, plural: str | None = None) -> str:
    """Return ``"<count> <noun>"`` with naive pluralization."""
    noun = singular if count == 1 else (plural or singular + "s")
    return f"{count} {noun}"
