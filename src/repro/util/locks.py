"""Reader/writer lock for the in-memory store.

The memgraph backend keeps its state in plain dicts; CPython raises
``RuntimeError: dictionary changed size during iteration`` when a reader
iterates one while a writer mutates it, so concurrent serving needs real
exclusion even under the GIL.  :class:`ReadWriteLock` gives the store
shared readers / exclusive writer semantics with two properties the
engine relies on:

* **Reentrancy** — the store's write paths recurse (``delete_element``
  cascades over incident edges) and its writers read their own indexes,
  so a thread holding the write lock may re-enter both the write and the
  read side, and a reader may nest further reads.
* **Writer preference** — a pending writer blocks *new* reader threads,
  so churn writes cannot be starved by a steady stream of queries.
  Threads that already hold the read lock may still nest reads (granting
  them is required to avoid self-deadlock).

Read-to-write upgrades deadlock under writer preference and are rejected
with ``RuntimeError`` instead.
"""

from __future__ import annotations

import threading


class ReadWriteLock:
    """Shared-reader / exclusive-writer lock, reentrant, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._reader_depth: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0
        self.read_locked = _ReadContext(self)
        self.write_locked = _WriteContext(self)

    # -- read side --------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Writer reading its own state: already exclusive.
                self._reader_depth[me] = self._reader_depth.get(me, 0) + 1
                return
            if self._reader_depth.get(me):
                # Nested read: must be granted even with writers waiting,
                # otherwise the thread deadlocks against itself.
                self._reader_depth[me] += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._reader_depth[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._reader_depth.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            if depth == 1:
                del self._reader_depth[me]
                if self._writer is None and not self._reader_depth:
                    self._cond.notify_all()
            else:
                self._reader_depth[me] = depth - 1

    # -- write side -------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._reader_depth.get(me):
                raise RuntimeError(
                    "read-to-write lock upgrade is not supported (would deadlock)"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._reader_depth:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread that does not hold it")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()


class _ReadContext:
    """Reusable ``with lock.read_locked:`` context manager."""

    __slots__ = ("_lock",)

    def __init__(self, lock: ReadWriteLock):
        self._lock = lock

    def __enter__(self) -> None:
        self._lock.acquire_read()

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release_read()


class _WriteContext:
    """Reusable ``with lock.write_locked:`` context manager."""

    __slots__ = ("_lock",)

    def __init__(self, lock: ReadWriteLock):
        self._lock = lock

    def __enter__(self) -> None:
        self._lock.acquire_write()

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release_write()
