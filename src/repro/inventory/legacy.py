"""Generator for the legacy network topology (Section 6, Table 2).

The paper's legacy graph arrived "as a collection of nodes and edges with
type_indicators" and was first loaded with one node class and one edge
class; reloading it with 66 edge subclasses made the bottom-up query ~14×
faster.  This generator reproduces the structures that drive those numbers:

* **service chains** — linear customer → access → aggregation → core paths
  over *circuit* edge types; many chains funnel into few core nodes, which
  is what makes the reverse service-path query explode;
* **service placement** — vertical service → port → card chains: every
  customer service terminates on 1–2 ports, and ports concentrate on a
  small set of active cards, so the length-3 top-down query (one service
  down to its card) returns a handful of paths while the bottom-up query
  (one card up to everything it carries) returns dozens — the asymmetry of
  the paper's Table 2;
* **equipment hierarchy** — site → device → shelf → card chains over the
  same *vertical* edge family;
* **hub pollution** — active cards receive large numbers of
  *noise*-type edges (monitoring, billing, discovery relationships) that
  are irrelevant to every query; with a single edge class they must all be
  fetched and filtered, with subclasses they are never touched.

66 concrete edge types exist in three families (20 circuit, 10 vertical,
36 noise).  :func:`build_legacy_schema` builds either the single-class
schema (types kept as the ``category``/``kind`` fields) or the subclassed
schema (one edge class per type under ``CircuitEdge``/``VerticalEdge``/
``NoiseEdge`` parents), so the same generated graph exercises both loads.

Defaults are scaled to ~1/40 of the paper's 1.6M nodes / 7.1M edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.schema.registry import Schema
from repro.storage.base import GraphStore

CIRCUIT_TYPES = tuple(f"circuit_{i:02d}" for i in range(20))
VERTICAL_TYPES = tuple(f"vertical_{i:02d}" for i in range(10))
NOISE_TYPES = tuple(f"noise_{i:02d}" for i in range(36))
ALL_TYPES = CIRCUIT_TYPES + VERTICAL_TYPES + NOISE_TYPES


def type_class_name(type_indicator: str) -> str:
    """Edge class name for a type indicator in the subclassed schema."""
    return "T_" + type_indicator


def build_legacy_schema(subclassed: bool) -> Schema:
    """The legacy store schema in either of the paper's two variants."""
    suffix = "subclassed" if subclassed else "flat"
    schema = Schema(f"legacy-{suffix}")
    schema.define_node(
        "Entity",
        fields={"kind": "string", "status": "string"},
        description="a legacy inventory element (multiple type indicators)",
        expected_count=50_000,
    )
    edge_fields = {"category": "string", "kind": "string"}
    if not subclassed:
        schema.define_edge(
            "GenericEdge", fields=edge_fields,
            description="every legacy relationship, types kept as fields",
            expected_count=200_000,
        )
    else:
        schema.define_edge("GenericEdge", fields=edge_fields, abstract=True)
        families = {
            "CircuitEdge": CIRCUIT_TYPES,
            "VerticalEdge": VERTICAL_TYPES,
            "NoiseEdge": NOISE_TYPES,
        }
        for family, types in families.items():
            schema.define_edge(family, parent="GenericEdge", abstract=True)
            for type_indicator in types:
                schema.define_edge(
                    type_class_name(type_indicator), parent=family,
                    description=f"legacy type_indicator {type_indicator}",
                )
    schema.validate()
    return schema


@dataclass(frozen=True)
class LegacyParams:
    """Size knobs; defaults ≈ 1/40 of the paper's legacy graph."""

    chains: int = 4000
    chain_length: int = 4
    core_nodes: int = 60
    aggregation_nodes: int = 400
    sites: int = 120
    devices_per_site: int = 12
    shelves_per_device: int = 2
    cards_per_shelf: int = 3
    ports_per_active_card: int = 25
    noise_hubs: int = 40
    noise_edges_per_hub: int = 4000
    agg_noise_edges: int = 10_000
    seed: int = 20180611


@dataclass
class LegacyHandles:
    """uids of interesting elements for workload sampling."""

    chain_heads: list[int] = field(default_factory=list)
    chain_cores: list[int] = field(default_factory=list)
    site_tops: list[int] = field(default_factory=list)
    cards: list[int] = field(default_factory=list)
    active_cards: list[int] = field(default_factory=list)
    hub_cards: list[int] = field(default_factory=list)
    all_uids: list[int] = field(default_factory=list)
    nodes: int = 0
    edges: int = 0

    def summary(self) -> str:
        """One-line census for logs and benchmarks."""
        return (
            f"{self.nodes} nodes, {self.edges} edges, "
            f"{len(self.chain_heads)} chains, {len(self.hub_cards)} hub cards"
        )


class LegacyTopology:
    """Builds the legacy graph into a store with either schema variant."""

    def __init__(self, params: LegacyParams | None = None, subclassed: bool = False):
        self.params = params or LegacyParams()
        self.subclassed = subclassed
        self.handles = LegacyHandles()

    def _edge_class(self, type_indicator: str) -> str:
        if self.subclassed:
            return type_class_name(type_indicator)
        return "GenericEdge"

    def _category(self, type_indicator: str) -> str:
        if type_indicator.startswith("circuit"):
            return "circuit"
        if type_indicator.startswith("vertical"):
            return "vertical"
        return "noise"

    def _add_edge(
        self, store: GraphStore, source: int, target: int, type_indicator: str
    ) -> int:
        uid = store.insert_edge(
            self._edge_class(type_indicator),
            source,
            target,
            {"category": self._category(type_indicator), "kind": type_indicator},
        )
        self.handles.edges += 1
        return uid

    def _add_node(self, store: GraphStore, kind: str, name: str) -> int:
        uid = store.insert_node("Entity", {"name": name, "kind": kind, "status": "up"})
        self.handles.nodes += 1
        self.handles.all_uids.append(uid)
        return uid

    def apply(self, store: GraphStore) -> LegacyHandles:
        """Generate the graph into *store*; returns the sampling handles."""
        rng = random.Random(self.params.seed)
        handles = self.handles = LegacyHandles()
        p = self.params
        with store.bulk():
            cores = [
                self._add_node(store, "core", f"core-{i}") for i in range(p.core_nodes)
            ]
            handles.chain_cores = cores
            aggs = [
                self._add_node(store, "agg", f"agg-{i}")
                for i in range(p.aggregation_nodes)
            ]
            # Service chains: customer -> access -> agg -> core.
            for chain in range(p.chains):
                head = self._add_node(store, "customer", f"cust-{chain}")
                handles.chain_heads.append(head)
                previous = head
                for hop in range(p.chain_length - 2):
                    node = self._add_node(store, "access", f"acc-{chain}-{hop}")
                    self._add_edge(
                        store, previous, node, rng.choice(CIRCUIT_TYPES)
                    )
                    previous = node
                agg = rng.choice(aggs)
                self._add_edge(store, previous, agg, rng.choice(CIRCUIT_TYPES))
                self._add_edge(store, agg, rng.choice(cores), rng.choice(CIRCUIT_TYPES))
            # Equipment hierarchy: site -> device -> shelf -> card (top-down).
            for site_index in range(p.sites):
                site = self._add_node(store, "site", f"site-{site_index}")
                handles.site_tops.append(site)
                for device_index in range(p.devices_per_site):
                    device = self._add_node(
                        store, "device", f"dev-{site_index}-{device_index}"
                    )
                    self._add_edge(store, site, device, rng.choice(VERTICAL_TYPES))
                    for shelf_index in range(p.shelves_per_device):
                        shelf = self._add_node(
                            store, "shelf",
                            f"shelf-{site_index}-{device_index}-{shelf_index}",
                        )
                        self._add_edge(store, device, shelf, rng.choice(VERTICAL_TYPES))
                        for card_index in range(p.cards_per_shelf):
                            card = self._add_node(
                                store, "card",
                                f"card-{site_index}-{device_index}-"
                                f"{shelf_index}-{card_index}",
                            )
                            self._add_edge(
                                store, shelf, card, rng.choice(VERTICAL_TYPES)
                            )
                            handles.cards.append(card)
            # Service placement: every chain head (a customer service)
            # terminates on 1-2 ports; ports concentrate on few cards.
            total_ports = int(len(handles.chain_heads) * 1.5)
            active_count = max(1, total_ports // p.ports_per_active_card)
            handles.active_cards = rng.sample(
                handles.cards, k=min(active_count, len(handles.cards))
            )
            for index, service in enumerate(handles.chain_heads):
                port_count = 1 + (index % 2)
                for port_index in range(port_count):
                    port = self._add_node(store, "port", f"port-{index}-{port_index}")
                    self._add_edge(store, service, port, rng.choice(VERTICAL_TYPES))
                    self._add_edge(
                        store, port, rng.choice(handles.active_cards),
                        rng.choice(VERTICAL_TYPES),
                    )
            # Hub pollution: monitoring/billing edges into active cards.
            monitors = [
                self._add_node(store, "monitor", f"mon-{i}")
                for i in range(max(1, p.noise_hubs // 4))
            ]
            hub_cards = rng.sample(
                handles.active_cards, k=min(p.noise_hubs, len(handles.active_cards))
            )
            handles.hub_cards = hub_cards
            for card in hub_cards:
                for _ in range(p.noise_edges_per_hub):
                    self._add_edge(
                        store, rng.choice(monitors), card, rng.choice(NOISE_TYPES)
                    )
            # Aggregation nodes also attract discovery/billing noise, which
            # is what keeps the reverse-path query only "moderately faster"
            # after subclassing (§6): its fanout is mostly relevant edges.
            for _ in range(p.agg_noise_edges):
                self._add_edge(
                    store, rng.choice(monitors), rng.choice(aggs), rng.choice(NOISE_TYPES)
                )
        return handles
