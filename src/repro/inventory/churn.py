"""Temporal churn simulation — builds the 60-day history (Section 6).

The paper loads both data sets "into a historical database, with a
two-month history" and reports that the full history is only 6% (service
graph) / 16% (legacy graph) larger than the current snapshot — because a
transaction-time store only grows where elements actually change.

:class:`ChurnSimulator` replays that: it advances the store's pinned clock
day by day and applies a budgeted mix of realistic events — status flaps,
field updates, VM migrations (an OnServer edge replaced), element
delete/revive flaps — sized so the history reaches a target growth ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import NepalError
from repro.model.elements import EdgeRecord, NodeRecord
from repro.storage.base import GraphStore, TimeScope

DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class ChurnParams:
    """Knobs for the churn simulation."""

    days: int = 60
    growth_ratio: float = 0.06
    """Target history_versions / current_versions after the run."""

    migration_fraction: float = 0.05
    """Share of the event budget spent on VM migrations (edge replacement)."""

    flap_fraction: float = 0.05
    """Share spent on delete-then-revive flaps."""

    seed: int = 20180612


@dataclass(frozen=True)
class ChurnReport:
    """What a churn run did to the store."""

    days: int
    events: int
    start_time: float
    end_time: float
    history_versions: int
    current_versions: int

    @property
    def growth(self) -> float:
        """History versions per current version — the §6.1 overhead ratio."""
        if self.current_versions == 0:
            return 0.0
        return self.history_versions / self.current_versions


class ChurnSimulator:
    """Applies day-granular churn to a populated store."""

    def __init__(self, store: GraphStore, params: ChurnParams | None = None):
        if not store.clock.pinned:
            raise NepalError(
                "churn simulation needs a pinned TransactionClock "
                "(construct the store with TransactionClock(start=...))"
            )
        self.store = store
        self.params = params or ChurnParams()

    def run(
        self,
        node_uids: list[int],
        edge_uids: list[int],
        migratable: dict[int, list[int]] | None = None,
    ) -> ChurnReport:
        """Simulate ``params.days`` days of churn.

        *node_uids*/*edge_uids* are the population to perturb; *migratable*
        optionally maps a placement edge class name's edges — concretely,
        ``{vm_uid: [candidate_host_uids]}`` — enabling VM migrations.
        """
        params = self.params
        rng = random.Random(params.seed)
        start_time = self.store.clock.now()
        # Budget against the whole store so growth_ratio means what it says
        # even when only part of the graph is eligible for perturbation.
        population = self.store.counts()["current_versions"]
        total_events = int(population * params.growth_ratio)
        per_day = max(1, total_events // params.days)
        events = 0
        scope = TimeScope.current()
        for _ in range(params.days):
            self.store.clock.advance(DAY_SECONDS)
            with self.store.bulk():
                for _ in range(per_day):
                    events += self._one_event(rng, node_uids, edge_uids, migratable, scope)
        counts = self.store.counts()
        return ChurnReport(
            days=params.days,
            events=events,
            start_time=start_time,
            end_time=self.store.clock.now(),
            history_versions=counts["history_versions"],
            current_versions=counts["current_versions"],
        )

    # ------------------------------------------------------------------

    def _one_event(
        self,
        rng: random.Random,
        node_uids: list[int],
        edge_uids: list[int],
        migratable: dict[int, list[int]] | None,
        scope: TimeScope,
    ) -> int:
        roll = rng.random()
        if migratable and roll < self.params.migration_fraction:
            return self._migrate(rng, migratable, scope)
        if edge_uids and roll < self.params.migration_fraction + self.params.flap_fraction:
            return self._flap_edge(rng, edge_uids, scope)
        return self._update_status(rng, node_uids, scope)

    def _update_status(
        self, rng: random.Random, node_uids: list[int], scope: TimeScope
    ) -> int:
        uid = rng.choice(node_uids)
        record = self.store.get_element(uid, scope)
        if not isinstance(record, NodeRecord) or not record.cls.has_field("status"):
            return 0
        current = record.get("status")
        new_status = rng.choice(["Green", "Yellow", "Red", "up", "down"])
        if new_status == current:
            new_status = "Maintenance"
        try:
            self.store.update_element(uid, {"status": new_status})
        except NepalError:
            return 0
        return 1

    def _flap_edge(
        self, rng: random.Random, edge_uids: list[int], scope: TimeScope
    ) -> int:
        uid = rng.choice(edge_uids)
        record = self.store.get_element(uid, scope)
        if not isinstance(record, EdgeRecord):
            return 0
        self.store.delete_element(uid)
        # Back a tick later (same transaction day): the outage is recorded.
        self.store.clock.advance(300.0)
        self.store.insert_edge(
            record.cls.name, record.source_uid, record.target_uid,
            dict(record.fields), uid=uid,
        )
        return 1

    def _migrate(
        self,
        rng: random.Random,
        migratable: dict[int, list[int]],
        scope: TimeScope,
    ) -> int:
        vm_uid = rng.choice(list(migratable))
        candidates = migratable[vm_uid]
        if not candidates:
            return 0
        placements = [
            edge
            for edge in self.store.out_edges(vm_uid, scope)
            if edge.cls.name == "OnServer"
        ]
        if not placements:
            return 0
        old = placements[0]
        new_host = rng.choice(candidates)
        if new_host == old.target_uid:
            return 0
        self.store.delete_element(old.uid)
        self.store.insert_edge("OnServer", vm_uid, new_host)
        return 1
