"""Generator for the virtualized network service topology (Figure 2).

Builds the four-layer model the paper describes:

* **Service layer** — services composed of VNFs, with designed FlowsTo
  data flows between the VNFs of a service;
* **Logical layer** — each VNF decomposed into VFCs (proxies, web servers,
  databases, packet cores), with VFC-level flows;
* **Virtualization layer** — each VFC hosted on a VM or Docker container,
  VMs attached to virtual networks, virtual networks joined by virtual
  routers (the overlay);
* **Physical layer** — VMs executed on hosts in racks, hosts wired to
  top-of-rack switches, ToRs to spines, spines to routers (the underlay).

Physical and virtual connectivity edges are inserted reciprocally, which is
why host-level paths have even hop counts — the property the paper leans on
when it extends the Host-Host query from 4 to 6 hops.

Default parameters produce roughly the paper's 2,000 nodes and 11,000 edges
(check ``handles.summary()``).  The generator is deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.storage.base import GraphStore

_STATUSES = ("Green", "Green", "Green", "Green", "Yellow", "Red")
_VNF_KINDS = ("DNS", "Firewall", "LoadBalancer", "EPC")
_VFC_KINDS = ("ProxyVFC", "WebServerVFC", "DatabaseVFC", "PacketCoreVFC")
_VM_KINDS = ("VMWare", "VMWare", "VMWare", "OnMetal", "OnMetal", "Docker")


@dataclass(frozen=True)
class TopologyParams:
    """Size knobs; defaults approximate the paper's service graph."""

    services: int = 10
    vnfs_per_service: tuple[int, int] = (3, 5)
    vfcs_per_vnf: tuple[int, int] = (8, 16)
    racks: int = 25
    hosts_per_rack: int = 8
    tor_uplinks: int = 1
    spine_switches: int = 10
    routers: int = 6
    vms: int = 1000
    virtual_networks: int = 200
    virtual_routers: int = 50
    networks_per_vrouter: int = 3
    networks_per_vm: tuple[int, int] = (1, 3)
    flows_per_service: tuple[int, int] = (2, 4)
    seed: int = 20180610


@dataclass
class TopologyHandles:
    """uids of the generated elements, grouped by role.

    Workload samplers and the churn simulator draw from these lists.
    """

    services: list[int] = field(default_factory=list)
    vnfs: list[int] = field(default_factory=list)
    vfcs: list[int] = field(default_factory=list)
    vms: list[int] = field(default_factory=list)
    hosts: list[int] = field(default_factory=list)
    switches: list[int] = field(default_factory=list)
    routers: list[int] = field(default_factory=list)
    virtual_networks: list[int] = field(default_factory=list)
    virtual_routers: list[int] = field(default_factory=list)
    vertical_edges: list[int] = field(default_factory=list)
    horizontal_edges: list[int] = field(default_factory=list)
    vm_host: dict[int, int] = field(default_factory=dict)
    vfc_vm: dict[int, int] = field(default_factory=dict)
    vnf_vfcs: dict[int, list[int]] = field(default_factory=dict)

    def all_nodes(self) -> list[int]:
        """Every generated node uid (for churn population sampling)."""
        return (
            self.services + self.vnfs + self.vfcs + self.vms + self.hosts
            + self.switches + self.routers + self.virtual_networks
            + self.virtual_routers
        )

    def all_edges(self) -> list[int]:
        """Every generated edge uid."""
        return self.vertical_edges + self.horizontal_edges

    def summary(self) -> str:
        """One-line census for logs and benchmarks."""
        return (
            f"{len(self.all_nodes())} nodes, {len(self.all_edges())} edges "
            f"({len(self.vnfs)} VNFs, {len(self.vfcs)} VFCs, {len(self.vms)} VMs, "
            f"{len(self.hosts)} hosts)"
        )


class VirtualizedServiceTopology:
    """Builds the layered service graph into a store."""

    def __init__(self, params: TopologyParams | None = None):
        self.params = params or TopologyParams()
        self.handles = TopologyHandles()

    def apply(self, store: GraphStore) -> TopologyHandles:
        """Generate the layered graph into *store*; returns the handles."""
        rng = random.Random(self.params.seed)
        handles = self.handles = TopologyHandles()
        with store.bulk():
            self._physical_layer(store, rng, handles)
            self._virtualization_layer(store, rng, handles)
            self._service_layers(store, rng, handles)
        return handles

    # ------------------------------------------------------------------

    def _connect(
        self, store: GraphStore, handles: TopologyHandles, cls: str, left: int, right: int,
        **fields,
    ) -> None:
        uids = store.insert_symmetric_edge(cls, left, right, fields or None)
        handles.horizontal_edges.extend(uids)

    def _physical_layer(
        self, store: GraphStore, rng: random.Random, handles: TopologyHandles
    ) -> None:
        p = self.params
        for router_index in range(p.routers):
            table = [
                {
                    "address": f"10.{router_index}.{entry}.0",
                    "mask": 24,
                    "interface": f"ge-0/0/{entry}",
                }
                for entry in range(rng.randint(2, 6))
            ]
            uid = store.insert_node(
                "Router",
                {
                    "name": f"core-router-{router_index}",
                    "status": rng.choice(_STATUSES),
                    "routing_table": table,
                },
            )
            handles.routers.append(uid)
        # Core routers form a ring.
        for left, right in zip(handles.routers, handles.routers[1:] + handles.routers[:1]):
            if left != right:
                self._connect(store, handles, "RouterRouter", left, right)
        spines = []
        for spine_index in range(p.spine_switches):
            uid = store.insert_node(
                "SpineSwitch",
                {"name": f"spine-{spine_index}", "ports": 64,
                 "status": rng.choice(_STATUSES)},
            )
            spines.append(uid)
            handles.switches.append(uid)
            for router in rng.sample(handles.routers, k=min(2, len(handles.routers))):
                self._connect(store, handles, "SwitchRouter", uid, router)
        for rack in range(p.racks):
            tor = store.insert_node(
                "TorSwitch",
                {"name": f"tor-{rack}", "ports": 48, "rack": f"rack-{rack}",
                 "status": rng.choice(_STATUSES)},
            )
            handles.switches.append(tor)
            for spine in rng.sample(spines, k=min(p.tor_uplinks, len(spines))):
                self._connect(store, handles, "SwitchSwitch", tor, spine)
            for slot in range(p.hosts_per_rack):
                host = store.insert_node(
                    "Host",
                    {
                        "name": f"host-{rack}-{slot}",
                        "rack": f"rack-{rack}",
                        "cpu_cores": rng.choice((32, 48, 64)),
                        "memory_gb": float(rng.choice((128, 256, 512))),
                        "hypervisor": rng.choice(("kvm", "esxi")),
                        "status": rng.choice(_STATUSES),
                    },
                )
                handles.hosts.append(host)
                self._connect(
                    store, handles, "ServerSwitch", host, tor,
                    server_interface="eth0", switch_interface=f"ge-0/{slot}",
                )

    def _virtualization_layer(
        self, store: GraphStore, rng: random.Random, handles: TopologyHandles
    ) -> None:
        p = self.params
        for net_index in range(p.virtual_networks):
            uid = store.insert_node(
                "VirtualNetwork",
                {"name": f"vnet-{net_index}", "cidr": f"172.16.{net_index}.0/24",
                 "status": "Green"},
            )
            handles.virtual_networks.append(uid)
        for vrouter_index in range(p.virtual_routers):
            uid = store.insert_node(
                "VirtualRouter",
                {"name": f"vrouter-{vrouter_index}", "status": "Green"},
            )
            handles.virtual_routers.append(uid)
            count = min(p.networks_per_vrouter, len(handles.virtual_networks))
            for net in rng.sample(handles.virtual_networks, k=count):
                self._connect(store, handles, "NetworkVRouter", net, uid)
        for vm_index in range(p.vms):
            kind = rng.choice(_VM_KINDS)
            fields = {
                "name": f"vm-{vm_index}",
                "status": rng.choice(_STATUSES),
                "image": rng.choice(("ubuntu-22.04", "rhel-9", "alpine-3.19")),
            }
            if kind != "Docker":
                fields["vcpus"] = rng.choice((2, 4, 8))
                fields["flavor"] = rng.choice(("m1.small", "m1.large", "c2.xlarge"))
            vm = store.insert_node(kind, fields)
            handles.vms.append(vm)
            host = rng.choice(handles.hosts)
            edge = store.insert_edge("OnServer", vm, host)
            handles.vertical_edges.append(edge)
            handles.vm_host[vm] = host
            count = rng.randint(*p.networks_per_vm)
            for net_index, net in enumerate(rng.sample(handles.virtual_networks, k=count)):
                self._connect(
                    store, handles, "VmNetwork", vm, net,
                    ip_address=f"172.16.{handles.virtual_networks.index(net)}."
                    f"{(vm_index % 250) + 2}",
                )

    def _service_layers(
        self, store: GraphStore, rng: random.Random, handles: TopologyHandles
    ) -> None:
        p = self.params
        free_vms = list(handles.vms)
        rng.shuffle(free_vms)
        for service_index in range(p.services):
            service = store.insert_node(
                "Service",
                {
                    "name": f"service-{service_index}",
                    "customer": f"customer-{service_index % 7}",
                    "service_type": rng.choice(("vpn", "firewall", "mobility", "sdwan")),
                },
            )
            handles.services.append(service)
            service_vnfs = []
            for vnf_slot in range(rng.randint(*p.vnfs_per_service)):
                kind = rng.choice(_VNF_KINDS)
                vnf = store.insert_node(
                    kind,
                    {
                        "name": f"vnf-{service_index}-{vnf_slot}",
                        "status": rng.choice(_STATUSES),
                        "descriptor": {"vendor": rng.choice(("acme", "initech")),
                                       "version": "2.1"},
                    },
                )
                handles.vnfs.append(vnf)
                service_vnfs.append(vnf)
                edge = store.insert_edge("ComposedOf", service, vnf)
                handles.vertical_edges.append(edge)
                handles.vnf_vfcs[vnf] = []
                for vfc_slot in range(rng.randint(*p.vfcs_per_vnf)):
                    vfc = store.insert_node(
                        rng.choice(_VFC_KINDS),
                        {
                            "name": f"vfc-{service_index}-{vnf_slot}-{vfc_slot}",
                            "role": rng.choice(("active", "standby")),
                            "status": rng.choice(_STATUSES),
                        },
                    )
                    handles.vfcs.append(vfc)
                    handles.vnf_vfcs[vnf].append(vfc)
                    edge = store.insert_edge("ComposedOf", vnf, vfc)
                    handles.vertical_edges.append(edge)
                    if not free_vms:
                        free_vms = list(handles.vms)
                        rng.shuffle(free_vms)
                    vm = free_vms.pop()
                    edge = store.insert_edge("OnVM", vfc, vm)
                    handles.vertical_edges.append(edge)
                    handles.vfc_vm[vfc] = vm
                # Logical-layer flow chain through the VNF's components.
                chain = handles.vnf_vfcs[vnf]
                for upstream, downstream in zip(chain, chain[1:]):
                    edge = store.insert_edge(
                        "FlowsTo", upstream, downstream,
                        {"protocol": "tcp", "port": 8080},
                    )
                    handles.horizontal_edges.append(edge)
            # Designed service flows between this service's VNFs.
            for _ in range(rng.randint(*p.flows_per_service)):
                if len(service_vnfs) < 2:
                    break
                src, dst = rng.sample(service_vnfs, k=2)
                edge = store.insert_edge(
                    "FlowsTo", src, dst,
                    {"protocol": rng.choice(("tcp", "udp")), "port": rng.choice((53, 443, 8080))},
                )
                handles.horizontal_edges.append(edge)
