"""Workload samplers — the query instances of Tables 1 and 2.

The paper runs 50 instances per query type (33 for top-down, since there
are only 33 distinct VNFs), "avoiding instances that result in zero paths".
These samplers generate the same instance streams against a generated
topology, parameterized by uids drawn from the generator handles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.inventory.legacy import LegacyHandles
from repro.inventory.virtualized import TopologyHandles


@dataclass(frozen=True)
class QueryInstance:
    """One concrete query of a workload: a label plus the RPE text."""

    kind: str
    rpe: str


def _sample(rng: random.Random, population: list[int], count: int) -> list[int]:
    if count >= len(population):
        return list(population)
    return rng.sample(population, k=count)


# ---------------------------------------------------------------------------
# Table 1 — virtualized service graph
# ---------------------------------------------------------------------------


def table1_workload(
    handles: TopologyHandles, instances: int = 50, seed: int = 4711
) -> dict[str, list[QueryInstance]]:
    """The five query types of Table 1.

    * top-down: ``VNF(id=…) -> [Vertical()]{1,6} -> Host()`` — anchor at the
      start of the RPE, forwards extension (one instance per distinct VNF,
      like the paper's 33);
    * bottom-up: ``VNF() -> [Vertical()]{1,6} -> Host(id=…)`` — anchor at the
      end, backwards extension;
    * VM-VM (4): overlay navigation through virtual networks and routers;
    * Host-Host (4) and (6): underlay navigation through switches/routers.
    """
    rng = random.Random(seed)
    workload: dict[str, list[QueryInstance]] = {}
    workload["top-down"] = [
        QueryInstance("top-down", f"VNF(id={vnf})->[Vertical()]{{1,6}}->Host()")
        for vnf in handles.vnfs
    ]
    hosts_with_vms = sorted({host for host in handles.vm_host.values()})
    workload["bottom-up"] = [
        QueryInstance("bottom-up", f"VNF()->[Vertical()]{{1,6}}->Host(id={host})")
        for host in _sample(rng, hosts_with_vms, instances)
    ]
    vms_on_networks = handles.vms
    workload["VM-VM (4)"] = [
        QueryInstance("VM-VM (4)", f"VM(id={vm})->[ConnectedTo()]{{1,4}}->VM()")
        for vm in _sample(rng, vms_on_networks, instances)
    ]
    workload["Host-Host (4)"] = [
        QueryInstance("Host-Host (4)", f"Host(id={host})->[ConnectedTo()]{{1,4}}->Host()")
        for host in _sample(rng, handles.hosts, instances)
    ]
    workload["Host-Host (6)"] = [
        QueryInstance("Host-Host (6)", f"Host(id={host})->[ConnectedTo()]{{1,6}}->Host()")
        for host in _sample(rng, handles.hosts, instances)
    ]
    return workload


# ---------------------------------------------------------------------------
# Table 2 — legacy topology
# ---------------------------------------------------------------------------


def _legacy_atom(family: str, subclassed: bool) -> str:
    """The edge atom of a legacy query, per schema variant.

    With the flat single-class load the type family is a field predicate on
    the one edge class; with the subclassed load it is a class atom — the
    whole point of the §6 experiment.
    """
    if subclassed:
        return {"circuit": "CircuitEdge()", "vertical": "VerticalEdge()"}[family]
    return f"GenericEdge(category='{family}')"


def table2_workload(
    handles: LegacyHandles,
    subclassed: bool,
    instances: int = 50,
    seed: int = 4712,
) -> dict[str, list[QueryInstance]]:
    """The four query types of Table 2, in either schema variant.

    * service path: forwards from a chain head over circuit edges (length 4);
    * reverse path: backwards from a shared core node (the huge-fanout one);
    * top-down: forwards from a customer service down its vertical
      placement (service → port → card, length 3) — few paths;
    * bottom-up: backwards from an active card up to everything it carries —
      many paths, and a third of the sampled cards are the noise hubs that
      made the paper's flat load slow.
    """
    rng = random.Random(seed)
    circuit = _legacy_atom("circuit", subclassed)
    vertical = _legacy_atom("vertical", subclassed)
    workload: dict[str, list[QueryInstance]] = {}
    workload["service path"] = [
        QueryInstance("service path", f"Entity(id={head})->[{circuit}]{{1,4}}->Entity()")
        for head in _sample(rng, handles.chain_heads, instances)
    ]
    workload["reverse path"] = [
        QueryInstance("reverse path", f"Entity()->[{circuit}]{{1,4}}->Entity(id={core})")
        for core in _sample(rng, handles.chain_cores, instances)
    ]
    workload["top-down"] = [
        QueryInstance("top-down", f"Entity(id={service})->[{vertical}]{{1,3}}->Entity()")
        for service in _sample(rng, handles.chain_heads, instances)
    ]
    hub_share = instances // 3
    hub_set = set(handles.hub_cards)
    bottom_targets = _sample(rng, handles.hub_cards, hub_share) + _sample(
        rng, [c for c in handles.active_cards if c not in hub_set],
        instances - hub_share,
    )
    rng.shuffle(bottom_targets)
    workload["bottom-up"] = [
        QueryInstance("bottom-up", f"Entity()->[{vertical}]{{1,3}}->Entity(id={card})")
        for card in bottom_targets
    ]
    return workload


#: Signature of a query runner used by the benchmark harness.
QueryRunner = Callable[[QueryInstance], int]
