"""Synthetic network inventories.

The paper evaluates Nepal on two proprietary AT&T data sets: a virtualized
network service (~2k nodes / 11k edges) and a legacy topology (1.6M nodes /
7.1M edges), each with two months of history.  These generators produce
synthetic equivalents that preserve the structural properties the
evaluation depends on — layer fan-outs, path-length parity, hub nodes with
irrelevant edges, and realistic churn rates — at laptop scale.
"""

from repro.inventory.churn import ChurnSimulator
from repro.inventory.legacy import LegacyTopology, build_legacy_schema
from repro.inventory.virtualized import VirtualizedServiceTopology

__all__ = [
    "ChurnSimulator",
    "LegacyTopology",
    "VirtualizedServiceTopology",
    "build_legacy_schema",
]
