"""Replication roles, epoch fencing and promotion for one node.

A :class:`ReplicationManager` sits next to a :class:`~repro.core.database.
NepalDB` (the HTTP front end owns one) and tracks which part the node
plays in a replica set:

* **primary** — accepts writes, serves its journal over
  ``GET /replication/wal`` and bootstrap snapshots over
  ``GET /replication/snapshot``;
* **replica** — read-only; a :class:`~repro.replication.replica.
  ReplicationPuller` thread streams the primary's journal into
  :meth:`~repro.storage.durable.DurableStore.replication_apply`.  Writes
  are refused with :class:`~repro.errors.NotPrimaryError` (HTTP 307 to the
  primary);
* **fenced** — an ex-primary that learned of a higher epoch.  Some replica
  was promoted while it was down; accepting writes now would fork the
  history, so everything but reads is refused with
  :class:`~repro.errors.FencedError` (HTTP 409).

Epoch protocol: promotion stamps ``epoch + 1`` into the WAL (fsynced)
*before* the node accepts its first write, so every record a primary ever
ships carries proof of its term.  Every HTTP response carries
``X-Nepal-Epoch``; cluster-aware clients echo the highest epoch they have
seen on writes, and :meth:`ReplicationManager.observe_epoch` fences any
node that receives proof of a higher term than its own.  Epoch comparisons
— not wall clocks, not heartbeat timing — are the sole fencing authority,
which keeps failover deterministic.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.errors import FencedError, NotPrimaryError, ReplicationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.database import NepalDB
    from repro.replication.replica import ReplicationPuller

ROLE_PRIMARY = "primary"
ROLE_REPLICA = "replica"
ROLE_FENCED = "fenced"


class ReplicationManager:
    """The replication state machine of one serving node.

    Constructed in primary role; :meth:`become_replica` attaches the node
    to a primary and :meth:`promote` turns a replica back into a primary
    (failover).  All transitions run under one lock and are visible in
    :meth:`status` — the payload of ``GET /replication/status`` that the
    routing layer and the failover harness read.
    """

    def __init__(self, db: "NepalDB", node_name: str = "node"):
        self.db = db
        self.node_name = node_name
        self.metrics = db.metrics
        self._durable = db.durable_store()
        self._lock = threading.RLock()
        self._role = ROLE_PRIMARY
        self._primary_url: str | None = None
        self._puller: "ReplicationPuller | None" = None
        self._fenced_by: int | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def role(self) -> str:
        with self._lock:
            return self._role

    @property
    def epoch(self) -> int:
        durable = self._durable
        return durable.epoch if durable is not None else 0

    @property
    def primary_url(self) -> str | None:
        with self._lock:
            return self._primary_url

    @property
    def puller(self) -> "ReplicationPuller | None":
        with self._lock:
            return self._puller

    def status(self) -> dict[str, Any]:
        """The JSON payload of ``GET /replication/status``."""
        with self._lock:
            role = self._role
            primary_url = self._primary_url
            puller = self._puller
            fenced_by = self._fenced_by
        durable = self._durable
        payload: dict[str, Any] = {
            "node": self.node_name,
            "role": role,
            "epoch": self.epoch,
            "durable": durable is not None,
            "last_lsn": durable.last_lsn if durable is not None else 0,
            "checkpoint_lsn": durable.checkpoint_lsn if durable is not None else 0,
            "wal_bytes": durable.wal_bytes if durable is not None else 0,
            "read_only": durable.read_only if durable is not None else False,
        }
        if primary_url is not None:
            payload["primary"] = primary_url
        if fenced_by is not None:
            payload["fenced_by"] = fenced_by
        if puller is not None:
            payload["replication"] = puller.status()
        return payload

    def _require_durable(self):
        if self._durable is None:
            raise ReplicationError(
                "replication requires a durable store (start the node with "
                "--data-dir so it has a WAL to ship)"
            )
        return self._durable

    # ------------------------------------------------------------------
    # role transitions
    # ------------------------------------------------------------------

    def become_replica(
        self,
        primary_url: str,
        poll_interval: float = 0.05,
        chunk_limit: int = 1 << 18,
    ) -> "ReplicationPuller":
        """Attach this node to *primary_url* and start streaming its WAL.

        Pins the transaction clock first: a replica's reads must not chase
        the local wall clock past the primary's stamps, or applying the
        next shipped record would mean moving transaction time backwards.
        """
        from repro.replication.replica import ReplicationPuller

        durable = self._require_durable()
        with self._lock:
            if self._role == ROLE_REPLICA and self._puller is not None:
                raise ReplicationError(
                    f"already replicating from {self._primary_url}"
                )
            self.db.clock.pin()
            durable.begin_replication(
                f"node {self.node_name} is a replica of {primary_url}; "
                "writes go to the primary"
            )
            self._role = ROLE_REPLICA
            self._primary_url = primary_url
            self._puller = ReplicationPuller(
                durable,
                primary_url,
                metrics=self.metrics,
                poll_interval=poll_interval,
                chunk_limit=chunk_limit,
            )
            self._puller.start()
            self.metrics.event("replication.attached")
            return self._puller

    def repoint(self, primary_url: str) -> "ReplicationPuller":
        """Follow a different primary (post-failover re-attachment).

        Stops the current puller, rolls any shipped-but-uncommitted residue
        back, and starts a fresh stream against the new primary.
        """
        durable = self._require_durable()
        with self._lock:
            if self._role != ROLE_REPLICA:
                raise ReplicationError(
                    f"only a replica can repoint (role is {self._role})"
                )
            self._detach_locked()
            durable.begin_replication(
                f"node {self.node_name} is a replica of {primary_url}; "
                "writes go to the primary"
            )
            self._primary_url = primary_url
            from repro.replication.replica import ReplicationPuller

            self._puller = ReplicationPuller(
                durable, primary_url, metrics=self.metrics
            )
            self._puller.start()
            self.metrics.event("replication.repointed")
            return self._puller

    def promote(self) -> dict[str, Any]:
        """Failover: turn this replica into the primary.

        Stops the stream, discards any shipped-but-uncommitted residue
        (split frames, unmatched batches — exactly what recovery would
        discard), stamps ``epoch + 1`` into the WAL (fsynced), and opens
        the node for writes.  The epoch stamp happens before the first
        write is admitted, so every record this primary ships carries its
        term.
        """
        durable = self._require_durable()
        with self._lock:
            if self._role == ROLE_FENCED:
                raise FencedError(
                    f"node {self.node_name} is fenced by epoch "
                    f"{self._fenced_by}; a fenced node needs a resync, not "
                    "a promotion",
                    epoch=self._fenced_by,
                )
            if self._role == ROLE_PRIMARY:
                return self.status()
            self._detach_locked()
            durable.end_replication()
            new_epoch = durable.epoch + 1
            durable.stamp_epoch(new_epoch)
            self._role = ROLE_PRIMARY
            self._primary_url = None
            self.metrics.event("replication.promoted")
            self.metrics.gauge("replication.lag_records", 0.0)
            self.metrics.gauge("replication.lag_seconds", 0.0)
            return self.status()

    def fence(self, epoch: int) -> None:
        """Refuse writes permanently: a higher epoch *epoch* exists.

        Idempotent for repeated proofs of the same or lower epochs once
        fenced.  The node keeps serving reads — its history up to the
        fence is valid — but every write is refused so the divergence the
        higher epoch implies can never widen.
        """
        durable = self._require_durable()
        with self._lock:
            if self._role == ROLE_FENCED:
                self._fenced_by = max(self._fenced_by or 0, epoch)
                return
            self._detach_locked()
            if self._role == ROLE_REPLICA:
                durable.end_replication()
            durable.set_read_only(
                f"node {self.node_name} (epoch {self.epoch}) is fenced: "
                f"epoch {epoch} exists elsewhere; writes would diverge"
            )
            self._role = ROLE_FENCED
            self._fenced_by = epoch
            self._primary_url = None
            self.metrics.event("replication.fenced")

    def _detach_locked(self) -> None:
        """Stop and discard the puller thread (caller holds the lock)."""
        if self._puller is not None:
            self._puller.stop()
            self._puller = None

    def shutdown(self) -> None:
        """Stop background replication activity (server shutdown path)."""
        with self._lock:
            self._detach_locked()

    # ------------------------------------------------------------------
    # request-path guards (called by the HTTP layer)
    # ------------------------------------------------------------------

    def observe_epoch(self, claimed: int | None) -> None:
        """Process an epoch a peer or client presented.

        Proof of a higher term than ours means we are a stale primary (or
        a replica of one): fence immediately.  Raises
        :class:`~repro.errors.FencedError` when the observation fenced us,
        so the write that carried the proof is also refused.
        """
        if claimed is None:
            return
        if claimed > self.epoch:
            self.fence(claimed)
            raise FencedError(
                f"write carried epoch {claimed} > local epoch {self.epoch}; "
                f"node {self.node_name} is a stale primary and is now fenced",
                epoch=claimed,
            )

    def check_writable(self, claimed_epoch: int | None = None) -> None:
        """Gate one write request: fence checks first, then role checks."""
        self.observe_epoch(claimed_epoch)
        with self._lock:
            if self._role == ROLE_FENCED:
                raise FencedError(
                    f"node {self.node_name} is fenced by epoch "
                    f"{self._fenced_by}; writes are refused",
                    epoch=self._fenced_by,
                )
            if self._role == ROLE_REPLICA:
                raise NotPrimaryError(
                    f"node {self.node_name} is a read-only replica; "
                    f"write to the primary at {self._primary_url}",
                    primary=self._primary_url,
                )

    # ------------------------------------------------------------------
    # readiness (the /readyz contract)
    # ------------------------------------------------------------------

    def readiness(self, lag_threshold: int = 1000) -> tuple[bool, dict[str, Any]]:
        """``(ready, detail)`` for ``GET /readyz``.

        A primary is ready once constructed (recovery is synchronous).  A
        replica is ready when its bootstrap finished, the stream is live,
        and the record lag is under *lag_threshold*.  A fenced node is
        never ready — it must not receive routed traffic.
        """
        with self._lock:
            role = self._role
            puller = self._puller
        detail: dict[str, Any] = {"role": role, "epoch": self.epoch}
        if role == ROLE_FENCED:
            detail["reason"] = "fenced"
            return False, detail
        if role == ROLE_PRIMARY:
            return True, detail
        if puller is None:
            detail["reason"] = "replica has no active stream"
            return False, detail
        pstatus = puller.status()
        detail["replication"] = pstatus
        if pstatus["state"] != "streaming":
            detail["reason"] = f"replica is {pstatus['state']}"
            return False, detail
        if pstatus["lag_records"] > lag_threshold:
            detail["reason"] = (
                f"lag {pstatus['lag_records']} records exceeds threshold "
                f"{lag_threshold}"
            )
            return False, detail
        return True, detail
