"""Primary→replica WAL-shipping replication (see ARCHITECTURE.md).

The existing write-ahead log doubles as the replication log: a primary
serves its committed journal bytes over HTTP, replicas append them
verbatim and apply every completed frame through the same replay path
crash recovery uses, so validity intervals, uid allocation and temporal
indexes come out identical on every copy.  Failover is deterministic —
the highest-LSN replica promotes, stamping an epoch fence into the WAL
that a revived stale primary can never out-claim.

Layout:

* :mod:`~repro.replication.manager` — per-node role state machine
  (primary / replica / fenced), promotion, epoch fencing, readiness;
* :mod:`~repro.replication.replica` — the puller thread: bootstrap via
  snapshot, chunked WAL streaming, lag gauges, truncation re-base;
* :mod:`~repro.replication.routing` — :class:`ClusterClient`, the
  lag-aware client that writes to the primary and reads from fresh
  replicas, failing over via re-discovery;
* :mod:`~repro.replication.harness` — :class:`ReplicaSet`, a
  multi-process cluster harness for the failover chaos tests and the
  README walkthrough.
"""

from repro.replication.manager import (
    ROLE_FENCED,
    ROLE_PRIMARY,
    ROLE_REPLICA,
    ReplicationManager,
)
from repro.replication.replica import ReplicationPuller, parse_node_url
from repro.replication.routing import ClusterClient, NoPrimaryError

__all__ = [
    "ClusterClient",
    "NoPrimaryError",
    "ReplicationManager",
    "ReplicationPuller",
    "ROLE_FENCED",
    "ROLE_PRIMARY",
    "ROLE_REPLICA",
    "parse_node_url",
]
