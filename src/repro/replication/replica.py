"""The replica side of log shipping: a puller thread that follows a primary.

:class:`ReplicationPuller` runs one daemon thread against a primary's HTTP
endpoints:

1. **bootstrap** — a completely fresh replica first fetches
   ``GET /replication/snapshot`` (the primary's compacted history plus a
   manifest) and installs it, so it does not depend on the primary still
   holding its journal from offset 0;
2. **streaming** — it then polls ``GET /replication/wal?offset=N`` and
   feeds each chunk into :meth:`~repro.storage.durable.DurableStore.
   replication_apply`.  Chunks may split frames anywhere; the durable
   store's decoder buffers the residue.  Records the snapshot already
   covered are skipped by LSN;
3. **lag tracking** — every chunk response carries the primary's committed
   journal size, last LSN and epoch in headers; the puller publishes
   ``replication.lag_records`` / ``replication.lag_seconds`` gauges and a
   ``replication.apply`` stage timing from them;
4. **failure handling** — connection errors back off along the configured
   :class:`~repro.core.resilience.ResiliencePolicy` schedule and never
   kill the thread (the primary being down is the *normal* trigger for
   failover, and the puller must survive it to report its last applied
   LSN to the promotion logic).  A primary answering with a *lower* epoch
   than the replica's is stale — the stream stops rather than apply its
   divergent records.  A pull offset beyond the primary's journal means a
   checkpoint truncated history: the puller re-bases at offset 0 when its
   applied LSN covers the truncation, and parks in ``needs-resync``
   otherwise (the operator restarts the replica with a fresh directory).
"""

from __future__ import annotations

import random
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.core.resilience import ResiliencePolicy
from repro.errors import ReplicationError
from repro.server.client import NepalClient, ServerError
from repro.storage.wal import WalCorruptionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stats.metrics import MetricsRegistry
    from repro.storage.durable import DurableStore

#: Puller states, surfaced via ``status()`` and ``GET /readyz``.
STATE_BOOTSTRAPPING = "bootstrapping"
STATE_STREAMING = "streaming"
STATE_STALE_PRIMARY = "stale-primary"
STATE_NEEDS_RESYNC = "needs-resync"
STATE_STOPPED = "stopped"

#: Response headers the primary stamps on replication endpoints.
HEADER_WAL_SIZE = "X-Nepal-Wal-Size"
HEADER_LAST_LSN = "X-Nepal-Last-Lsn"
HEADER_EPOCH = "X-Nepal-Epoch"


def parse_node_url(url: str) -> tuple[str, int]:
    """``host:port`` (with or without an ``http://`` prefix) → pair."""
    stripped = url.strip()
    for prefix in ("http://", "https://"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):]
            break
    stripped = stripped.rstrip("/")
    host, separator, port = stripped.rpartition(":")
    if not separator or not port.isdigit():
        raise ReplicationError(
            f"primary address {url!r} is not host:port"
        )
    return host, int(port)


class ReplicationPuller:
    """Stream a primary's WAL into a local durable store, forever.

    The owning :class:`~repro.replication.manager.ReplicationManager` must
    have put the store into follower mode (``begin_replication``) before
    starting the thread.  ``stop()`` is idempotent and joins the thread.
    """

    def __init__(
        self,
        durable: "DurableStore",
        primary_url: str,
        metrics: "MetricsRegistry | None" = None,
        poll_interval: float = 0.05,
        chunk_limit: int = 1 << 18,
        policy: ResiliencePolicy | None = None,
        client: NepalClient | None = None,
    ):
        self.durable = durable
        self.primary_url = primary_url
        self.metrics = metrics
        self.poll_interval = poll_interval
        self.chunk_limit = chunk_limit
        self.policy = policy or ResiliencePolicy(
            max_attempts=0,  # the puller retries forever; only pacing matters
            base_delay=max(poll_interval, 0.02),
            max_delay=1.0,
            seed=0,
        )
        host, port = parse_node_url(primary_url)
        self.client = client or NepalClient(host, port, timeout=10.0, retry_503=0)
        self._rng = random.Random(self.policy.seed)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # -- observable state (under _lock) --
        self._state = STATE_BOOTSTRAPPING
        self._offset = durable.wal_bytes
        self._applied_lsn = durable.last_lsn
        self._primary_lsn: int | None = None
        self._primary_epoch: int | None = None
        self._lag_records = 0
        self._lag_seconds = 0.0
        self._pending_bytes = 0
        self._open_batch = False
        self._bytes_shipped = 0
        self._polls = 0
        self._consecutive_failures = 0
        self._last_contact: float | None = None
        self._last_error: str | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ReplicationPuller":
        if self._thread is not None:
            raise ReplicationError("puller already started")
        self._thread = threading.Thread(
            target=self._run, name=f"nepal-replica({self.primary_url})", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        with self._lock:
            self._state = STATE_STOPPED

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        with self._lock:
            contact_age = (
                time.monotonic() - self._last_contact
                if self._last_contact is not None
                else None
            )
            return {
                "primary": self.primary_url,
                "state": self._state,
                "offset": self._offset,
                "applied_lsn": self._applied_lsn,
                "primary_lsn": self._primary_lsn,
                "primary_epoch": self._primary_epoch,
                "lag_records": self._lag_records,
                "lag_seconds": round(self._lag_seconds, 6),
                "pending_bytes": self._pending_bytes,
                "open_batch": self._open_batch,
                "bytes_shipped": self._bytes_shipped,
                "polls": self._polls,
                "consecutive_failures": self._consecutive_failures,
                "last_contact_age": contact_age,
                "last_error": self._last_error,
            }

    def wait_caught_up(self, timeout: float = 30.0, poll: float = 0.01) -> bool:
        """Block until the stream has applied everything the primary had
        committed when the call was made (test convenience).

        Asks the primary for its LSN directly rather than trusting the
        puller's last-observed value, which goes stale between polls.
        """
        deadline = time.monotonic() + timeout
        target: int | None = None
        while time.monotonic() < deadline:
            if target is None:
                try:
                    status = self.client.replication_status()
                    target = int(status.get("last_lsn", 0))
                except (ServerError, OSError):
                    time.sleep(poll)
                    continue
            with self._lock:
                caught_up = (
                    self._state == STATE_STREAMING
                    and self._applied_lsn >= target
                    and self._pending_bytes == 0
                    and not self._open_batch
                )
            if caught_up:
                return True
            time.sleep(poll)
        return False

    def _event(self, name: str, count: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.event(name, count)

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name, value)

    # ------------------------------------------------------------------
    # the stream loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._run_once()
            except _Parked:
                # Terminal-for-now states (stale primary, needs resync):
                # stay alive so status() keeps answering, but stop pulling.
                while not self._stop.wait(self.poll_interval * 4):
                    pass
                return
            except Exception as error:  # noqa: BLE001 - the loop must survive
                self._note_failure(error)
                self._backoff()

    def _run_once(self) -> None:
        if self._needs_bootstrap():
            self._bootstrap()
        with self._lock:
            self._state = STATE_STREAMING
        while not self._stop.is_set():
            advanced = self._poll_once()
            if not advanced and self._stop.wait(self.poll_interval):
                return

    def _needs_bootstrap(self) -> bool:
        return (
            self.durable.last_lsn == 0
            and self.durable.wal_bytes == 0
            and not self.durable.known_uids()
        )

    def _bootstrap(self) -> None:
        with self._lock:
            self._state = STATE_BOOTSTRAPPING
        status, headers, body = self.client.raw_request(
            "GET", "/replication/snapshot"
        )
        if status != 200:
            raise ReplicationError(
                f"snapshot fetch failed: HTTP {status} "
                f"{body[:200].decode('utf-8', 'replace')}"
            )
        self._touch(headers)
        records = self.durable.install_snapshot(body)
        with self._lock:
            self._offset = 0
            self._applied_lsn = self.durable.last_lsn
        self._event("replication.bootstrapped")
        self._event("replication.bootstrap_records", records)

    def _poll_once(self) -> bool:
        """One WAL pull; returns True when bytes arrived (keep going)."""
        with self._lock:
            offset = self._offset
        status, headers, body = self.client.raw_request(
            "GET", f"/replication/wal?offset={offset}&limit={self.chunk_limit}"
        )
        self._touch(headers)
        with self._lock:
            self._polls += 1
        if status == 200:
            return self._absorb(offset, headers, body)
        if status == 416:
            self._handle_truncation(headers)
            return False
        raise ReplicationError(
            f"wal fetch failed: HTTP {status} "
            f"{body[:200].decode('utf-8', 'replace')}"
        )

    def _absorb(self, offset: int, headers: dict[str, str], body: bytes) -> bool:
        primary_lsn = int(headers.get(HEADER_LAST_LSN, 0))
        primary_epoch = int(headers.get(HEADER_EPOCH, 0))
        if primary_epoch < self.durable.epoch:
            # The node we are following has a lower term than records we
            # already hold: it is a revived stale primary.  Applying its
            # journal would replay a divergent history, so stop the
            # stream instead.
            with self._lock:
                self._state = STATE_STALE_PRIMARY
                self._last_error = (
                    f"primary epoch {primary_epoch} < local epoch "
                    f"{self.durable.epoch}; refusing its stream"
                )
            self._event("replication.stale_primary_refused")
            raise _Parked()
        if body:
            try:
                if self.metrics is not None:
                    with self.metrics.timings.measure("replication.apply"):
                        result = self.durable.replication_apply(body)
                else:
                    result = self.durable.replication_apply(body)
            except WalCorruptionError as error:
                with self._lock:
                    self._state = STATE_NEEDS_RESYNC
                    self._last_error = f"corrupt shipped stream: {error}"
                self._event("replication.resync_needed")
                raise _Parked() from error
            with self._lock:
                self._offset = offset + len(body)
                self._applied_lsn = result.last_lsn
                self._pending_bytes = result.pending_bytes
                self._open_batch = result.open_batch
                self._bytes_shipped += len(body)
            self._event("replication.bytes_shipped", len(body))
            last_ts = result.last_ts
        else:
            last_ts = None
        self._publish_lag(primary_lsn, primary_epoch, last_ts)
        return bool(body)

    def _publish_lag(
        self, primary_lsn: int, primary_epoch: int, last_ts: float | None
    ) -> None:
        with self._lock:
            self._primary_lsn = primary_lsn
            self._primary_epoch = primary_epoch
            self._consecutive_failures = 0
            self._last_error = None
            lag_records = max(0, primary_lsn - self._applied_lsn)
            if lag_records == 0:
                lag_seconds = 0.0
            elif last_ts is not None:
                lag_seconds = max(0.0, time.time() - last_ts)
            else:
                lag_seconds = self._lag_seconds
            self._lag_records = lag_records
            self._lag_seconds = lag_seconds
        self._gauge("replication.lag_records", float(lag_records))
        self._gauge("replication.lag_seconds", lag_seconds)

    def _handle_truncation(self, headers: dict[str, str]) -> None:
        """The pull offset outran the primary's journal (a checkpoint
        truncated it).  Re-base at offset 0 when our applied LSN covers
        everything the truncation removed; otherwise park for a resync."""
        try:
            status = self.client.replication_status()
        except (ServerError, OSError) as error:
            raise ReplicationError(f"status fetch after truncation: {error}")
        checkpoint_lsn = int(status.get("checkpoint_lsn", 0))
        if checkpoint_lsn <= self.durable.last_lsn:
            self.durable.begin_replication(
                f"replica of {self.primary_url} (re-based after primary "
                "checkpoint)"
            )
            with self._lock:
                self._offset = 0
            self._event("replication.rebased")
            return
        with self._lock:
            self._state = STATE_NEEDS_RESYNC
            self._last_error = (
                f"primary checkpoint covers lsn {checkpoint_lsn} > applied "
                f"{self.durable.last_lsn}: history gap, full resync required"
            )
        self._event("replication.resync_needed")
        raise _Parked()

    # ------------------------------------------------------------------
    # failure pacing
    # ------------------------------------------------------------------

    def _touch(self, headers: dict[str, str]) -> None:
        with self._lock:
            self._last_contact = time.monotonic()

    def _note_failure(self, error: Exception) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._last_error = f"{type(error).__name__}: {error}"
        self._event("replication.poll_failed")

    def _backoff(self) -> None:
        with self._lock:
            failures = self._consecutive_failures
        delay = self.policy.delay_for(min(failures, 8), self._rng)
        self._stop.wait(delay)


class _Parked(Exception):
    """Internal: the stream reached a state that needs operator action."""
