"""Cluster-aware request routing: lag-aware reads, primary writes, failover.

:class:`ClusterClient` fronts a set of Nepal nodes the way an application
sidecar would: it discovers each node's role from ``GET
/replication/status``, sends writes to the primary (stamped with the
highest epoch it has ever seen, which is what fences a revived stale
primary), and routes reads to replicas whose record lag is under a
threshold — falling back to the primary when no replica is fresh enough.

Failure handling reuses the :class:`~repro.core.resilience.ResiliencePolicy`
backoff schedule: when the primary dies mid-write the client backs off,
re-discovers (the failover harness promotes a replica in the meantime),
and retries against the new primary.  Reads retry across nodes in
freshness order before giving up.  A ``307 Temporary Redirect`` from a
replica and a ``409 Conflict`` from a fenced node both trigger immediate
re-discovery rather than counting as backend failures.

The epoch the client tracks is monotone: every response's
``X-Nepal-Epoch`` header raises it, and discovery prefers the
primary-role node with the highest epoch, so after a failover the old
primary — even revived and claiming to be primary — loses to the new one.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Mapping

from repro.core.resilience import ResiliencePolicy
from repro.errors import ReplicationError
from repro.replication.replica import parse_node_url
from repro.server.client import NepalClient, ServerError

EPOCH_HEADER = "X-Nepal-Epoch"


class NoPrimaryError(ReplicationError):
    """Discovery found no live primary within the retry budget."""


class ClusterClient:
    """Route queries and writes across a Nepal replica set.

    >>> cluster = ClusterClient(["127.0.0.1:7687", "127.0.0.1:7688"])
    >>> cluster.insert_node("Host", {"name": "h1"})     # goes to the primary
    >>> cluster.query("Retrieve P From PATHS P Where P MATCHES Host()")
    """

    def __init__(
        self,
        nodes: list[str],
        policy: ResiliencePolicy | None = None,
        lag_threshold: int = 256,
        prefer_replicas: bool = True,
        timeout: float = 10.0,
        client_factory: Callable[[str, int], NepalClient] | None = None,
    ):
        if not nodes:
            raise ReplicationError("a cluster needs at least one node address")
        self.policy = policy or ResiliencePolicy(
            max_attempts=8, base_delay=0.05, max_delay=1.0, jitter=0.1, seed=0
        )
        self.lag_threshold = lag_threshold
        self.prefer_replicas = prefer_replicas
        self._rng = random.Random(self.policy.seed)
        factory = client_factory or (
            lambda host, port: NepalClient(host, port, timeout=timeout, retry_503=1)
        )
        self._clients: dict[str, NepalClient] = {}
        for address in nodes:
            host, port = parse_node_url(address)
            self._clients[f"{host}:{port}"] = factory(host, port)
        self.epoch = 0
        self._primary: str | None = None
        self._replicas: list[tuple[str, int]] = []  # (address, lag_records)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------

    def _observe_epoch(self, value: Any) -> None:
        try:
            self.epoch = max(self.epoch, int(value))
        except (TypeError, ValueError):
            pass

    def discover(self) -> dict[str, Any]:
        """Probe every node; elect the highest-epoch primary, rank replicas.

        Unreachable nodes are skipped (they may be the dead primary this
        discovery is reacting to).  Returns the raw statuses by address
        for observability.
        """
        statuses: dict[str, Any] = {}
        primary: tuple[int, str] | None = None  # (epoch, address)
        replicas: list[tuple[str, int]] = []
        for address, client in self._clients.items():
            try:
                status = client.replication_status()
            except (ServerError, OSError):
                continue
            statuses[address] = status
            self._observe_epoch(status.get("epoch", 0))
            role = status.get("role")
            if role == "primary":
                candidate = (int(status.get("epoch", 0)), address)
                if primary is None or candidate[0] > primary[0]:
                    primary = candidate
            elif role == "replica":
                lag = int(
                    (status.get("replication") or {}).get("lag_records", 1 << 30)
                )
                replicas.append((address, lag))
        replicas.sort(key=lambda item: item[1])
        self._primary = primary[1] if primary is not None else None
        self._replicas = replicas
        return statuses

    @property
    def primary(self) -> str | None:
        return self._primary

    @property
    def replicas(self) -> list[str]:
        return [address for address, _ in self._replicas]

    # ------------------------------------------------------------------
    # transport with failover
    # ------------------------------------------------------------------

    def _request(
        self, address: str, method: str, path: str, payload: Mapping[str, Any] | None
    ) -> dict[str, Any]:
        client = self._clients[address]
        headers = {EPOCH_HEADER: str(self.epoch)} if self.epoch else {}
        try:
            response = client.request(method, path, payload, headers=headers)
        except ServerError as error:
            self._observe_epoch(error.headers.get(EPOCH_HEADER))
            raise
        return response

    def write(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Send one mutating request to the current primary, failing over.

        Retries under the policy budget on: no known primary (discovery
        loop until one appears), connection errors (the primary just
        died), 307 (we wrote to a replica: stale routing), 409 (we wrote
        to a fenced node), and 503 beyond the per-node Retry-After budget.
        """
        last_error: Exception | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if self._primary is None:
                self.discover()
            address = self._primary
            if address is None:
                last_error = NoPrimaryError("no primary answered discovery")
            else:
                try:
                    return self._request(address, method, path, payload)
                except ServerError as error:
                    if error.status not in (307, 409, 503):
                        raise
                    # Stale routing or a fenced/saturated node: re-discover
                    # and try again under the same budget.
                    last_error = error
                    self._primary = None
                except OSError as error:
                    last_error = error
                    self._primary = None
            if attempt < self.policy.max_attempts:
                self.policy.sleep(self.policy.delay_for(attempt, self._rng))
        raise NoPrimaryError(
            f"write failed after {self.policy.max_attempts} attempts: "
            f"{type(last_error).__name__}: {last_error}"
        )

    def read(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Send one read to the freshest eligible node.

        Candidate order: replicas with ``lag_records`` under the threshold
        (freshest first), then the primary, then over-threshold replicas
        as a last resort.  Each failed candidate falls through to the
        next; a fully failed pass re-discovers and backs off.
        """
        last_error: Exception | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if self._primary is None and not self._replicas:
                self.discover()
            for address in self._read_candidates():
                try:
                    return self._request(address, method, path, payload)
                except (ServerError, OSError) as error:
                    if isinstance(error, ServerError) and error.status in (400, 404):
                        raise  # the request itself is bad; another node won't help
                    last_error = error
            self._primary = None
            self._replicas = []
            if attempt < self.policy.max_attempts:
                self.policy.sleep(self.policy.delay_for(attempt, self._rng))
        raise NoPrimaryError(
            f"read failed on every node after {self.policy.max_attempts} "
            f"attempts: {type(last_error).__name__}: {last_error}"
        )

    def _read_candidates(self) -> list[str]:
        fresh = [
            address
            for address, lag in self._replicas
            if lag <= self.lag_threshold
        ]
        stale = [
            address
            for address, lag in self._replicas
            if lag > self.lag_threshold
        ]
        if not self.prefer_replicas:
            fresh, stale = [], fresh + stale
        candidates = fresh
        if self._primary is not None:
            candidates = candidates + [self._primary]
        return candidates + stale

    # ------------------------------------------------------------------
    # the NepalClient-shaped surface
    # ------------------------------------------------------------------

    def query(self, text: str) -> dict[str, Any]:
        return self.read("POST", "/query", {"query": text})

    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None
    ) -> int:
        return self.write(
            "POST", "/write",
            {"op": "insert_node", "class": class_name, "fields": fields},
        )["uid"]

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
    ) -> int:
        return self.write(
            "POST", "/write",
            {
                "op": "insert_edge", "class": class_name,
                "source": source, "target": target, "fields": fields,
            },
        )["uid"]

    def update(self, uid: int, changes: Mapping[str, Any]) -> None:
        self.write("POST", "/write", {"op": "update", "uid": uid, "changes": changes})

    def delete(self, uid: int) -> None:
        self.write("POST", "/write", {"op": "delete", "uid": uid})

    def statuses(self) -> dict[str, Any]:
        """Fresh per-node replication statuses (runs a discovery)."""
        return self.discover()

    def wait_for_primary(self, timeout: float = 30.0, poll: float = 0.05) -> str:
        """Block until discovery finds a primary; returns its address."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.discover()
            if self._primary is not None:
                return self._primary
            time.sleep(poll)
        raise NoPrimaryError(f"no primary appeared within {timeout}s")
