"""ReplicaSet: a multi-process replica-set harness for tests and demos.

Spawns real ``nepal serve`` subprocesses — one primary plus N replicas,
each with its own data directory — wires them together with
``--replicate-from``, and exposes the failure-injection controls the
chaos tests drive: ``SIGKILL`` the primary mid-churn, promote the
highest-LSN survivor, repoint the rest, revive the old primary and watch
it get fenced.  Nodes bind ephemeral ports and publish them through
``--port-file``, so harness runs never collide.

This is deliberately the *same* machinery the README walkthrough uses:
the harness shells out to the public CLI, talks to the public HTTP API,
and holds no private handles into the server processes — if the harness
can drive a failover, an operator can.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ReplicationError
from repro.replication.replica import parse_node_url
from repro.server.client import NepalClient, ServerError


def _src_path() -> str:
    """The ``src`` directory, for PYTHONPATH in spawned servers."""
    return os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..")
    )


@dataclass
class NodeHandle:
    """One ``nepal serve`` subprocess and how to reach it."""

    name: str
    data_dir: str
    port_file: str
    extra_args: list[str] = field(default_factory=list)
    process: subprocess.Popen | None = None
    address: str | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def client(self, **kwargs: Any) -> NepalClient:
        if self.address is None:
            raise ReplicationError(f"node {self.name} has no known address")
        host, port = parse_node_url(self.address)
        kwargs.setdefault("timeout", 10.0)
        return NepalClient(host, port, **kwargs)


class ReplicaSet:
    """Run and orchestrate a primary + replicas as real subprocesses.

    >>> cluster = ReplicaSet(base_dir, replicas=2)
    >>> cluster.start()
    >>> cluster.primary.client().insert_node("Host", {"name": "h1"})
    >>> cluster.kill_primary()
    >>> survivor = cluster.failover()
    >>> cluster.stop()
    """

    def __init__(
        self,
        base_dir: str | os.PathLike,
        replicas: int = 2,
        server_args: Sequence[str] = (),
        start_timeout: float = 30.0,
    ):
        self.base_dir = os.fspath(base_dir)
        self.start_timeout = start_timeout
        self.server_args = list(server_args)
        self.nodes: list[NodeHandle] = []
        self._primary_index = 0
        os.makedirs(self.base_dir, exist_ok=True)
        for index in range(replicas + 1):
            name = "primary" if index == 0 else f"replica{index}"
            self.nodes.append(
                NodeHandle(
                    name=name,
                    data_dir=os.path.join(self.base_dir, f"{name}-data"),
                    port_file=os.path.join(self.base_dir, f"{name}.port"),
                )
            )

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    @property
    def primary(self) -> NodeHandle:
        return self.nodes[self._primary_index]

    @property
    def replicas(self) -> list[NodeHandle]:
        return [
            node
            for index, node in enumerate(self.nodes)
            if index != self._primary_index and node.alive
        ]

    def start(self) -> "ReplicaSet":
        self.start_node(self.primary)
        self.wait_ready(self.primary)
        for node in self.nodes[1:]:
            self.start_node(node, replicate_from=self.primary.address)
        for node in self.nodes[1:]:
            self.wait_ready(node)
        return self

    def start_node(
        self,
        node: NodeHandle,
        replicate_from: str | None = None,
        fresh_data: bool = False,
    ) -> NodeHandle:
        """Spawn one ``nepal serve`` process for *node*."""
        if node.alive:
            raise ReplicationError(f"node {node.name} is already running")
        if fresh_data:
            import shutil

            shutil.rmtree(node.data_dir, ignore_errors=True)
        if os.path.exists(node.port_file):
            os.unlink(node.port_file)
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--port-file", node.port_file,
            "--data-dir", node.data_dir,
            "--node-name", node.name,
            *self.server_args,
            *node.extra_args,
        ]
        if replicate_from is not None:
            argv += ["--replicate-from", replicate_from]
        env = dict(os.environ)
        env["PYTHONPATH"] = _src_path() + os.pathsep + env.get("PYTHONPATH", "")
        node.process = subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        node.address = self._await_port(node)
        return node

    def _await_port(self, node: NodeHandle) -> str:
        deadline = time.monotonic() + self.start_timeout
        while time.monotonic() < deadline:
            if node.process is not None and node.process.poll() is not None:
                raise ReplicationError(
                    f"node {node.name} exited with {node.process.returncode} "
                    "before publishing its port"
                )
            try:
                with open(node.port_file, encoding="utf-8") as handle:
                    address = handle.read().strip()
                if address:
                    return address
            except FileNotFoundError:
                pass
            time.sleep(0.02)
        raise ReplicationError(
            f"node {node.name} did not publish a port within "
            f"{self.start_timeout}s"
        )

    def wait_ready(self, node: NodeHandle, timeout: float | None = None) -> None:
        """Poll ``GET /readyz`` until the node reports ready."""
        deadline = time.monotonic() + (timeout or self.start_timeout)
        client = node.client(retry_503=0)
        last: str = "never reached"
        while time.monotonic() < deadline:
            try:
                client.readyz()
                return
            except ServerError as error:
                last = f"HTTP {error.status}: {error}"
            except OSError as error:
                last = f"{type(error).__name__}: {error}"
            time.sleep(0.05)
        raise ReplicationError(
            f"node {node.name} never became ready ({last})"
        )

    # ------------------------------------------------------------------
    # failure injection & failover
    # ------------------------------------------------------------------

    def kill(self, node: NodeHandle, sig: int = signal.SIGKILL) -> None:
        """Deliver *sig* to the node's process and reap it."""
        if node.process is None:
            return
        if node.process.poll() is None:
            node.process.send_signal(sig)
        node.process.wait(timeout=30)

    def kill_primary(self, sig: int = signal.SIGKILL) -> NodeHandle:
        node = self.primary
        self.kill(node, sig)
        return node

    def statuses(self) -> dict[str, dict[str, Any]]:
        """Replication status of every live node, by node name."""
        result: dict[str, dict[str, Any]] = {}
        for node in self.nodes:
            if not node.alive:
                continue
            try:
                result[node.name] = node.client(retry_503=0).replication_status()
            except (ServerError, OSError):
                continue
        return result

    def best_replica(self) -> NodeHandle:
        """The live replica with the highest applied LSN — the node the
        deterministic failover rule promotes (it holds the longest
        committed prefix, so no acknowledged write is lost)."""
        best: tuple[int, NodeHandle] | None = None
        for node in self.nodes:
            if not node.alive or node is self.primary:
                continue
            try:
                status = node.client(retry_503=0).replication_status()
            except (ServerError, OSError):
                continue
            lsn = int(status.get("last_lsn", 0))
            if best is None or lsn > best[0]:
                best = (lsn, node)
        if best is None:
            raise ReplicationError("no live replica to promote")
        return best[1]

    def promote(self, node: NodeHandle) -> dict[str, Any]:
        status = node.client().promote()
        self._primary_index = self.nodes.index(node)
        return status

    def failover(self) -> NodeHandle:
        """The full deterministic failover: promote the highest-LSN live
        replica, then repoint every other live replica at it."""
        survivor = self.best_replica()
        self.promote(survivor)
        for node in self.nodes:
            if not node.alive or node is survivor:
                continue
            try:
                node.client().request(
                    "POST", "/replication/repoint",
                    {"primary": survivor.address},
                )
            except (ServerError, OSError):
                continue
        return survivor

    def stop(self) -> None:
        """Terminate every node (SIGTERM first, SIGKILL as backstop)."""
        for node in self.nodes:
            if node.process is None:
                continue
            if node.process.poll() is None:
                node.process.terminate()
        deadline = time.monotonic() + 15.0
        for node in self.nodes:
            if node.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                node.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                node.process.kill()
                node.process.wait(timeout=10)

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
