"""``nepal`` — an interactive NPQL shell and batch query runner.

Usage::

    nepal --demo                 # load the virtualized service topology
    nepal --schema my.yaml       # start with a TOSCA-style schema
    nepal --demo -c "Select source(P).name From PATHS P Where P MATCHES VNF()"

Inside the shell::

    nepal> Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()
    nepal> .explain Retrieve P From PATHS P Where P MATCHES VNF()
    nepal> .explain --analyze Retrieve P From PATHS P Where P MATCHES VNF()
    nepal> .schema            — print the class hierarchies
    nepal> .stats             — store census
    nepal> .quit

``nepal explain [--analyze] <query>`` renders a plan (and, with
``--analyze``, the traced actual row counts next to the estimates)
without entering the shell.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading

from repro.core.database import NepalDB
from repro.errors import NepalError
from repro.query.results import QueryResult
from repro.schema.tosca import schema_from_tosca_file
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import format_timestamp

_PROMPT = "nepal> "


def build_database(args: argparse.Namespace) -> NepalDB:
    """Construct the database the CLI flags describe."""
    schema = None
    if args.schema:
        schema = schema_from_tosca_file(args.schema)
    clock = TransactionClock(start=args.epoch) if args.epoch is not None else None
    data_dir = getattr(args, "data_dir", None)
    db = NepalDB(schema=schema, backend=args.backend, clock=clock, data_dir=data_dir)
    if data_dir is not None:
        report = db.recovery_report
        if report is not None and (report.checkpoint_loaded or report.wal_records):
            print(f"recovered {data_dir}: {report.describe()}", file=sys.stderr)
        elif report is not None:
            print(f"opened fresh durable store at {data_dir}", file=sys.stderr)
    if args.demo:
        from repro.inventory.virtualized import VirtualizedServiceTopology

        handles = VirtualizedServiceTopology().apply(db.store)
        print(f"loaded demo topology: {handles.summary()}", file=sys.stderr)
    if args.snapshot:
        from repro.storage.snapshot import Snapshot, SnapshotLoader

        stats = SnapshotLoader(db.store).apply(Snapshot.load(args.snapshot))
        print(
            f"loaded snapshot {args.snapshot}: +{stats.inserted_nodes} nodes, "
            f"+{stats.inserted_edges} edges",
            file=sys.stderr,
        )
    # Chaos is injected after loading so the data arrives intact; queries
    # then run against a flaky backend and lean on the retry layer.
    # (getattr: callers build partial Namespaces programmatically.)
    chaos_seed = getattr(args, "chaos_seed", None)
    retry_attempts = getattr(args, "retry_attempts", None)
    if chaos_seed is not None:
        from repro.storage.chaos import FaultPlan

        error_rate = getattr(args, "chaos_error_rate", 0.05)
        latency = getattr(args, "chaos_latency", 0.0)
        db.inject_faults(
            FaultPlan(seed=chaos_seed, error_rate=error_rate, latency=latency)
        )
        print(
            f"chaos enabled on default store (seed={chaos_seed}, "
            f"error_rate={error_rate}, latency={latency}s)",
            file=sys.stderr,
        )
    if chaos_seed is not None or retry_attempts is not None:
        from repro.core.resilience import ResiliencePolicy

        db.set_resilience(
            ResiliencePolicy(
                max_attempts=retry_attempts or 6,
                base_delay=0.01,
                seed=chaos_seed,
            ),
            allow_partial=getattr(args, "allow_partial", False),
        )
    return db


def render_result(result: QueryResult) -> str:
    """Format a query result (and any validity ranges) for the terminal."""
    warning_lines = [f"warning: {w}" for w in result.warnings]
    if not result.rows:
        return "\n".join(warning_lines + ["(no results)"])
    lines = warning_lines + [result.to_table()]
    temporal = [row for row in result.rows if row.validity is not None]
    if temporal:
        lines.append("")
        lines.append("validity ranges:")
        for index, row in enumerate(result.rows):
            if row.validity is None:
                continue
            ranges = ", ".join(
                f"[{format_timestamp(i.start)!r}, "
                + (f"{format_timestamp(i.end)!r})" if not i.is_current else ")")
                for i in row.validity
            )
            lines.append(f"  row {index}: {ranges}")
    lines.append(f"({len(result.rows)} rows)")
    return "\n".join(lines)


def run_statement(db: NepalDB, statement: str) -> str:
    """Execute one shell statement (a query or a dot-command)."""
    statement = statement.strip()
    if not statement:
        return ""
    if statement in (".quit", ".exit"):
        raise EOFError
    if statement == ".schema":
        return db.schema.describe()
    if statement == ".stats":
        return (
            db.describe()
            + "\ncache statistics:\n"
            + db.metrics.describe()
        )
    if statement == ".help":
        return (
            "enter an NPQL query, or:\n"
            "  .explain [--analyze] <query>\n"
            "                     show the operator plan; --analyze also\n"
            "                     executes it and reports actual row counts\n"
            "  .translate <query> generate the equivalent Python program\n"
            "  .dump <path>       export the graph as a JSON snapshot\n"
            "  .paths <rpe>       evaluate a bare pathway expression\n"
            "  .checkpoint        compact history to disk, truncate the WAL\n"
            "  .schema / .stats / .quit"
        )
    if statement == ".checkpoint":
        info = db.checkpoint()
        return (
            f"checkpoint written: {info.records} records, "
            f"data_version {info.data_version}, "
            f"{info.wal_bytes_truncated} WAL bytes truncated"
        )
    if statement.startswith(".explain "):
        rest = statement[len(".explain "):].strip()
        if rest.startswith("--analyze "):
            return db.explain(rest[len("--analyze "):], analyze=True)
        return db.explain(rest)
    if statement.startswith(".translate "):
        return db.translate(statement[len(".translate "):])
    if statement.startswith(".dump "):
        from repro.storage.snapshot import export_snapshot

        path = statement[len(".dump "):].strip()
        snapshot = export_snapshot(db.store)
        snapshot.save(path)
        return f"wrote {len(snapshot.nodes)} nodes / {len(snapshot.edges)} edges to {path}"
    if statement.startswith(".paths "):
        pathways = db.find_paths(statement[len(".paths "):])
        body = "\n".join(p.render() for p in pathways) or "(no pathways)"
        return f"{body}\n({len(pathways)} pathways)"
    return render_result(db.query(statement))


def repl(db: NepalDB) -> int:
    """The interactive read-eval-print loop."""
    print("Nepal shell — .help for commands, .quit to leave", file=sys.stderr)
    while True:
        try:
            line = input(_PROMPT)
        except (EOFError, KeyboardInterrupt):
            print(file=sys.stderr)
            return 0
        try:
            output = run_statement(db, line)
        except EOFError:
            return 0
        except NepalError as error:
            print(f"error: {error}", file=sys.stderr)
            continue
        if output:
            print(output)


def _add_database_flags(parser: argparse.ArgumentParser) -> None:
    """The flags :func:`build_database` consumes (shared by shell & serve)."""
    parser.add_argument(
        "--backend", choices=("memory", "relational"), default="memory",
        help="storage backend (default: memory)",
    )
    parser.add_argument("--schema", help="TOSCA-style YAML schema file")
    parser.add_argument(
        "--demo", action="store_true",
        help="pre-load the synthetic virtualized service topology",
    )
    parser.add_argument(
        "--epoch", type=float, default=None,
        help="pin the transaction clock at this epoch timestamp",
    )
    parser.add_argument(
        "--snapshot", help="load a JSON snapshot (see the .dump command)"
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable storage directory: journal every write to a WAL, "
             "recover checkpoint+journal on startup (memory backend only)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="wrap the default store in a fault injector with this seed",
    )
    parser.add_argument(
        "--chaos-error-rate", type=float, default=0.05, metavar="RATE",
        help="per-call transient failure probability under --chaos-seed "
             "(default: 0.05)",
    )
    parser.add_argument(
        "--chaos-latency", type=float, default=0.0, metavar="SECONDS",
        help="fixed injected latency per backend call under --chaos-seed",
    )
    parser.add_argument(
        "--retry-attempts", type=int, default=None, metavar="N",
        help="enable the resilience layer with this retry budget "
             "(implied, with N=6, by --chaos-seed)",
    )
    parser.add_argument(
        "--allow-partial", action="store_true",
        help="degrade federated queries when a backend stays down "
             "(warnings instead of errors)",
    )


def serve_main(argv: list[str]) -> int:
    """``nepal serve`` — run the threaded HTTP front end.

    With ``--replicate-from HOST:PORT`` the node comes up as a read-only
    replica streaming that primary's WAL (requires ``--data-dir``).
    SIGTERM and SIGINT trigger a graceful shutdown: stop accepting, stop
    replication, drain in-flight requests, close leftover snapshots,
    flush and close the journal.
    """
    parser = argparse.ArgumentParser(
        prog="nepal serve",
        description="Serve a Nepal database over HTTP with snapshot-"
                    "isolated concurrent reads and a single-writer commit path",
    )
    _add_database_flags(parser)
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=7687, help="bind port (default: 7687; 0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound 'host:port' here once listening (harnesses "
             "pair this with --port 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="request handler threads (default: 8)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=16,
        help="requests allowed to wait for a free worker before admission "
             "control answers 503 (default: 16)",
    )
    parser.add_argument(
        "--request-deadline", type=float, default=5.0, metavar="SECONDS",
        help="per-request read deadline, answered with 504 when overrun "
             "(default: 5.0)",
    )
    parser.add_argument(
        "--replicate-from", default=None, metavar="HOST:PORT",
        help="start as a read-only replica streaming this primary's WAL "
             "(requires --data-dir; writes answer 307 to the primary)",
    )
    parser.add_argument(
        "--node-name", default=None, metavar="NAME",
        help="node name in replication status payloads (default: host:port)",
    )
    parser.add_argument(
        "--lag-threshold", type=int, default=1000, metavar="RECORDS",
        help="GET /readyz answers 503 while replica lag exceeds this many "
             "records (default: 1000)",
    )
    args = parser.parse_args(argv)

    from repro.server import NepalServer, ServerConfig

    if args.replicate_from and not args.data_dir:
        print("error: --replicate-from requires --data-dir", file=sys.stderr)
        return 2
    try:
        db = build_database(args)
    except NepalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        deadline=args.request_deadline,
        lag_threshold=args.lag_threshold,
    )
    server = NepalServer(db, config)
    stop_requested = threading.Event()

    def _request_stop(signum, frame) -> None:
        stop_requested.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _request_stop)
    try:
        server.start()
        host, port = server.address
        server.replication.node_name = args.node_name or f"{host}:{port}"
        if args.replicate_from:
            server.replication.become_replica(args.replicate_from)
            print(
                f"replicating from {args.replicate_from}", file=sys.stderr
            )
        if args.port_file:
            # Written atomically so a harness polling the file never reads
            # a half-written address.
            temp = args.port_file + ".tmp"
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(f"{host}:{port}\n")
            os.replace(temp, args.port_file)
        role = server.replication.role
        print(
            f"nepal serving on http://{host}:{port} as {role} "
            f"({config.workers} workers, queue depth {config.queue_depth}, "
            f"deadline {config.deadline}s) — SIGTERM/Ctrl-C for graceful stop",
            file=sys.stderr,
        )
        while not stop_requested.wait(timeout=3600):
            pass
        print("shutting down: draining in-flight requests", file=sys.stderr)
        return 0
    finally:
        server.graceful_stop()


def promote_main(argv: list[str]) -> int:
    """``nepal promote HOST:PORT`` — make that replica the primary."""
    parser = argparse.ArgumentParser(
        prog="nepal promote",
        description="Promote a running replica to primary: it stops "
                    "streaming, stamps the next epoch into its WAL and "
                    "starts accepting writes",
    )
    parser.add_argument("node", help="replica address as host:port")
    args = parser.parse_args(argv)

    from repro.replication import parse_node_url
    from repro.server import NepalClient, ServerError

    host, port = parse_node_url(args.node)
    client = NepalClient(host, port)
    try:
        status = client.promote()
    except (ServerError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"promoted {args.node}: role={status.get('role')} "
        f"epoch={status.get('epoch')} last_lsn={status.get('last_lsn')}"
    )
    return 0


def explain_main(argv: list[str]) -> int:
    """``nepal explain`` — render a query plan, optionally ANALYZE-d."""
    parser = argparse.ArgumentParser(
        prog="nepal explain",
        description="Render the operator plan for an NPQL query; with "
                    "--analyze, execute it under tracing and report actual "
                    "row counts, cache outcomes and per-operator timings",
    )
    _add_database_flags(parser)
    parser.add_argument(
        "--analyze", action="store_true",
        help="execute the query and pair each plan with what it actually did",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="with --analyze, also print the raw span tree",
    )
    parser.add_argument("query", help="the NPQL query to explain")
    args = parser.parse_args(argv)

    try:
        db = build_database(args)
    except NepalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if args.analyze:
            analysis = db.explain_analyze(args.query)
            print(analysis.render())
            if args.trace:
                print()
                print(analysis.trace.render())
        else:
            print(db.explain(args.query))
        return 0
    except NepalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        db.close()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (the ``nepal`` console script)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["serve"]:
        return serve_main(argv[1:])
    if argv[:1] == ["promote"]:
        return promote_main(argv[1:])
    if argv[:1] == ["explain"]:
        return explain_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="nepal",
        description="Nepal — path-first temporal network-inventory database "
                    "(see also: nepal serve --help, nepal explain --help)",
    )
    _add_database_flags(parser)
    parser.add_argument(
        "-c", "--command", action="append", default=[],
        help="run this statement and exit (repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        db = build_database(args)
    except NepalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        if args.command:
            status = 0
            for statement in args.command:
                try:
                    output = run_statement(db, statement)
                except EOFError:
                    break
                except NepalError as error:
                    print(f"error: {error}", file=sys.stderr)
                    status = 1
                    continue
                if output:
                    print(output)
            return status
        return repl(db)
    finally:
        db.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
