"""Exact pathway validity for time-range queries (Section 4).

"Every pathway returned by this query has a time range during which it can
be asserted in the database.  Furthermore, this range is the maximal such
range."  Note the paper's own example: a 9:00–11:00 query returns a result
whose range starts at 06:30 — the window decides *which* pathways qualify
(they must hold at some instant inside it), but the reported ranges are
maximal over the whole timeline.

Traversal under a range scope is optimistic: an element qualifies when any
of its versions in the window satisfies the automaton.  This function then
computes the exact maximal validity of each emitted pathway by running an
interval-weighted copy of the match automaton over the pathway's element
positions, feeding *every* stored version of each element: the interval set
reaching the accept state is precisely the set of instants at which some
version combination satisfies the RPE.  Field changes clip it (a predicate
that stopped holding at 9:45 ends the range at 9:45), structural deletions
clip it, and still-current versions leave it open-ended.
"""

from __future__ import annotations

from repro.model.pathway import Pathway
from repro.rpe.nfa import PathwayNfa
from repro.storage.base import GraphStore
from repro.temporal.interval import FOREVER, Interval, IntervalSet

_ALL_TIME = Interval(-FOREVER, FOREVER)


def pathway_validity(
    store: GraphStore,
    pathway: Pathway,
    matcher: PathwayNfa,
) -> IntervalSet:
    """Maximal interval set during which *pathway* satisfies the matcher."""
    state_intervals = matcher.interval_initial(IntervalSet.always())
    for element in pathway.elements:
        versions = [
            (version, IntervalSet([version.period]))
            for version in store.versions(element.uid, _ALL_TIME)
        ]
        if not versions:
            return IntervalSet.empty()
        state_intervals = matcher.interval_step(state_intervals, versions)
        if not state_intervals:
            return IntervalSet.empty()
    accepted = matcher.accepting_intervals(state_intervals)
    if accepted is None:
        return IntervalSet.empty()
    return accepted  # type: ignore[return-value]
