"""Transaction-time temporal support.

Nepal is a transaction-time temporal database (Snodgrass & Ahn [31]): every
node and edge version carries a system period recording when the database
asserted it.  This package provides the interval algebra used to compute
pathway validity ranges, timestamp parsing, and a logical clock for stores.
"""

from repro.temporal.clock import TransactionClock
from repro.temporal.interval import (
    FOREVER,
    Interval,
    IntervalSet,
    format_timestamp,
    parse_timestamp,
)

__all__ = [
    "FOREVER",
    "Interval",
    "IntervalSet",
    "TransactionClock",
    "format_timestamp",
    "parse_timestamp",
]
