"""Transaction clock for stores.

Backends stamp every insert/update/delete with a transaction time.  Real
deployments use wall-clock time; tests, generators and the churn simulator
need deterministic, monotone, controllable time.  :class:`TransactionClock`
supports both: it returns wall-clock time by default but can be pinned,
advanced manually, and always enforces monotonicity (a requirement of
transaction-time databases — system periods never move backwards).
"""

from __future__ import annotations

import math
import time

from repro.errors import TemporalError


class TransactionClock:
    """Monotone source of transaction timestamps.

    >>> clock = TransactionClock(start=100.0)
    >>> clock.now()
    100.0
    >>> clock.advance(10)
    110.0
    """

    def __init__(self, start: float | None = None):
        self._pinned = start is not None
        self._current = start if start is not None else 0.0

    @property
    def pinned(self) -> bool:
        """True when the clock is under manual control."""
        return self._pinned

    def now(self) -> float:
        """Current transaction time; wall clock unless pinned."""
        if self._pinned:
            return self._current
        self._current = max(self._current, time.time())
        return self._current

    def pin(self) -> float:
        """Pin the clock at its current value without moving it.

        A replication replica pins its clock before serving: reads must not
        chase the local wall clock past the primary's transaction stamps,
        or applying a shipped record would mean moving time backwards.
        After pinning, time only advances when shipped records are applied.
        """
        self._pinned = True
        return self._current

    def set(self, timestamp: float) -> float:
        """Pin the clock at *timestamp* (must not move backwards)."""
        if timestamp < self._current:
            raise TemporalError(
                f"transaction time may not move backwards: {timestamp} < {self._current}"
            )
        self._pinned = True
        self._current = timestamp
        return self._current

    def advance(self, seconds: float) -> float:
        """Pin the clock and move it forward by *seconds*."""
        if seconds < 0 or not math.isfinite(seconds):
            raise TemporalError(f"advance requires a finite non-negative delta, got {seconds}")
        self._pinned = True
        self._current = self.now() + seconds
        return self._current

    def ensure_after(self, timestamp: float) -> float:
        """Guarantee the next stamp lands strictly after *timestamp*.

        Used by the single-writer commit gate: a commit that lands while a
        read snapshot pinned at ``timestamp`` is open must stamp its rows
        past the pin, otherwise the snapshot would see the new rows.
        Unlike :meth:`set` this never pins a wall clock — it only raises the
        monotone floor that ``now()`` already honours.
        """
        floor = math.nextafter(timestamp, math.inf)
        if floor > self._current:
            self._current = floor
        return self._current

    def tick(self) -> float:
        """Advance by the smallest representable step and return the new time."""
        self._pinned = True
        self._current = math.nextafter(self._current, math.inf)
        return self._current
