"""Half-open transaction-time intervals and interval sets.

Timestamps are represented as floats (seconds since the Unix epoch).  An
interval ``[start, end)`` asserts that a fact was in the database from
``start`` (inclusive) up to ``end`` (exclusive); ``end == FOREVER`` means the
fact is still current — the paper renders this as an interval with a missing
upper bound, e.g. ``[‘2017-02-15 09:15’, ]``.

:class:`IntervalSet` is the workhorse of the time-range query semantics of
Section 4: the validity range of a pathway is the *intersection* of the
validity sets of its element versions, and the maximal ranges the paper
promises are exactly the connected components of that intersection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Iterable, Iterator, Sequence

from repro.errors import TemporalError

FOREVER: float = math.inf
"""Open upper bound for rows that are still current."""

_TIMESTAMP_FORMATS = (
    "%Y-%m-%d %H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%dT%H:%M:%S.%f",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%dT%H:%M",
    "%Y-%m-%d",
)


def parse_timestamp(value: str | float | int | datetime) -> float:
    """Coerce *value* to an epoch-seconds float.

    Accepts the timestamp literal formats used in NPQL queries
    (``'2017-02-15 10:00:00'`` and friends), numbers (passed through), and
    :class:`datetime` objects (naive datetimes are taken as UTC).
    """
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime):
        if value.tzinfo is None:
            value = value.replace(tzinfo=timezone.utc)
        return value.timestamp()
    text = value.strip().strip("'\"")
    for fmt in _TIMESTAMP_FORMATS:
        try:
            parsed = datetime.strptime(text, fmt)
        except ValueError:
            continue
        return parsed.replace(tzinfo=timezone.utc).timestamp()
    raise TemporalError(f"unrecognized timestamp literal: {value!r}")


def format_timestamp(ts: float) -> str:
    """Render an epoch timestamp the way the paper prints them."""
    if ts == FOREVER:
        return ""
    if ts == -FOREVER:
        return "-inf"
    moment = datetime.fromtimestamp(ts, tz=timezone.utc)
    if moment.microsecond:
        return moment.strftime("%Y-%m-%d %H:%M:%S.%f")
    return moment.strftime("%Y-%m-%d %H:%M:%S")


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` of transaction time."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise TemporalError(
                f"empty interval: start {self.start!r} must precede end {self.end!r}"
            )

    @classmethod
    def at(cls, point: float) -> "Interval":
        """Smallest representable interval containing *point* (for timeslices)."""
        return cls(point, math.nextafter(point, math.inf))

    @classmethod
    def since(cls, start: float) -> "Interval":
        """Interval open to the right: the fact is still current."""
        return cls(start, FOREVER)

    @property
    def is_current(self) -> bool:
        """True when the interval extends to the present (``end == FOREVER``)."""
        return self.end == FOREVER

    def contains(self, point: float) -> bool:
        """Membership test honouring the half-open convention."""
        return self.start <= point < self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one instant."""
        return self.start < other.end and other.start < self.end

    def meets_or_overlaps(self, other: "Interval") -> bool:
        """True when the union of the two intervals is a single interval."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection, or None when the intervals are disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def duration(self) -> float:
        """Length in seconds (``inf`` for still-current intervals)."""
        return self.end - self.start

    def __str__(self) -> str:
        return f"[{format_timestamp(self.start)!r}, {format_timestamp(self.end)!r})"


class IntervalSet:
    """An immutable union of disjoint, sorted, half-open intervals.

    The constructor normalizes arbitrary input intervals by sorting and
    coalescing adjacent/overlapping ones, so the maximal-interval guarantee of
    the paper's time-range queries falls out of the representation.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._intervals: tuple[Interval, ...] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
        merged: list[Interval] = []
        for interval in ordered:
            if merged and merged[-1].meets_or_overlaps(interval):
                last = merged[-1]
                if interval.end > last.end:
                    merged[-1] = Interval(last.start, max(last.end, interval.end))
            else:
                merged.append(interval)
        return tuple(merged)

    @classmethod
    def empty(cls) -> "IntervalSet":
        return _EMPTY

    @classmethod
    def always(cls) -> "IntervalSet":
        """The full timeline ``(-inf, inf)``."""
        return _ALWAYS

    @classmethod
    def of(cls, start: float, end: float = FOREVER) -> "IntervalSet":
        return cls([Interval(start, end)])

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._intervals

    def is_empty(self) -> bool:
        return not self._intervals

    def contains(self, point: float) -> bool:
        """Binary-searched membership test."""
        lo, hi = 0, len(self._intervals)
        while lo < hi:
            mid = (lo + hi) // 2
            interval = self._intervals[mid]
            if point < interval.start:
                hi = mid
            elif point >= interval.end:
                lo = mid + 1
            else:
                return True
        return False

    def union(self, other: "IntervalSet") -> "IntervalSet":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return IntervalSet([*self._intervals, *other._intervals])

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Linear-merge intersection of two normalized interval sequences."""
        if self.is_empty() or other.is_empty():
            return _EMPTY
        result: list[Interval] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersect(b[j])
            if overlap is not None:
                result.append(overlap)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def clip(self, window: Interval) -> "IntervalSet":
        """Restrict the set to *window*."""
        return self.intersect(IntervalSet([window]))

    def complement(self, window: Interval) -> "IntervalSet":
        """The instants of *window* not covered by this set."""
        gaps: list[Interval] = []
        cursor = window.start
        for interval in self._intervals:
            if interval.end <= window.start:
                continue
            if interval.start >= window.end:
                break
            if interval.start > cursor:
                gaps.append(Interval(cursor, min(interval.start, window.end)))
            cursor = max(cursor, interval.end)
        if cursor < window.end:
            gaps.append(Interval(cursor, window.end))
        return IntervalSet(gaps)

    def first_instant(self) -> float | None:
        """Earliest covered instant — ``First Time When Exists`` (§4)."""
        return self._intervals[0].start if self._intervals else None

    def last_instant(self) -> float | None:
        """Latest covered instant, ``None`` upper bound meaning still current.

        Implements ``Last Time When Exists`` (§4): for a still-current set the
        last instant is unbounded, reported here as ``FOREVER``.
        """
        return self._intervals[-1].end if self._intervals else None

    def total_duration(self) -> float:
        return sum(interval.duration() for interval in self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        return f"IntervalSet({list(map(str, self._intervals))})"


def intersect_all(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Intersection of many interval sets (empty input yields ``always``)."""
    if not sets:
        return IntervalSet.always()
    result = sets[0]
    for interval_set in sets[1:]:
        if result.is_empty():
            return result
        result = result.intersect(interval_set)
    return result


_EMPTY = IntervalSet.__new__(IntervalSet)
object.__setattr__(_EMPTY, "_intervals", ())

_ALWAYS = IntervalSet.__new__(IntervalSet)
object.__setattr__(_ALWAYS, "_intervals", (Interval(-FOREVER, FOREVER),))
