"""Snapshot-isolated reads and the single-writer commit gate.

The temporal version machinery is already a multi-version store: every
write closes the superseded version into history and stamps the new one
with the transaction clock.  Concurrency therefore does not need a second
copy of anything — a **read snapshot** is just the pair
``(as_of transaction time, data_version)`` captured atomically, and a read
at that snapshot is an ordinary temporal read rewritten to ``AT as_of``.
This is the same trick *Towards Temporal Graph Databases* and the source
paper lean on: the version chains give every reader a consistent as-of
view without blocking the writer.

Three pieces cooperate:

* :class:`SnapshotStore` — a read-only :class:`~repro.storage.base.GraphStore`
  decorator that rewrites every read scope to the pinned instant, freezes
  ``data_version``, and re-presents versions still open at the pin as
  current (so results are byte-identical to what a reader saw before a
  later commit closed them).
* :class:`WriteGate` — the single-writer commit path.  A re-entrant lock
  serializes committers, and a refcounted registry of open pins lets a
  commit push the transaction clock past the newest open snapshot, so
  rows written *after* a pin always stamp *after* it.
* :class:`SnapshotView` / :class:`ReadSnapshot` — the per-store pin map
  threaded through the executor, and the public handle
  :meth:`NepalDB.snapshot` returns.

What is isolated: reads through a pin never observe commits that landed
after the pin, no matter how the writer interleaves.  What is *not*
isolated: writes are single-writer (serialized, not concurrent), census
methods (``counts``/``storage_cells``) report live storage, and backends
without version chains (``supports_snapshots`` False) are always read
live.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, NamedTuple, Sequence

from repro.errors import NepalError, QueryDeadlineExceeded, StorageError
from repro.model.elements import EdgeRecord, ElementRecord
from repro.rpe.ast import Atom
from repro.schema.classes import EdgeClass
from repro.storage.base import GraphStore, TimeScope
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import FOREVER, Interval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import NepalDB
    from repro.model.pathway import Pathway
    from repro.plan.program import MatchProgram
    from repro.stats.metrics import MetricsRegistry


class SnapshotPin(NamedTuple):
    """What a snapshot pins for one store."""

    as_of: float
    data_version: int


class SnapshotStore(GraphStore):
    """Read-only view of *inner* at a pinned transaction time.

    Every read scope is rewritten against the pin:

    * ``current`` becomes ``at(as_of)``;
    * ``at(t)`` stays put for ``t <= as_of`` and clamps to ``at(as_of)``
      otherwise (the snapshot's "present" is the pin — the future does
      not exist yet);
    * ``range(s, e)`` is clipped to end no later than just past the pin.

    Versions still open at the pin are re-presented with an open period
    (``end = FOREVER``): the reader pinned a world in which that version
    *was* current, and a later commit closing it must not leak into the
    pinned view even as a changed upper bound.  Versions that start after
    the pin are filtered out of :meth:`versions` for the same reason.

    Writes raise :class:`~repro.errors.StorageError`.  When a per-request
    deadline is set, every read checks it first and raises
    :class:`~repro.errors.QueryDeadlineExceeded` once overrun, which gives
    served queries a cheap cooperative cancellation point.
    """

    def __init__(
        self,
        inner: GraphStore,
        as_of: float,
        data_version: int,
        deadline_at: float | None = None,
        monotonic: Callable[[], float] = time.monotonic,
    ):
        super().__init__(inner.schema, clock=inner.clock, name=inner.name)
        self._inner = inner
        self.as_of = as_of
        self._pinned_version = data_version
        self._horizon = math.nextafter(as_of, math.inf)
        self._deadline_at = deadline_at
        self._monotonic = monotonic

    @property
    def inner(self) -> GraphStore:
        return self._inner

    # -- pin mechanics -----------------------------------------------------

    def _check_deadline(self) -> None:
        if self._deadline_at is not None and self._monotonic() >= self._deadline_at:
            raise QueryDeadlineExceeded(
                f"request deadline exceeded while reading {self.name!r}"
            )

    def _pinned_scope(self, scope: TimeScope) -> TimeScope:
        if scope.kind == TimeScope.CURRENT:
            return TimeScope.at(self.as_of)
        if scope.kind == TimeScope.AT:
            return scope if scope.start <= self.as_of else TimeScope.at(self.as_of)
        if scope.start > self.as_of:
            return TimeScope.at(self.as_of)
        return TimeScope.between(scope.start, min(scope.end, self._horizon))

    def _clip(self, record: ElementRecord) -> ElementRecord:
        period = record.period
        if period.end > self.as_of and period.end != FOREVER:
            return record.with_period(Interval(period.start, FOREVER))
        return record

    # -- read path ---------------------------------------------------------

    def scan_atom(self, atom: Atom, scope: TimeScope) -> list[ElementRecord]:
        self._check_deadline()
        records = self._inner.scan_atom(atom, self._pinned_scope(scope))
        return [self._clip(record) for record in records]

    def get_element(self, uid: int, scope: TimeScope) -> ElementRecord | None:
        self._check_deadline()
        record = self._inner.get_element(uid, self._pinned_scope(scope))
        return None if record is None else self._clip(record)

    def get_many(
        self, uids: Sequence[int], scope: TimeScope
    ) -> dict[int, ElementRecord]:
        self._check_deadline()
        records = self._inner.get_many(uids, self._pinned_scope(scope))
        return {uid: self._clip(record) for uid, record in records.items()}

    def versions(self, uid: int, window: Interval) -> list[ElementRecord]:
        self._check_deadline()
        # A version open at the pin has an open period in the pinned view,
        # so it overlaps ANY window — widen the probe to catch versions the
        # live store considers closed before the window starts.
        probe = window
        if window.start > self.as_of:
            probe = Interval(self.as_of, window.end)
        out: list[ElementRecord] = []
        for version in self._inner.versions(uid, probe):
            if version.period.start > self.as_of:
                continue
            clipped = self._clip(version)
            if clipped.period.overlaps(window):
                out.append(clipped)
        return out

    def out_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> list[EdgeRecord]:
        self._check_deadline()
        records = self._inner.out_edges(node_uid, self._pinned_scope(scope), classes)
        return [self._clip(record) for record in records]

    def in_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> list[EdgeRecord]:
        self._check_deadline()
        records = self._inner.in_edges(node_uid, self._pinned_scope(scope), classes)
        return [self._clip(record) for record in records]

    def out_edges_many(
        self,
        node_uids: Sequence[int],
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> dict[int, list[EdgeRecord]]:
        self._check_deadline()
        batches = self._inner.out_edges_many(node_uids, self._pinned_scope(scope), classes)
        return {
            uid: [self._clip(record) for record in records]
            for uid, records in batches.items()
        }

    def in_edges_many(
        self,
        node_uids: Sequence[int],
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> dict[int, list[EdgeRecord]]:
        self._check_deadline()
        batches = self._inner.in_edges_many(node_uids, self._pinned_scope(scope), classes)
        return {
            uid: [self._clip(record) for record in records]
            for uid, records in batches.items()
        }

    def class_count(self, class_name: str) -> int:
        self._check_deadline()
        counted = self._inner.class_count_at(class_name, TimeScope.at(self.as_of))
        if counted is not None:
            return counted
        return self._inner.class_count(class_name)

    def class_count_at(self, class_name: str, scope: TimeScope) -> int | None:
        self._check_deadline()
        return self._inner.class_count_at(class_name, self._pinned_scope(scope))

    def counts(self) -> dict[str, int]:
        # Census of live storage (documented as not snapshot-scoped).
        return self._inner.counts()

    def storage_cells(self) -> int:
        return self._inner.storage_cells()

    def known_uids(self) -> list[int]:
        return self._inner.known_uids()

    @property
    def last_uid(self) -> int:
        return self._inner.last_uid

    def find_pathways(self, program: "MatchProgram", scope: TimeScope) -> "list[Pathway]":
        """Generic traversal over *this* store: every element read the
        traversal issues flows back through the pin rewrite above."""
        self._check_deadline()
        from repro.plan.traverse import evaluate_program

        return evaluate_program(self, program, scope)

    # -- version pinning ---------------------------------------------------

    @property
    def data_version(self) -> int:
        return self._pinned_version

    def bump_data_version(self) -> None:
        raise StorageError("read snapshot is immutable")

    def restore_data_version(self, version: int) -> None:
        raise StorageError("read snapshot is immutable")

    # -- write path: rejected ---------------------------------------------

    def _reject_write(self) -> StorageError:
        return StorageError(
            f"store {self.name!r} is pinned at {self.as_of}: snapshots are read-only"
        )

    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
    ) -> int:
        raise self._reject_write()

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
    ) -> int:
        raise self._reject_write()

    def update_element(self, uid: int, changes: Mapping[str, Any]) -> None:
        raise self._reject_write()

    def delete_element(self, uid: int) -> None:
        raise self._reject_write()

    def bulk(self):
        raise self._reject_write()

    def __getattr__(self, name: str) -> Any:
        # Read-only extras (temporal_index_enabled, degree, ...) fall
        # through to the wrapped store.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)


class WriteGate:
    """Single-writer commit path plus the registry of open read pins.

    Writers serialize on a re-entrant lock (``connect`` and ``load`` issue
    nested writes).  Each commit consults the open-pin registry: if any
    snapshot is pinned at or after the clock's next stamp, the clock is
    pushed past the newest pin so the commit's rows stay invisible to
    every open snapshot.  With no pins open the clock is left untouched —
    sequential single-threaded use (and every pinned-clock test) sees
    timestamps exactly as before this subsystem existed.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None):
        self._lock = threading.RLock()
        self._open_pins: dict[float, int] = {}
        self._metrics = metrics
        self.commits = 0

    # -- pin registry ------------------------------------------------------

    def pin(
        self,
        stores: Iterable[GraphStore],
        deadline: float | None = None,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> "SnapshotView | None":
        """Atomically capture ``(as_of, data_version)`` for every
        snapshot-capable store; ``None`` when there is none.

        Taken under the commit lock, so a pin never observes a half-applied
        commit: either all of a commit's rows are before the pin or none
        are.
        """
        with self._lock:
            pins: dict[int, SnapshotPin] = {}
            for store in stores:
                if store.supports_snapshots:
                    pins[id(store)] = SnapshotPin(store.clock.now(), store.data_version)
            if not pins:
                return None
            high = max(pin.as_of for pin in pins.values())
            self._open_pins[high] = self._open_pins.get(high, 0) + 1
        if self._metrics is not None:
            self._metrics.event("concurrency.snapshot.open")
        return SnapshotView(self, pins, high, deadline, monotonic)

    def _release(self, as_of: float) -> None:
        with self._lock:
            count = self._open_pins.get(as_of, 0)
            if count <= 1:
                self._open_pins.pop(as_of, None)
            else:
                self._open_pins[as_of] = count - 1
        if self._metrics is not None:
            self._metrics.event("concurrency.snapshot.close")

    def open_pins(self) -> int:
        with self._lock:
            return sum(self._open_pins.values())

    # -- commit path -------------------------------------------------------

    @contextmanager
    def commit(self, clock: TransactionClock) -> Iterator[None]:
        """Serialize one mutation and keep it invisible to open snapshots."""
        with self._lock:
            if self._open_pins:
                clock.ensure_after(max(self._open_pins))
            yield
            self.commits += 1
        if self._metrics is not None:
            self._metrics.event("concurrency.commits")


class SnapshotView:
    """The per-store pin map one snapshot holds; threaded through the
    executor so evaluation reads route through :class:`SnapshotStore`."""

    __slots__ = ("_gate", "_pins", "_registered", "deadline", "monotonic", "_released")

    def __init__(
        self,
        gate: WriteGate,
        pins: dict[int, SnapshotPin],
        registered: float,
        deadline: float | None = None,
        monotonic: Callable[[], float] = time.monotonic,
    ):
        self._gate = gate
        self._pins = pins
        self._registered = registered
        self.deadline = deadline
        self.monotonic = monotonic
        self._released = False

    def arm_deadline(self) -> float | None:
        """An absolute deadline for one evaluation starting now.

        The view stores a *duration* so a long-held snapshot budgets each
        request afresh instead of dying ``deadline`` seconds after it was
        opened.
        """
        if self.deadline is None:
            return None
        return self.monotonic() + self.deadline

    def pin_for(self, store: GraphStore) -> SnapshotPin | None:
        """The pin captured for *store* (None → read it live)."""
        return self._pins.get(id(store))

    def wrap(self, store: GraphStore) -> GraphStore:
        """*store* pinned at its captured instant (or live when unpinned)."""
        pin = self._pins.get(id(store))
        if pin is None:
            return store
        return SnapshotStore(
            store,
            pin.as_of,
            pin.data_version,
            deadline_at=self.arm_deadline(),
            monotonic=self.monotonic,
        )

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._gate._release(self._registered)

    @property
    def released(self) -> bool:
        return self._released


class ReadSnapshot:
    """A consistent read handle over a :class:`~repro.core.database.NepalDB`.

    Any number of threads may run :meth:`query`/:meth:`find_paths` against
    the same handle concurrently; all of them observe the database exactly
    as it stood when the snapshot was taken, with a frozen
    :attr:`data_version`, regardless of concurrent commits.  Close the
    handle (or use it as a context manager) so the commit gate can stop
    reserving transaction timestamps for it.
    """

    def __init__(self, db: "NepalDB", view: SnapshotView):
        self._db = db
        self._view = view
        self._closed = False
        pin = view.pin_for(db.store)
        if pin is None:
            raise NepalError(
                f"default store {db.store.name!r} does not support snapshots"
            )
        self.as_of = pin.as_of
        self.data_version = pin.data_version
        self._store: GraphStore | None = None

    @property
    def view(self) -> SnapshotView:
        return self._view

    @property
    def store(self) -> GraphStore:
        """The default store pinned at this snapshot (for direct reads)."""
        self._ensure_open()
        if self._store is None:
            self._store = self._view.wrap(self._db.store)
        return self._store

    def _ensure_open(self) -> None:
        if self._closed:
            raise NepalError("read snapshot is closed")

    def query(self, text: str, trace=None):
        """Execute an NPQL query against the pinned view.

        *trace* (a fresh :class:`~repro.stats.tracing.TraceContext`)
        records the execution's span tree without changing its result.
        ``EXPLAIN [ANALYZE]`` prefixes work here too, evaluated against
        the pinned view.
        """
        self._ensure_open()
        db = self._db
        plan = db._maybe_explain(text, snapshot=self._view, trace=trace)
        if plan is not None:
            return plan
        trace, owns_trace = db._sampled_trace(trace)
        started = time.perf_counter() if db.slow_query_log is not None else 0.0
        result = db.executor().execute(text, snapshot=self._view, trace=trace)
        db._record_slow(text, started, result, trace, owns_trace)
        return result

    def find_paths(self, rpe_text: str, at=None, between=None, store: str | None = None):
        """Pathway lookup against the pinned view (see ``NepalDB.find_paths``)."""
        self._ensure_open()
        kwargs = {} if store is None else {"store": store}
        return self._db.find_paths(
            rpe_text, at=at, between=between, snapshot=self, **kwargs
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._view.release()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ReadSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ReadSnapshot(as_of={self.as_of!r}, "
            f"data_version={self.data_version}, {state})"
        )
