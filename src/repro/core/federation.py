"""Federated querying over multiple inventories (Sections 1 and 3.1).

"It may be impractical to assume that the complete network inventory and
topology is stored in a single unified database" — a :class:`Federation`
collects independently owned stores (possibly on different backends with
different schemas) and executes NPQL queries whose range variables name
their store: ``From PATHS@cloud P, PATHS@legacy Q``.  Joins between
variables happen in the Python layer, shipping endpoint sets between
backends exactly as the paper's generated programs do.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.resilience import ResiliencePolicy
from repro.errors import FederationError
from repro.plan.executor import QueryExecutor
from repro.plan.planner import PlannerOptions
from repro.query.ast import Query
from repro.query.results import QueryResult
from repro.stats.metrics import MetricsRegistry
from repro.storage.base import GraphStore


class Federation:
    """A named collection of stores with one designated default.

    ``resilience`` applies a retry/breaker policy to every member backend;
    ``allow_partial`` lets federated queries degrade (dropping the range
    variables of an unavailable backend, with warnings) instead of raising
    :class:`~repro.errors.FederationError`.
    """

    def __init__(
        self,
        stores: Mapping[str, GraphStore],
        default: str | None = None,
        planner_options: PlannerOptions | None = None,
        resilience: ResiliencePolicy | None = None,
        allow_partial: bool = False,
    ):
        if not stores:
            raise FederationError("a federation needs at least one store")
        self._stores = dict(stores)
        self._default = default or next(iter(self._stores))
        if self._default not in self._stores:
            raise FederationError(f"default store {self._default!r} not in federation")
        self._executor = QueryExecutor(
            self._stores,
            self._default,
            planner_options or PlannerOptions(),
            resilience=resilience,
            allow_partial=allow_partial,
        )

    @property
    def metrics(self) -> MetricsRegistry:
        """Counters and timings of the federation's executor (retries,
        breaker trips and degradations land here)."""
        return self._executor.metrics

    @property
    def default_store(self) -> GraphStore:
        """The store unqualified ``PATHS`` variables use."""
        return self._stores[self._default]

    def store(self, name: str) -> GraphStore:
        """Look up a member store by name."""
        try:
            return self._stores[name]
        except KeyError:
            raise FederationError(f"unknown store {name!r}") from None

    def names(self) -> list[str]:
        """Member store names, sorted."""
        return sorted(self._stores)

    def define_view(self, name: str, rpe_text: str) -> None:
        """Register a named pathway view for every member store."""
        self._executor.define_view(name, rpe_text)

    def query(self, query: Query | str) -> QueryResult:
        """Execute an NPQL query across the federation."""
        return self._executor.execute(query)

    def explain(self, query: Query | str) -> str:
        """Per-variable operator plans, annotated with their stores."""
        return self._executor.explain(query)

    def invalidate_statistics(self) -> None:
        """Drop cached cardinalities after bulk loads."""
        self._executor.invalidate_statistics()

    def describe(self) -> str:
        """A one-line-per-store census."""
        lines = [f"federation (default: {self._default})"]
        for name in self.names():
            lines.append(f"  [{name}] {self._stores[name].describe()}")
        return "\n".join(lines)
