"""``NepalDB`` — the user-facing database object.

Bundles a schema, one or more backends, the planner and the query executor
behind a small API:

>>> from repro import NepalDB
>>> db = NepalDB()                        # built-in network schema, in-memory
>>> host = db.insert_node("Host", {"name": "server-1"})
>>> result = db.query("Retrieve P From PATHS P Where P MATCHES Host()")
>>> len(result)
1

Backends: ``backend="memory"`` (default) uses the property-graph engine,
``backend="relational"`` the SQL-generating engine on SQLite.  Additional
stores can be attached for federated queries (``From PATHS@legacy P``).
"""

from __future__ import annotations

import re
import time
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.concurrency import ReadSnapshot, WriteGate
from repro.core.resilience import ResiliencePolicy
from repro.errors import FederationError, NepalError
from repro.model.pathway import Pathway
from repro.plan.cache import PlanCache
from repro.plan.executor import QueryExecutor
from repro.plan.planner import Planner, PlannerOptions
from repro.query.ast import Query
from repro.query.results import QueryResult
from repro.query.temporal_agg import PathEvolution, path_evolution
from repro.query.results import ResultRow
from repro.schema.builtin import build_network_schema
from repro.schema.registry import Schema
from repro.stats.metrics import MetricsRegistry
from repro.stats.tracing import SlowQueryLog, TraceContext
from repro.storage.base import GraphStore, TimeScope
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import Interval, parse_timestamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.plan.explain import ExplainAnalysis

DEFAULT_STORE_NAME = "default"

#: ``EXPLAIN [ANALYZE] <query>`` prefix on the textual query path.  NPQL
#: statements start with Select/Retrieve/AT, so the keyword is unambiguous.
_EXPLAIN_PREFIX = re.compile(r"\s*explain(?P<analyze>\s+analyze)?\s+", re.IGNORECASE)


def _plan_result(text: str) -> QueryResult:
    """A plan rendering as a one-column result set (one row per line)."""
    return QueryResult(("plan",), [ResultRow(values=(line,)) for line in text.splitlines()])


def _build_store(
    backend: str,
    schema: Schema,
    clock: TransactionClock | None,
    name: str,
    metrics: MetricsRegistry | None = None,
) -> GraphStore:
    if backend == "memory":
        from repro.storage.memgraph.store import MemGraphStore

        return MemGraphStore(schema, clock=clock, name=name, metrics=metrics)
    if backend == "relational":
        from repro.storage.relational.store import RelationalStore

        return RelationalStore(schema, clock=clock, name=name)
    raise NepalError(f"unknown backend {backend!r} (expected 'memory' or 'relational')")


class NepalDB:
    """A Nepal database instance."""

    def __init__(
        self,
        schema: Schema | None = None,
        backend: str = "memory",
        clock: TransactionClock | None = None,
        planner_options: PlannerOptions | None = None,
        resilience: ResiliencePolicy | None = None,
        allow_partial: bool = False,
        data_dir: str | None = None,
        durable_sync: str = "commit",
    ):
        self.schema = schema or build_network_schema()
        self.clock = clock or TransactionClock()
        self._planner_options = planner_options or PlannerOptions()
        self._metrics = MetricsRegistry()
        if data_dir is not None:
            if backend != "memory":
                raise NepalError(
                    "data_dir journals the in-memory backend; the relational "
                    "backend is already durable through its database file "
                    "(pass path= to RelationalStore instead)"
                )
            from repro.storage.durable import DurableStore
            from repro.storage.memgraph.store import MemGraphStore

            inner = MemGraphStore(
                self.schema,
                clock=self.clock,
                name=DEFAULT_STORE_NAME,
                metrics=self._metrics,
            )
            default_store: GraphStore = DurableStore(
                inner, data_dir, metrics=self._metrics, sync=durable_sync
            )
        else:
            default_store = _build_store(
                backend, self.schema, self.clock, DEFAULT_STORE_NAME, self._metrics
            )
        self._stores: dict[str, GraphStore] = {DEFAULT_STORE_NAME: default_store}
        self._apply_batch_option(default_store)
        self._plan_cache = PlanCache(metrics=self._metrics)
        self._resilience = resilience
        self._allow_partial = allow_partial
        self._executor: QueryExecutor | None = None
        self._gate = WriteGate(metrics=self._metrics)
        self._slow_log: SlowQueryLog | None = None

    # ------------------------------------------------------------------
    # stores & federation
    # ------------------------------------------------------------------

    @property
    def store(self) -> GraphStore:
        """The default backend."""
        return self._stores[DEFAULT_STORE_NAME]

    def _apply_batch_option(self, store: GraphStore) -> None:
        """Propagate ``PlannerOptions.batch_enabled`` onto a store's engine.

        The flag lives on the innermost store that actually has a batch
        engine — setting it through a delegating wrapper's ``__getattr__``
        fallthrough would shadow it on the wrapper instead — so unwrap the
        ``_inner`` chain.  Backends without the flag keep their row path.
        """
        if self._planner_options.batch_enabled:
            return
        target: object = store
        while target is not None:
            if "batch_enabled" in vars(target):
                target.batch_enabled = False
                return
            target = getattr(target, "_inner", None)

    def attach_store(self, name: str, store: GraphStore) -> None:
        """Register an additional backend for ``PATHS@name`` variables."""
        if name in self._stores:
            raise FederationError(f"store name {name!r} already attached")
        self._stores[name] = store
        self._apply_batch_option(store)
        self._executor = None

    def stores(self) -> dict[str, GraphStore]:
        """All attached stores by catalog name."""
        return dict(self._stores)

    def executor(self) -> QueryExecutor:
        """The (lazily built) query executor over the attached stores.

        The plan cache and metrics outlive executor rebuilds (a rebuild
        happens when a store is attached): cache keys embed the store,
        its schema version and the statistics epoch, so surviving entries
        stay valid for the stores that didn't change.
        """
        if self._executor is None:
            self._executor = QueryExecutor(
                self._stores,
                DEFAULT_STORE_NAME,
                self._planner_options,
                plan_cache=self._plan_cache,
                metrics=self._metrics,
                resilience=self._resilience,
                allow_partial=self._allow_partial,
            )
        return self._executor

    # ------------------------------------------------------------------
    # durability lifecycle
    # ------------------------------------------------------------------

    def _durable_store(self):
        """The DurableStore in the default store's decorator chain (or None).

        Chaos injection may wrap the durable store, so walk ``.inner``."""
        from repro.storage.durable import DurableStore

        store = self._stores[DEFAULT_STORE_NAME]
        while store is not None:
            if isinstance(store, DurableStore):
                return store
            store = getattr(store, "inner", None)
        return None

    def durable_store(self):
        """Public accessor for :meth:`_durable_store` (replication layer)."""
        return self._durable_store()

    @property
    def recovery_report(self):
        """What crash recovery found at startup (None without data_dir)."""
        durable = self._durable_store()
        return durable.recovery if durable is not None else None

    def checkpoint(self):
        """Compact the full history to disk and truncate the journal.

        Requires the database to have been opened with ``data_dir``.
        """
        durable = self._durable_store()
        if durable is None:
            raise NepalError(
                "checkpoint requires a durable store (open with data_dir=...)"
            )
        return durable.checkpoint()

    def close(self) -> None:
        """Flush and close the durability journal (no-op otherwise)."""
        durable = self._durable_store()
        if durable is not None:
            durable.close()

    def __enter__(self) -> "NepalDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # resilience & fault injection
    # ------------------------------------------------------------------

    def set_resilience(
        self, policy: ResiliencePolicy | None, allow_partial: bool | None = None
    ) -> None:
        """(Re)configure retry/breaker behaviour for backend calls.

        ``policy=None`` turns the resilience layer off.  ``allow_partial``
        opts federated queries into degraded execution: when a backend
        stays down past the retry budget its range variables are dropped
        and the result carries ``warnings`` naming them, instead of the
        default typed :class:`~repro.errors.FederationError`.
        """
        self._resilience = policy
        if allow_partial is not None:
            self._allow_partial = allow_partial
        self._executor = None

    def inject_faults(
        self, plan: "object | None" = None, store: str = DEFAULT_STORE_NAME
    ):
        """Wrap an attached store in a :class:`FaultInjectingStore`.

        Returns the wrapper (whose ``chaos`` counters and ``heal()`` /
        ``set_hard_down()`` controls drive chaos experiments).  Wrapping is
        idempotent per store name — injecting twice stacks wrappers, so
        callers normally do it once, right after construction or loading.
        """
        from repro.storage.chaos import FaultInjectingStore, FaultPlan

        inner = self._stores[store]
        wrapper = FaultInjectingStore(inner, plan or FaultPlan())
        self._stores[store] = wrapper
        self._executor = None
        return wrapper

    # ------------------------------------------------------------------
    # write path (default store)
    # ------------------------------------------------------------------

    def _dirty(self) -> None:
        if self._executor is not None:
            self._executor.invalidate_statistics()

    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
) -> int:
        """Insert a node into the default store; returns its uid."""
        with self._gate.commit(self.clock):
            uid = self.store.insert_node(class_name, fields, uid=uid)
        self._dirty()
        return uid

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
) -> int:
        """Insert an edge into the default store; returns its uid."""
        with self._gate.commit(self.clock):
            uid = self.store.insert_edge(class_name, source, target, fields, uid=uid)
        self._dirty()
        return uid

    def connect(
        self,
        class_name: str,
        left: int,
        right: int,
        fields: Mapping[str, Any] | None = None,
    ) -> tuple[int, ...]:
        """Insert a connectivity edge, reciprocally when the class is symmetric."""
        edge_class = self.schema.edge_class(class_name)
        with self._gate.commit(self.clock):
            if edge_class.symmetric:
                uids = self.store.insert_symmetric_edge(class_name, left, right, fields)
            else:
                uids = (self.store.insert_edge(class_name, left, right, fields),)
        self._dirty()
        return uids

    def update(self, uid: int, changes: Mapping[str, Any]) -> None:
        """Apply field changes (``None`` removes a field); versions history."""
        with self._gate.commit(self.clock):
            self.store.update_element(uid, changes)
        self._dirty()

    def delete(self, uid: int) -> None:
        """Logically delete an element (nodes cascade to incident edges)."""
        with self._gate.commit(self.clock):
            self.store.delete_element(uid)
        self._dirty()

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------

    def define_view(self, name: str, rpe_text: str) -> None:
        """Register a named pathway view usable as a From source (§3.4).

        >>> db.define_view("PLACEMENTS", "VM()->OnServer()->Host()")
        >>> db.query("Retrieve P From PLACEMENTS P")  # doctest: +SKIP
        """
        self.executor().define_view(name, rpe_text)

    def query(self, query: Query | str, trace: TraceContext | None = None) -> QueryResult:
        """Execute an NPQL query (see :mod:`repro.query`).

        Each call pins an ephemeral read snapshot for its duration, so a
        query racing a concurrent writer still evaluates every range
        variable against one consistent (as-of, data-version) view.  For
        a view that outlives a single query, take :meth:`snapshot`.

        Textual queries may be prefixed ``EXPLAIN`` (render the plan, no
        execution) or ``EXPLAIN ANALYZE`` (execute under tracing, render
        plans with actual cardinalities); both return a one-column
        ``plan`` result.  Passing a fresh :class:`TraceContext` as *trace*
        records the span tree of an ordinary execution without changing
        its result.
        """
        plan = self._maybe_explain(query, trace=trace)
        if plan is not None:
            return plan
        trace, owns_trace = self._sampled_trace(trace)
        started = time.perf_counter() if self._slow_log is not None else 0.0
        view = self._gate.pin(self._stores.values())
        try:
            if view is None:
                result = self.executor().execute(query, trace=trace)
            else:
                result = self.executor().execute(query, snapshot=view, trace=trace)
        finally:
            if view is not None:
                view.release()
        self._record_slow(query, started, result, trace, owns_trace)
        return result

    def _sampled_trace(
        self, trace: TraceContext | None
    ) -> tuple[TraceContext | None, bool]:
        """Apply slow-log trace sampling: (trace to use, did we create it).

        Sampling must be decided *before* execution — a span tree cannot
        be reconstructed after the fact — so every Nth query pays the
        tracing tax on the chance it turns out slow.
        """
        slow_log = self._slow_log
        if slow_log is not None and trace is None and slow_log.wants_trace():
            return TraceContext(label="slow-query-sample"), True
        return trace, False

    def _record_slow(
        self,
        query: Query | str,
        started: float,
        result: QueryResult,
        trace: TraceContext | None,
        owns_trace: bool,
    ) -> None:
        """Feed one finished execution to the slow-query log, if enabled."""
        slow_log = self._slow_log
        if slow_log is None:
            return
        elapsed = time.perf_counter() - started
        text = query if isinstance(query, str) else query.render()
        if slow_log.observe(text, elapsed, len(result.rows), trace):
            self._metrics.event("slowlog.recorded")
        elif owns_trace:
            self._metrics.event("slowlog.sampled_fast")

    def _maybe_explain(
        self,
        query: Query | str,
        snapshot: object | None = None,
        trace: TraceContext | None = None,
    ) -> QueryResult | None:
        """Dispatch a textual ``EXPLAIN [ANALYZE]`` prefix; None otherwise.

        Shared between :meth:`query` and the pinned
        :meth:`~repro.core.concurrency.ReadSnapshot.query` path so EXPLAIN
        works identically over a held snapshot (and hence over HTTP).
        """
        if not isinstance(query, str):
            return None
        prefixed = _EXPLAIN_PREFIX.match(query)
        if prefixed is None:
            return None
        body = query[prefixed.end():]
        if prefixed.group("analyze"):
            if snapshot is not None:
                analysis = self.executor().explain_analyze(
                    body, snapshot=snapshot, trace=trace
                )
            else:
                analysis = self.explain_analyze(body, trace=trace)
            return _plan_result(analysis.render())
        return _plan_result(self.explain(body))

    def snapshot(self, deadline: float | None = None) -> ReadSnapshot:
        """Open a :class:`~repro.core.concurrency.ReadSnapshot`.

        The handle pins (transaction time, data version) for every
        snapshot-capable attached store; any number of threads may query
        it concurrently and all observe the database exactly as it stood
        now, regardless of later commits.  ``deadline`` (seconds) budgets
        each query/find_paths issued through the handle — armed afresh per
        request, so a long-held snapshot keeps serving — raising
        :class:`~repro.errors.QueryDeadlineExceeded` when overrun.
        Close the handle (it is a context manager) when done.
        """
        view = self._gate.pin(self._stores.values(), deadline=deadline)
        if view is None:
            raise NepalError(
                f"no attached store supports snapshots (default backend "
                f"{self.store.name!r} reads live)"
            )
        return ReadSnapshot(self, view)

    @property
    def write_gate(self) -> WriteGate:
        """The single-writer commit gate (open-pin and commit counters)."""
        return self._gate

    def explain(self, query: Query | str, analyze: bool = False) -> str:
        """The per-variable operator plans.

        With ``analyze=True`` the query is executed under tracing and the
        rendering pairs each plan with the rows it actually produced
        (:meth:`explain_analyze` returns the structured form).
        """
        if analyze:
            return self.explain_analyze(query).render()
        return self.executor().explain(query)

    def explain_analyze(
        self, query: Query | str, trace: TraceContext | None = None
    ) -> "ExplainAnalysis":
        """Execute *query* under tracing; estimated vs actual per operator.

        Runs under the same ephemeral snapshot pin as :meth:`query`, so
        the analysis observes exactly what a plain execution would.
        """
        view = self._gate.pin(self._stores.values())
        try:
            return self.executor().explain_analyze(query, snapshot=view, trace=trace)
        finally:
            if view is not None:
                view.release()

    # ------------------------------------------------------------------
    # slow-query log
    # ------------------------------------------------------------------

    @property
    def slow_query_log(self) -> SlowQueryLog | None:
        """The configured slow-query log (None when disabled)."""
        return self._slow_log

    def enable_slow_query_log(
        self,
        threshold: float = 0.25,
        capacity: int = 128,
        trace_every: int = 16,
    ) -> SlowQueryLog:
        """Keep queries slower than *threshold* seconds in a bounded ring.

        Every ``trace_every``-th query (sampling; ``0`` disables capture)
        additionally records its full span tree, so a recurring slow query
        eventually shows up with per-operator detail attached.  Entries
        are JSON-ready dicts via :meth:`slow_queries`.
        """
        self._slow_log = SlowQueryLog(
            threshold=threshold, capacity=capacity, trace_every=trace_every
        )
        return self._slow_log

    def disable_slow_query_log(self) -> None:
        self._slow_log = None

    def slow_queries(self) -> list[dict[str, object]]:
        """Retained slow-query entries, oldest first (empty when disabled)."""
        return self._slow_log.entries() if self._slow_log is not None else []

    def translate(self, query: Query | str) -> str:
        """Generate a standalone Python program for *query* (§3.1)."""
        return self.executor().translate(query)

    def find_paths(
        self,
        rpe: str,
        at: str | float | None = None,
        between: tuple[str | float, str | float] | None = None,
        store: str = DEFAULT_STORE_NAME,
        snapshot: ReadSnapshot | None = None,
    ) -> list[Pathway]:
        """Shortcut: evaluate one RPE and return the matching pathways.

        ``at`` runs a timeslice query, ``between`` a time-range query (the
        returned pathways carry their maximal validity sets).  Compilation
        goes through the same plan cache as full NPQL queries, so repeated
        expressions skip planning entirely.  With *snapshot* (or, absent
        one, an ephemeral per-call pin) evaluation reads are pinned to a
        consistent view; planning always runs against the live store.
        """
        target = self._stores[store]
        executor = self.executor()
        estimator = executor.estimator_for(target)
        if at is not None and between is not None:
            raise NepalError("pass either at= or between=, not both")
        if at is not None:
            scope = TimeScope.at(parse_timestamp(at))
        elif between is not None:
            scope = TimeScope.between(
                parse_timestamp(between[0]), parse_timestamp(between[1])
            )
        else:
            scope = TimeScope.current()
        with self._metrics.timings.measure("cache.key"):
            key = PlanCache.key_for(
                rpe, store, target, estimator, self._planner_options, scope=scope
            )
        with self._metrics.timings.measure("plan"):
            program = self._plan_cache.get_or_compile(
                key,
                lambda: Planner(
                    target.schema,
                    estimator,
                    self._planner_options,
                    nfa_memo=self._plan_cache.nfa_memo,
                ).compile(rpe, scope=scope),
            )
        if snapshot is not None:
            if snapshot.closed:
                raise NepalError("read snapshot is closed")
            view = snapshot.view
            ephemeral = None
        else:
            view = ephemeral = self._gate.pin([target])
        try:
            guarded = executor.evaluation_store(target, view)
            pathways = guarded.find_pathways(program, scope)
            if scope.is_range:
                from repro.temporal.interval import IntervalSet
                from repro.temporal.validity import pathway_validity

                window = IntervalSet([scope.window()])
                kept = []
                for pathway in pathways:
                    validity = pathway_validity(guarded, pathway, program.matcher)
                    if not validity.intersect(window).is_empty():
                        kept.append(pathway.with_validity(validity))
                return kept
            return pathways
        finally:
            if ephemeral is not None:
                ephemeral.release()

    def path_evolution(
        self,
        pathway: Pathway,
        between: tuple[str | float, str | float],
        store: str = DEFAULT_STORE_NAME,
    ) -> PathEvolution:
        """Track how a specific pathway's elements changed over a window."""
        window = Interval(parse_timestamp(between[0]), parse_timestamp(between[1]))
        return path_evolution(self._stores[store], pathway, window)

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------

    def load(self, builder: "Iterable | object") -> None:
        """Load a generated topology (anything with ``apply(store)``)."""
        apply = getattr(builder, "apply", None)
        if apply is None:
            raise NepalError(f"{builder!r} does not provide an apply(store) method")
        with self._gate.commit(self.clock):
            apply(self.store)
        self._dirty()

    def describe(self) -> str:
        """A human-readable census of schema and stores.

        The census reads go through the executor's guarded stores, so a
        flaky backend is retried under the resilience policy instead of
        surfacing an injected fault from ``.stats``.
        """
        executor = self.executor()
        lines = [self.schema.describe()]
        for name, store in self._stores.items():
            lines.append(f"[{name}] {executor.guarded(store).describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # cache observability
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """Counters and per-stage timings for this database's pipeline."""
        return self._metrics

    def cache_stats(self) -> dict[str, object]:
        """A JSON-ready snapshot of cache effectiveness and stage timings.

        Keys: ``plan`` (compiled-program cache, with occupancy), ``parse``,
        ``typecheck`` and ``nfa`` (memo counters), ``events`` (resilience
        retries, breaker trips, degradations, ...), ``timings`` (per
        stage cumulative seconds and call counts), and ``cache.key_ns``
        (cumulative nanoseconds spent building plan-cache keys — the
        interned-key satellite's before/after dial).
        """
        snapshot = self._metrics.snapshot()
        caches = dict(snapshot["caches"])  # type: ignore[arg-type]
        caches["plan"] = self._plan_cache.stats()
        timings = snapshot["timings"]
        key_timing = timings.get("cache.key", {})  # type: ignore[union-attr]
        return {
            **caches,
            "events": snapshot["events"],
            "timings": timings,
            "cache.key_ns": int(round(key_timing.get("seconds", 0.0) * 1e9)),
        }

    def stats(self) -> dict[str, object]:
        """Caches, events and timings in one JSON-ready snapshot.

        A superset of :meth:`cache_stats` for observability tooling; the
        ``events`` map carries the index and join counters of the hot
        path (``index.temporal.*`` hits on historical scans,
        ``executor.join.*`` hash-join vs nested-loop decisions) next to
        the resilience and cache counters.
        """
        return self.cache_stats()

    def clear_plan_cache(self) -> int:
        """Drop every cached compiled plan; returns how many were held.

        Rarely needed — version counters retire stale entries on their
        own — but useful for benchmarking cold planning and after
        in-place schema surgery that bypasses :class:`Schema` methods.
        """
        return self._plan_cache.invalidate()
