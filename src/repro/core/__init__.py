"""The public Nepal facade."""

from repro.core.database import NepalDB
from repro.core.federation import Federation

__all__ = ["Federation", "NepalDB"]
