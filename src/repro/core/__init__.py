"""The public Nepal facade."""

from repro.core.database import NepalDB
from repro.core.federation import Federation
from repro.core.resilience import CircuitBreaker, ResiliencePolicy, ResilientStore

__all__ = [
    "CircuitBreaker",
    "Federation",
    "NepalDB",
    "ResiliencePolicy",
    "ResilientStore",
]
