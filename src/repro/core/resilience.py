"""Resilient backend calls: retry with backoff, deadlines, circuit breakers.

The paper's retargetable architecture lets the range variables of one query
live in *different* backends, with the Nepal layer shipping partial results
between them (§3.1).  In production those backends stall, flake and fail
mid-query.  This module is the policy layer that keeps federated execution
alive through that:

* :class:`ResiliencePolicy` — declarative knobs: attempt budget, exponential
  backoff with bounded jitter, a per-call deadline, breaker thresholds.
  Time sources (``sleep``/``monotonic``) are injectable so tests run on a
  fake clock with zero real sleeping.
* :class:`CircuitBreaker` — per-backend closed → open → half-open state
  machine.  After ``threshold`` consecutive failures the breaker opens and
  calls fail fast (:class:`~repro.errors.CircuitOpenError`) without touching
  the backend; after ``reset_after`` seconds one trial call is let through.
* :class:`ResilientStore` — a :class:`~repro.storage.base.GraphStore` proxy
  applying the policy to every backend method.  Reads are pure, so a
  retried read is always safe; writes are retried under the at-most-once
  assumption that a failed call applied nothing (which holds for the fault
  injector, whose faults fire before delegation).

Only :class:`~repro.errors.BackendUnavailable` is retried.  Logic errors
(validation, unknown elements, schema violations) propagate immediately —
retrying them would just repeat the failure.

All retries, breaker trips and fast-fails are counted in the owning
:class:`~repro.stats.metrics.MetricsRegistry` under ``resilience.*`` event
names, surfaced via ``NepalDB.cache_stats()`` and the CLI's ``.stats``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.errors import BackendUnavailable, CircuitOpenError, DeadlineExceededError
from repro.storage.base import GraphStore, TimeScope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.elements import EdgeRecord, ElementRecord
    from repro.model.pathway import Pathway
    from repro.plan.program import MatchProgram
    from repro.rpe.ast import Atom
    from repro.schema.classes import EdgeClass
    from repro.stats.metrics import MetricsRegistry
    from repro.temporal.interval import Interval


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard to try before declaring a backend down.

    ``max_attempts`` bounds attempts per logical call; between failed
    attempts the caller sleeps ``base_delay * multiplier**n`` seconds
    (capped at ``max_delay``), jittered by ``±jitter`` as a fraction of the
    delay.  ``deadline`` caps the total elapsed time (including the pending
    sleep) a single logical call may consume; ``None`` disables it.

    ``breaker_threshold`` consecutive failures open the backend's circuit
    breaker; after ``breaker_reset_after`` seconds it goes half-open and
    admits one trial call.

    ``sleep`` and ``monotonic`` exist for tests (fake clocks, recorded
    sleep sequences); ``seed`` makes the jitter deterministic.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    deadline: float | None = 10.0
    breaker_threshold: int = 5
    breaker_reset_after: float = 30.0
    seed: int | None = None
    sleep: Callable[[float], None] = time.sleep
    monotonic: Callable[[], float] = time.monotonic

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retrying after failed attempt *attempt* (1-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            span = self.jitter * delay
            delay = delay - span + 2.0 * span * rng.random()
        return max(0.0, delay)

    def breaker(self) -> "CircuitBreaker":
        """A fresh circuit breaker configured by this policy."""
        return CircuitBreaker(
            threshold=self.breaker_threshold,
            reset_after=self.breaker_reset_after,
            clock=self.monotonic,
        )


class CircuitBreaker:
    """Per-backend closed / open / half-open failure gate."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 5,
        reset_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.reset_after = reset_after
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state; an expired open period reads as half-open."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits the trial call.)"""
        return self.state != self.OPEN

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> bool:
        """Note a failure; returns True when this failure tripped the breaker."""
        if self.state == self.HALF_OPEN:
            self._trip()
            return True
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.threshold:
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self.trips += 1


class ResilientStore(GraphStore):
    """Applies a :class:`ResiliencePolicy` to every call on a wrapped store."""

    def __init__(
        self,
        inner: GraphStore,
        policy: ResiliencePolicy,
        breaker: CircuitBreaker | None = None,
        metrics: "MetricsRegistry | None" = None,
        label: str | None = None,
    ):
        super().__init__(inner.schema, clock=inner.clock, name=inner.name)
        self._inner = inner
        self._policy = policy
        self._label = label or inner.name
        self._breaker = breaker or policy.breaker()
        self._metrics = metrics
        self._rng = random.Random(policy.seed)

    @property
    def inner(self) -> GraphStore:
        """The wrapped store."""
        return self._inner

    @property
    def breaker(self) -> CircuitBreaker:
        """This backend's circuit breaker."""
        return self._breaker

    @property
    def data_version(self) -> int:
        return self._inner.data_version

    def bump_data_version(self) -> None:
        self._inner.bump_data_version()

    @property
    def supports_snapshots(self) -> bool:
        return self._inner.supports_snapshots

    # ------------------------------------------------------------------

    def _event(self, kind: str) -> None:
        if self._metrics is not None:
            self._metrics.event(f"resilience.{kind}.{self._label}")

    def _call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        policy = self._policy
        if not self._breaker.allow():
            self._event("fastfail")
            raise CircuitOpenError(
                f"backend {self._label!r}: circuit breaker is open",
                store=self._label,
            )
        started = policy.monotonic()
        attempt = 0
        while True:
            attempt += 1
            try:
                result = fn(*args, **kwargs)
            except BackendUnavailable as error:
                if self._breaker.record_failure():
                    self._event("breaker_trip")
                if attempt >= policy.max_attempts:
                    self._event("exhausted")
                    raise BackendUnavailable(
                        f"backend {self._label!r} still unavailable after "
                        f"{attempt} attempts: {error}",
                        store=self._label,
                    ) from error
                delay = policy.delay_for(attempt, self._rng)
                elapsed = policy.monotonic() - started
                if policy.deadline is not None and elapsed + delay > policy.deadline:
                    self._event("deadline")
                    raise DeadlineExceededError(
                        f"backend {self._label!r}: retrying would exceed the "
                        f"{policy.deadline}s call deadline "
                        f"(elapsed {elapsed:.3f}s after {attempt} attempts)",
                        store=self._label,
                    ) from error
                if not self._breaker.allow():
                    self._event("fastfail")
                    raise CircuitOpenError(
                        f"backend {self._label!r}: circuit breaker opened "
                        f"after {attempt} attempts",
                        store=self._label,
                    ) from error
                self._event("retry")
                policy.sleep(delay)
            else:
                self._breaker.record_success()
                return result

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
    ) -> int:
        return self._call(self._inner.insert_node, class_name, fields, uid=uid)

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
    ) -> int:
        return self._call(
            self._inner.insert_edge, class_name, source, target, fields, uid=uid
        )

    def update_element(self, uid: int, changes: Mapping[str, Any]) -> None:
        self._call(self._inner.update_element, uid, changes)

    def delete_element(self, uid: int) -> None:
        self._call(self._inner.delete_element, uid)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def scan_atom(self, atom: "Atom", scope: TimeScope) -> "list[ElementRecord]":
        return self._call(self._inner.scan_atom, atom, scope)

    def get_element(self, uid: int, scope: TimeScope) -> "ElementRecord | None":
        return self._call(self._inner.get_element, uid, scope)

    def get_many(
        self, uids: "Sequence[int]", scope: TimeScope
    ) -> "dict[int, ElementRecord]":
        return self._call(self._inner.get_many, uids, scope)

    def versions(self, uid: int, window: "Interval") -> "list[ElementRecord]":
        return self._call(self._inner.versions, uid, window)

    def out_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "list[EdgeRecord]":
        return self._call(self._inner.out_edges, node_uid, scope, classes)

    def in_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "list[EdgeRecord]":
        return self._call(self._inner.in_edges, node_uid, scope, classes)

    # ------------------------------------------------------------------
    # statistics & pathways
    # ------------------------------------------------------------------

    def out_edges_many(
        self,
        node_uids: "Sequence[int]",
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "dict[int, list[EdgeRecord]]":
        return self._call(self._inner.out_edges_many, node_uids, scope, classes)

    def in_edges_many(
        self,
        node_uids: "Sequence[int]",
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "dict[int, list[EdgeRecord]]":
        return self._call(self._inner.in_edges_many, node_uids, scope, classes)

    def class_count(self, class_name: str) -> int:
        return self._call(self._inner.class_count, class_name)

    def class_count_at(self, class_name: str, scope: TimeScope) -> int | None:
        return self._call(self._inner.class_count_at, class_name, scope)

    def counts(self) -> dict[str, int]:
        return self._call(self._inner.counts)

    def storage_cells(self) -> int:
        return self._call(self._inner.storage_cells)

    def find_pathways(
        self, program: "MatchProgram", scope: TimeScope
    ) -> "list[Pathway]":
        # The whole evaluation is the retry unit: a transient fault anywhere
        # inside the backend's traversal re-runs it, and reads being pure,
        # the re-run yields the same pathways.
        return self._call(self._inner.find_pathways, program, scope)

    # ------------------------------------------------------------------
    # convenience delegation
    # ------------------------------------------------------------------

    def bulk(self):
        return self._inner.bulk()

    def bulk_insert_nodes(
        self, rows: "Iterable[tuple[str, Mapping[str, Any]]]"
    ) -> list[int]:
        return [self.insert_node(class_name, fields) for class_name, fields in rows]
