"""Bulk loading of externally supplied graphs.

The paper's legacy topology "was supplied as a collection of nodes and
edges with type_indicators — the class(es) of the node or edge".  This
module loads such flat dumps, optionally mapping type indicators onto
schema classes (the single-class versus 66-subclass experiment of §6 is a
choice of ``class_mapper``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ValidationError
from repro.storage.base import GraphStore


@dataclass(frozen=True)
class RawNode:
    """A node as delivered by a legacy feed."""

    uid: int
    type_indicators: tuple[str, ...] = ()
    fields: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RawEdge:
    """An edge as delivered by a legacy feed (single type indicator)."""

    uid: int
    source: int
    target: int
    type_indicator: str = ""
    fields: Mapping[str, Any] = field(default_factory=dict)


#: Maps a type indicator (or tuple of them) to a schema class name.
ClassMapper = Callable[[str], str]


@dataclass(frozen=True)
class BulkLoadReport:
    nodes: int
    edges: int
    skipped_edges: int
    skipped_edge_uids: tuple[int, ...] = ()
    """The uids of skipped dangling edges, so a broken feed is debuggable
    (which records to chase, not just how many)."""


def load_raw_graph(
    store: GraphStore,
    nodes: Iterable[RawNode],
    edges: Iterable[RawEdge],
    node_class: str = "Node",
    edge_mapper: ClassMapper | None = None,
    node_mapper: Callable[[RawNode], str] | None = None,
    strict: bool = False,
) -> BulkLoadReport:
    """Load a raw dump into *store*.

    ``edge_mapper`` maps each edge's type indicator to an edge class name —
    pass ``None`` to load everything under a single generic edge class (the
    initial legacy load of §6), or a real mapping for the refined
    66-subclass load.  ``node_mapper`` does the same for nodes (default: the
    single *node_class*).  Edges whose endpoints were not loaded are skipped
    and reported with their uids — or, under ``strict=True``, abort the
    load with a :class:`~repro.errors.ValidationError` naming the edge (for
    feeds that are supposed to be referentially closed).
    """
    node_count = edge_count = skipped = 0
    skipped_uids: list[int] = []
    loaded: set[int] = set()
    with store.bulk():
        for node in nodes:
            class_name = node_mapper(node) if node_mapper else node_class
            fields = dict(node.fields)
            if node.type_indicators and store.schema.resolve(class_name).has_field("kind"):
                fields.setdefault("kind", ",".join(node.type_indicators))
            store.insert_node(class_name, fields, uid=node.uid)
            loaded.add(node.uid)
            node_count += 1
        for edge in edges:
            if edge.source not in loaded or edge.target not in loaded:
                if strict:
                    missing = [
                        end for end in (edge.source, edge.target) if end not in loaded
                    ]
                    raise ValidationError(
                        f"edge {edge.uid} ({edge.type_indicator or 'untyped'}) "
                        f"references unloaded node(s) {missing}"
                    )
                skipped += 1
                skipped_uids.append(edge.uid)
                continue
            class_name = (
                edge_mapper(edge.type_indicator) if edge_mapper else "GenericEdge"
            )
            fields = dict(edge.fields)
            if edge.type_indicator and store.schema.resolve(class_name).has_field("kind"):
                fields.setdefault("kind", edge.type_indicator)
            store.insert_edge(
                class_name, edge.source, edge.target, fields, uid=edge.uid
            )
            edge_count += 1
    return BulkLoadReport(
        nodes=node_count, edges=edge_count, skipped_edges=skipped,
        skipped_edge_uids=tuple(skipped_uids),
    )
