"""Write-ahead log framing and temporal-history compaction.

The durability layer (:mod:`repro.storage.durable`) journals every mutation
as a :class:`WalRecord` before applying it.  This module owns the on-disk
format and the two codecs around it:

* **framing** — each record is serialized as compact JSON and written as
  ``[length u32][crc32 u32][payload]`` (network byte order).  A reader
  verifies both fields, so a torn final record — the normal residue of a
  crash mid-write — is detected and tolerated rather than misparsed;
* **compaction** — :func:`compact_history` renders a store's *entire*
  temporal state (every version chain, not just the current snapshot) as
  the minimal synthetic op stream that reproduces it.  Checkpoints are
  just a compacted stream written atomically, so recovery replays
  checkpoints and live journals through one code path and validity
  intervals come out bit-identical.

Record vocabulary: ``insert_node`` / ``insert_edge`` / ``update`` /
``delete`` / ``reinsert`` carry uid, class, fields and the transaction
timestamp; ``bulk_begin`` / ``bulk_commit`` bracket an atomic batch
(records after an unmatched ``bulk_begin`` are discarded at recovery);
``checkpoint`` is the trailing manifest of a checkpoint file, recording
the data version, the last journaled LSN covered by the baseline, and the
uid-allocator high-water mark.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import StorageError
from repro.temporal.interval import FOREVER, Interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.base import GraphStore

_FRAME = struct.Struct("!II")
"""Per-record header: payload length and CRC32 of the payload."""

#: Mutation ops (journaled by the durable store and replayed at recovery).
OP_INSERT_NODE = "insert_node"
OP_INSERT_EDGE = "insert_edge"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_REINSERT = "reinsert"
#: Batch framing ops.
OP_BULK_BEGIN = "bulk_begin"
OP_BULK_COMMIT = "bulk_commit"
#: Checkpoint manifest (trailing record of a checkpoint file).
OP_CHECKPOINT = "checkpoint"
#: Epoch fence: stamped into the WAL when a node is promoted to primary.
#: A node whose highest journaled epoch is lower than the cluster's is a
#: revived stale primary and must refuse writes (see repro.replication).
OP_EPOCH = "epoch"

MUTATION_OPS = frozenset(
    {OP_INSERT_NODE, OP_INSERT_EDGE, OP_UPDATE, OP_DELETE, OP_REINSERT}
)


class WalCorruptionError(StorageError):
    """A WAL frame failed validation somewhere other than the torn tail."""


@dataclass(frozen=True)
class WalRecord:
    """One journaled operation (or framing/manifest marker).

    ``ts`` is the transaction timestamp the mutation was (or must be)
    stamped with — replay pins the store clock to it so version chains are
    reproduced with identical validity intervals.  ``dv`` is the store's
    ``data_version`` *before* the op was applied; recovery uses it to
    restore the counter monotonically.  ``last_lsn`` / ``last_uid`` are
    only set on ``checkpoint`` manifests.  ``epoch`` is set on ``epoch``
    fence records and on checkpoint manifests written by a replicated
    node.
    """

    lsn: int
    op: str
    ts: float | None = None
    uid: int | None = None
    cls: str | None = None
    fields: Mapping[str, Any] | None = None
    source: int | None = None
    target: int | None = None
    dv: int | None = None
    last_lsn: int | None = None
    last_uid: int | None = None
    epoch: int | None = None

    def to_payload(self) -> bytes:
        document: dict[str, Any] = {"lsn": self.lsn, "op": self.op}
        for key in ("ts", "uid", "cls", "fields", "source", "target", "dv",
                    "last_lsn", "last_uid", "epoch"):
            value = getattr(self, key)
            if value is not None:
                document[key] = value
        return json.dumps(document, separators=(",", ":"), sort_keys=True).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        document = json.loads(payload.decode("utf-8"))
        return cls(
            lsn=int(document["lsn"]),
            op=str(document["op"]),
            ts=document.get("ts"),
            uid=document.get("uid"),
            cls=document.get("cls"),
            fields=document.get("fields"),
            source=document.get("source"),
            target=document.get("target"),
            dv=document.get("dv"),
            last_lsn=document.get("last_lsn"),
            last_uid=document.get("last_uid"),
            epoch=document.get("epoch"),
        )


def encode_frame(record: WalRecord) -> bytes:
    payload = record.to_payload()
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame parser for byte streams that arrive in chunks.

    Log shipping moves the WAL in arbitrarily sized chunks, so a frame may
    be split anywhere — header, payload, even mid-CRC.  The decoder buffers
    the undecodable tail between :meth:`feed` calls and yields each record
    exactly once, as soon as its last byte arrives.  Unlike the torn *tail*
    of a crashed journal, a CRC mismatch or undecodable payload mid-stream
    is corruption (the primary only ships bytes it committed) and raises
    :class:`WalCorruptionError`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.consumed = 0
        """Bytes decoded into complete records so far (stream offset of the
        first still-buffered byte)."""

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a split frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[WalRecord, int]]:
        """Absorb one chunk; return ``(record, end_offset)`` for every
        record it completed, in order.  ``end_offset`` is the stream offset
        just past the record — the replica's commit-boundary bookkeeping —
        measured from the first byte ever fed."""
        self._buffer.extend(data)
        base = self.consumed
        records: list[tuple[WalRecord, int]] = []
        position = 0
        while True:
            header = self._buffer[position:position + _FRAME.size]
            if len(header) < _FRAME.size:
                break
            length, checksum = _FRAME.unpack(bytes(header))
            end = position + _FRAME.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[position + _FRAME.size:end])
            if zlib.crc32(payload) != checksum:
                raise WalCorruptionError(
                    f"shipped frame checksum mismatch at stream offset "
                    f"{base + position}"
                )
            try:
                records.append((WalRecord.from_payload(payload), base + end))
            except (ValueError, KeyError) as error:
                raise WalCorruptionError(
                    f"undecodable shipped frame at stream offset "
                    f"{base + position}: {error}"
                ) from error
            position = end
        del self._buffer[:position]
        self.consumed += position
        return records


class WalWriter:
    """Appends framed records to a journal file.

    The writer flushes the OS buffer after every append (so an in-process
    simulated crash observes the bytes) and exposes :meth:`sync` for the
    durability points — standalone ops and ``bulk_commit`` — where the
    caller wants an fsync.  :meth:`rollback_to` truncates the file back to
    a remembered offset, undoing a journaled record whose application
    failed validation (the write-ahead analogue of an abort).
    """

    def __init__(self, path: str | os.PathLike, start_offset: int | None = None):
        self.path = os.fspath(path)
        self._file = open(self.path, "ab")
        size = self._file.tell()
        if start_offset is not None and start_offset < size:
            self._file.truncate(start_offset)
            size = start_offset
        self._offset = size

    def tell(self) -> int:
        """Bytes of journal currently written (and not rolled back)."""
        return self._offset

    def append(self, record: WalRecord) -> int:
        """Write one framed record; returns the offset it starts at."""
        offset = self._offset
        frame = encode_frame(record)
        self._file.write(frame)
        self._file.flush()
        self._offset = offset + len(frame)
        return offset

    def append_raw(self, data: bytes) -> int:
        """Write pre-framed bytes verbatim; returns the offset they start at.

        Log shipping appends the primary's journal bytes unmodified — the
        frames were validated when the primary wrote them, and copying them
        byte-for-byte keeps replica journals identical to the primary's.
        The chunk may end mid-frame; the torn-tail-tolerant scan handles
        that exactly as it handles a crash, and the next chunk completes
        the frame.
        """
        offset = self._offset
        self._file.write(data)
        self._file.flush()
        self._offset = offset + len(data)
        return offset

    def sync(self) -> None:
        """fsync the journal (a commit point survives power loss)."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def rollback_to(self, offset: int) -> None:
        """Discard every record at or after *offset*."""
        if offset > self._offset:
            raise StorageError(
                f"cannot roll the WAL forward: {offset} > {self._offset}"
            )
        self._file.truncate(offset)
        self._file.flush()
        self._offset = offset

    def truncate(self) -> None:
        """Empty the journal (checkpoint has made its contents redundant)."""
        self.rollback_to(0)
        self.sync()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()


@dataclass
class WalScan:
    """The result of reading a journal file sequentially.

    ``records`` parallel ``end_offsets`` — the byte offset just past each
    record, which recovery uses to truncate back to the last committed
    point.  ``valid_bytes`` is the prefix that framed correctly;
    ``torn_bytes`` whatever remained (a crash mid-write), with ``note``
    describing what stopped the scan.
    """

    records: list[WalRecord]
    end_offsets: list[int]
    valid_bytes: int
    total_bytes: int
    note: str | None = None

    @property
    def torn_bytes(self) -> int:
        return self.total_bytes - self.valid_bytes


def scan_wal(path: str | os.PathLike) -> WalScan:
    """Read every well-formed record, stopping at the first bad frame.

    A bad frame — short header, short payload, CRC mismatch, or undecodable
    JSON — ends the scan: everything after it is unrecoverable residue of a
    torn write.  The scan never raises for tail damage; callers decide
    whether a torn tail is tolerable (live journals: yes; checkpoint files,
    which are written atomically: no).
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return WalScan([], [], 0, 0)

    records: list[WalRecord] = []
    offsets: list[int] = []
    position = 0
    note: str | None = None
    while position < len(data):
        header = data[position:position + _FRAME.size]
        if len(header) < _FRAME.size:
            note = f"torn header at offset {position}"
            break
        length, checksum = _FRAME.unpack(header)
        payload = data[position + _FRAME.size:position + _FRAME.size + length]
        if len(payload) < length:
            note = f"torn payload at offset {position}"
            break
        if zlib.crc32(payload) != checksum:
            note = f"checksum mismatch at offset {position}"
            break
        try:
            record = WalRecord.from_payload(payload)
        except (ValueError, KeyError):
            note = f"undecodable payload at offset {position}"
            break
        position += _FRAME.size + length
        records.append(record)
        offsets.append(position)
    return WalScan(records, offsets, position, len(data), note)


# ----------------------------------------------------------------------
# temporal-history compaction (the checkpoint baseline)
# ----------------------------------------------------------------------

#: Replay ordering for events sharing a timestamp: nodes must exist before
#: edges reference them, updates touch still-current elements, and edge
#: closures precede the node deletes whose cascade would have closed them.
_PRIORITY_NODE_INSERT = 0
_PRIORITY_EDGE_INSERT = 1
_PRIORITY_UPDATE = 2
_PRIORITY_EDGE_DELETE = 3
_PRIORITY_NODE_DELETE = 4

_ALL_TIME = Interval(-FOREVER, FOREVER)


def _update_changes(
    previous: Mapping[str, Any], following: Mapping[str, Any]
) -> dict[str, Any]:
    """The change dict turning *previous* into *following* under the
    merge-with-None-removal semantics of ``update_element``."""
    changes: dict[str, Any] = dict(following)
    for name in previous:
        if name not in following:
            changes[name] = None
    return changes


def compact_history(store: "GraphStore") -> list[WalRecord]:
    """The minimal op stream reproducing *store*'s full temporal state.

    Each element's version chain becomes: an insert at the first version's
    start, an update at every contiguous version boundary, a delete/
    reinsert pair around every gap, and a final delete if the chain is
    closed.  Events are globally ordered by (timestamp, kind, uid) so a
    replay through the public write path — with the clock pinned to each
    event's timestamp — rebuilds identical validity intervals.  All
    records carry ``lsn=0``: a baseline sorts below any journaled record.
    """
    from repro.model.elements import EdgeRecord

    events: list[tuple[float, int, int, WalRecord]] = []
    for uid in store.known_uids():
        chain = store.versions(uid, _ALL_TIME)
        if not chain:
            continue  # annihilated same-instant element: never durably existed
        first = chain[0]
        is_edge = isinstance(first, EdgeRecord)
        insert_priority = _PRIORITY_EDGE_INSERT if is_edge else _PRIORITY_NODE_INSERT
        delete_priority = _PRIORITY_EDGE_DELETE if is_edge else _PRIORITY_NODE_DELETE
        events.append((
            first.period.start, insert_priority, uid,
            WalRecord(
                lsn=0,
                op=OP_INSERT_EDGE if is_edge else OP_INSERT_NODE,
                ts=first.period.start,
                uid=uid,
                cls=first.cls.name,
                fields=dict(first.fields),
                source=first.source_uid if is_edge else None,
                target=first.target_uid if is_edge else None,
            ),
        ))
        previous = first
        for version in chain[1:]:
            if version.period.start == previous.period.end:
                events.append((
                    version.period.start, _PRIORITY_UPDATE, uid,
                    WalRecord(
                        lsn=0, op=OP_UPDATE, ts=version.period.start, uid=uid,
                        fields=_update_changes(previous.fields, version.fields),
                    ),
                ))
            else:  # a gap: the element was deleted and later reinserted
                events.append((
                    previous.period.end, delete_priority, uid,
                    WalRecord(lsn=0, op=OP_DELETE, ts=previous.period.end, uid=uid),
                ))
                events.append((
                    version.period.start, insert_priority, uid,
                    WalRecord(
                        lsn=0, op=OP_REINSERT, ts=version.period.start, uid=uid,
                        fields=dict(version.fields),
                    ),
                ))
            previous = version
        if previous.period.end != FOREVER:
            events.append((
                previous.period.end, delete_priority, uid,
                WalRecord(lsn=0, op=OP_DELETE, ts=previous.period.end, uid=uid),
            ))
    events.sort(key=lambda event: event[:3])
    return [record for *_key, record in events]


def history_digest(store: "GraphStore") -> tuple:
    """A comparable fingerprint of a store's full temporal state.

    Two stores with equal digests answer every query — current, timeslice
    or time-range — identically; the crash matrix compares recovered
    stores against committed prefixes with it.
    """
    return tuple(
        (r.op, r.ts, r.uid, r.cls, r.source, r.target,
         tuple(sorted((r.fields or {}).items(), key=repr)))
        for r in compact_history(store)
    )


def write_records(
    path: str | os.PathLike, records: Iterable[WalRecord]
) -> int:
    """Write *records* to a fresh file at *path*, fsynced; returns count."""
    count = 0
    with open(path, "wb") as handle:
        for record in records:
            handle.write(encode_frame(record))
            count += 1
        handle.flush()
        os.fsync(handle.fileno())
    return count
