"""Durable wrapper: write-ahead logging, checkpoints, crash recovery.

:class:`DurableStore` decorates an in-memory :class:`~repro.storage.base.
GraphStore` and journals every mutation to an append-only WAL *before*
delegating it, so the temporal history survives process death:

* standalone mutations are their own commit unit — journaled, applied,
  fsynced (under the default ``sync="commit"`` policy);
* :meth:`bulk` batches are atomic: a ``bulk_begin`` record opens the
  batch, member mutations are journaled unsynced, and ``bulk_commit``
  closes and fsyncs it.  Recovery discards any records after an unmatched
  ``bulk_begin``, so a crash mid-batch restores the pre-batch state;
* :meth:`checkpoint` compacts the full temporal history (via
  :func:`~repro.storage.wal.compact_history`) into ``checkpoint.wal`` —
  written to a temp file, fsynced, then atomically ``os.replace``d — and
  truncates the live journal behind it.  The manifest records the LSN the
  baseline covers, so a crash between replace and truncate only makes
  recovery skip the already-covered journal prefix;
* :func:`recover` / :meth:`DurableStore.open` rebuild a store by replaying
  checkpoint + journal tail through the public write path with the clock
  pinned to each record's timestamp, verifying checksums, tolerating a
  torn final record, and restoring ``data_version`` monotonically so plan
  caches keyed on it stay correct.

Crash points for tests follow the chaos layer's hook pattern
(:class:`~repro.storage.chaos.FaultInjectingStore`): a ``crash_hook``
callable is invoked with a point name at every durability-relevant
boundary and may raise :class:`~repro.storage.chaos.CrashPoint` — which
derives from ``BaseException``, so no library ``except Exception`` can
swallow the simulated death.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.errors import StorageError
from repro.storage.base import GraphStore, TimeScope
from repro.storage.wal import (
    MUTATION_OPS,
    OP_BULK_BEGIN,
    OP_BULK_COMMIT,
    OP_CHECKPOINT,
    OP_DELETE,
    OP_EPOCH,
    OP_INSERT_EDGE,
    OP_INSERT_NODE,
    OP_REINSERT,
    OP_UPDATE,
    FrameDecoder,
    WalCorruptionError,
    WalRecord,
    WalWriter,
    compact_history,
    scan_wal,
    write_records,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.elements import EdgeRecord, ElementRecord
    from repro.model.pathway import Pathway
    from repro.plan.program import MatchProgram
    from repro.rpe.ast import Atom
    from repro.schema.classes import EdgeClass
    from repro.stats.metrics import MetricsRegistry
    from repro.temporal.interval import Interval

WAL_FILE = "wal.log"
CHECKPOINT_FILE = "checkpoint.wal"
CHECKPOINT_TEMP = "checkpoint.tmp"


@dataclass
class RecoveryReport:
    """What :func:`recover` found and did, for operators and tests."""

    data_dir: str
    checkpoint_loaded: bool = False
    checkpoint_records: int = 0
    wal_records: int = 0
    replayed: int = 0
    skipped: int = 0
    discarded: int = 0
    torn_bytes: int = 0
    committed_offset: int = 0
    next_lsn: int = 1
    data_version: int = 0
    epoch: int = 0
    checkpoint_lsn: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing had to be discarded or truncated."""
        return self.discarded == 0 and self.torn_bytes == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "checkpoint_loaded": self.checkpoint_loaded,
            "checkpoint_records": self.checkpoint_records,
            "wal_records": self.wal_records,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "discarded": self.discarded,
            "torn_bytes": self.torn_bytes,
            "committed_offset": self.committed_offset,
            "data_version": self.data_version,
            "epoch": self.epoch,
            "checkpoint_lsn": self.checkpoint_lsn,
            "clean": self.clean,
            "notes": list(self.notes),
        }

    def describe(self) -> str:
        parts = [
            f"checkpoint={'yes' if self.checkpoint_loaded else 'no'}"
            + (f" ({self.checkpoint_records} records)" if self.checkpoint_loaded else ""),
            f"replayed {self.replayed}/{self.wal_records} journal records",
        ]
        if self.skipped:
            parts.append(f"skipped {self.skipped} (covered by checkpoint)")
        if self.discarded:
            parts.append(f"discarded {self.discarded} (uncommitted batch)")
        if self.torn_bytes:
            parts.append(f"dropped {self.torn_bytes} torn bytes")
        parts.append(f"data_version={self.data_version}")
        return ", ".join(parts)


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of one checkpoint operation."""

    records: int
    data_version: int
    wal_bytes_truncated: int


@dataclass(frozen=True)
class ReplicationApplyResult:
    """What one :meth:`DurableStore.replication_apply` call did.

    ``pending_bytes`` is a split frame awaiting its next chunk;
    ``open_batch`` a bulk batch whose ``bulk_commit`` has not arrived yet —
    both normal mid-stream states, resolved by later chunks.  ``last_ts``
    is the transaction timestamp of the newest applied record, the basis
    of the ``replication.lag_seconds`` gauge.
    """

    applied: int
    skipped: int
    last_lsn: int
    last_ts: float | None
    epoch: int
    pending_bytes: int
    open_batch: bool


def _apply_record(store: GraphStore, record: WalRecord) -> None:
    """Replay one mutation through the public write path, with the clock
    pinned to the journaled transaction time so validity intervals come
    out identical."""
    if record.ts is not None:
        store.clock.set(record.ts)
    fields = dict(record.fields) if record.fields is not None else None
    if record.op == OP_INSERT_NODE:
        store.insert_node(record.cls, fields, uid=record.uid)
    elif record.op == OP_INSERT_EDGE:
        store.insert_edge(
            record.cls, record.source, record.target, fields, uid=record.uid
        )
    elif record.op == OP_UPDATE:
        store.update_element(record.uid, fields or {})
    elif record.op == OP_DELETE:
        store.delete_element(record.uid)
    elif record.op == OP_REINSERT:
        store.reinsert(record.uid, fields)
    else:  # pragma: no cover - scan filters framing ops before apply
        raise StorageError(f"cannot replay op {record.op!r}")


def recover(data_dir: str | os.PathLike, store: GraphStore) -> RecoveryReport:
    """Rebuild *store* (which must be empty) from a durability directory.

    Replays the checkpoint baseline, then the journal tail, skipping
    records the checkpoint already covers (``lsn <= manifest.last_lsn``)
    and buffering batch members so an unmatched ``bulk_begin`` is
    discarded whole.  ``data_version`` is restored to at least its value
    at the last durable point, and the uid allocator is advanced past the
    checkpoint's high-water mark so recovered stores never re-issue an id.
    """
    directory = os.fspath(data_dir)
    report = RecoveryReport(data_dir=directory)
    if store.known_uids():
        raise StorageError("recovery requires an empty store to replay into")

    last_lsn = 0
    checkpoint_path = os.path.join(directory, CHECKPOINT_FILE)
    checkpoint = scan_wal(checkpoint_path)
    if checkpoint.total_bytes:
        if checkpoint.torn_bytes:
            raise WalCorruptionError(
                f"checkpoint {checkpoint_path} is damaged ({checkpoint.note}); "
                "checkpoints are written atomically, refusing to guess"
            )
        manifest = checkpoint.records[-1] if checkpoint.records else None
        if manifest is None or manifest.op != OP_CHECKPOINT:
            raise WalCorruptionError(
                f"checkpoint {checkpoint_path} has no trailing manifest record"
            )
        for record in checkpoint.records[:-1]:
            _apply_record(store, record)
        report.checkpoint_loaded = True
        report.checkpoint_records = len(checkpoint.records) - 1
        last_lsn = manifest.last_lsn or 0
        if manifest.last_uid:
            store.observe_uid(manifest.last_uid)
        if manifest.dv:
            store.restore_data_version(manifest.dv)
        report.epoch = manifest.epoch or 0
        report.checkpoint_lsn = last_lsn

    scan = scan_wal(os.path.join(directory, WAL_FILE))
    report.wal_records = len(scan.records)
    report.torn_bytes = scan.torn_bytes
    if scan.note:
        report.notes.append(scan.note)
    report.committed_offset = report.committed_offset or 0

    max_lsn = last_lsn
    last_applied_dv: int | None = None
    batch: list[WalRecord] | None = None
    committed = 0
    for record, end_offset in zip(scan.records, scan.end_offsets):
        max_lsn = max(max_lsn, record.lsn)
        if record.lsn <= last_lsn:
            report.skipped += 1
            committed = end_offset
            continue
        if record.op == OP_EPOCH:
            # An epoch fence is its own commit unit: it never rides inside
            # a batch and recovery must honour it even mid-journal, so a
            # revived node knows the highest epoch it ever acknowledged.
            report.epoch = max(report.epoch, record.epoch or 0)
            committed = end_offset
            continue
        if record.op == OP_BULK_BEGIN:
            if batch is not None:
                # A begin inside an open batch means the previous batch
                # never committed; everything buffered so far is dead.
                report.discarded += len(batch) + 1
            batch = []
            continue
        if record.op == OP_BULK_COMMIT:
            if batch is None:
                report.notes.append(f"stray bulk_commit (lsn {record.lsn}) ignored")
                committed = end_offset
                continue
            for member in batch:
                _apply_record(store, member)
                report.replayed += 1
                if member.dv is not None:
                    last_applied_dv = member.dv
            batch = None
            committed = end_offset
            continue
        if record.op not in MUTATION_OPS:
            report.notes.append(f"unknown op {record.op!r} (lsn {record.lsn}) ignored")
            continue
        if batch is not None:
            batch.append(record)
            continue
        _apply_record(store, record)
        report.replayed += 1
        if record.dv is not None:
            last_applied_dv = record.dv
        committed = end_offset
    if batch is not None:
        report.discarded += len(batch) + 1
        report.notes.append("uncommitted batch at journal tail discarded")

    if last_applied_dv is not None:
        store.restore_data_version(last_applied_dv + 1)
    report.committed_offset = committed
    report.next_lsn = max_lsn + 1
    report.data_version = store.data_version
    return report


class DurableStore(GraphStore):
    """A journaled, checkpointable decorator over an in-memory backend.

    Construct around a fresh (or never-journaled) store and a data
    directory.  If the directory already holds a checkpoint or journal the
    inner store must be empty — it is rebuilt by recovery.  Conversely a
    pre-populated inner store with a fresh directory is immediately
    baselined with a checkpoint, so wrapping an already-loaded graph is
    durable from the first mutation.
    """

    #: Crash-hook points, in the order a mutation/checkpoint passes them.
    CRASH_POINTS = (
        "wal.append",
        "wal.applied",
        "bulk.commit",
        "bulk.synced",
        "checkpoint.write",
        "checkpoint.replace",
        "checkpoint.truncate",
    )

    def __init__(
        self,
        inner: GraphStore,
        data_dir: str | os.PathLike,
        *,
        metrics: "MetricsRegistry | None" = None,
        sync: str = "commit",
        crash_hook: Callable[[str], None] | None = None,
    ):
        if sync not in ("commit", "always", "none"):
            raise StorageError(f"unknown sync policy {sync!r}")
        super().__init__(inner.schema, clock=inner.clock, name=inner.name)
        self._inner = inner
        self._dir = os.fspath(data_dir)
        os.makedirs(self._dir, exist_ok=True)
        self._metrics = metrics
        self._sync_policy = sync
        self._crash_hook = crash_hook
        self._bulk_depth = 0
        self._closed = False
        # Replication: set while this store follows a primary (reject local
        # writes), plus the incremental shipping-apply state machine.
        self._read_only: str | None = None
        self._rep_decoder: FrameDecoder | None = None
        self._rep_batch: list[WalRecord] | None = None
        self._rep_stream_base = 0
        self._rep_committed_offset = 0
        self._rep_committed_lsn = 0
        self._rep_last_ts: float | None = None
        # Serializes journal append + apply + sync so WAL order always
        # matches apply order under concurrent committers.  Reentrant:
        # bulk batches hold it across their member writes.
        self._commit_lock = threading.RLock()
        # Wall-mode clocks keep tracking real time across the pinning that
        # journaling requires (every stamp is pinned so replay can
        # reproduce it); pinned clocks stay under their owner's control.
        self._wall = not inner.clock.pinned

        preloaded = bool(inner.known_uids())
        has_data = any(
            os.path.exists(os.path.join(self._dir, name))
            for name in (WAL_FILE, CHECKPOINT_FILE)
        )
        if preloaded and has_data:
            raise StorageError(
                f"{self._dir} already holds a journal; recovery needs an "
                "empty store (or wrap the loaded store in a fresh directory)"
            )
        if preloaded:
            # Nothing on disk to replay; the inner history becomes the
            # baseline via the checkpoint below.
            self.recovery = RecoveryReport(
                data_dir=self._dir, data_version=inner.data_version
            )
        else:
            self.recovery = recover(self._dir, inner)
        self._lsn = self.recovery.next_lsn - 1
        self._epoch = self.recovery.epoch
        self._checkpoint_lsn = self.recovery.checkpoint_lsn
        self._record_recovery_events()
        # Reopen the journal at the last committed point: torn tails and
        # uncommitted batches must not linger ahead of new appends.
        self._wal = WalWriter(
            os.path.join(self._dir, WAL_FILE),
            start_offset=self.recovery.committed_offset,
        )
        if preloaded:
            self.checkpoint()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        data_dir: str | os.PathLike,
        schema,
        *,
        clock=None,
        metrics: "MetricsRegistry | None" = None,
        sync: str = "commit",
        crash_hook: Callable[[str], None] | None = None,
        name: str = "durable",
    ) -> "DurableStore":
        """Open (creating or recovering) a durable store at *data_dir*."""
        from repro.storage.memgraph.store import MemGraphStore
        from repro.temporal.clock import TransactionClock

        inner = MemGraphStore(schema, clock=clock or TransactionClock(), name=name)
        return cls(
            inner, data_dir, metrics=metrics, sync=sync, crash_hook=crash_hook
        )

    def close(self) -> None:
        """Flush and close the journal; the store stays readable."""
        with self._commit_lock:
            if not self._closed:
                if self._sync_policy != "none":
                    self._wal.sync()
                self._wal.close()
                self._closed = True

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def inner(self) -> GraphStore:
        """The wrapped backend."""
        return self._inner

    @property
    def data_dir(self) -> str:
        return self._dir

    @property
    def wal_bytes(self) -> int:
        """Current journal size in bytes (observability and benchmarks)."""
        return self._wal.tell()

    # ------------------------------------------------------------------
    # journaling plumbing
    # ------------------------------------------------------------------

    def _crash(self, point: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(point)

    def _event(self, name: str, count: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.event(name, count)

    def _record_recovery_events(self) -> None:
        report = self.recovery
        if report.replayed:
            self._event("recovery.replayed", report.replayed)
        if report.skipped:
            self._event("recovery.skipped", report.skipped)
        if report.discarded:
            self._event("recovery.discarded", report.discarded)
        if report.torn_bytes:
            self._event("recovery.torn_bytes", report.torn_bytes)
        if report.checkpoint_loaded:
            self._event("recovery.checkpoint_loaded")

    def _stamp(self) -> float:
        """The transaction time for the next mutation, pinned so the
        journaled record replays to the identical validity interval."""
        clock = self._inner.clock
        if self._wall:
            return clock.set(max(clock.now(), time.time()))
        return clock.now()

    def _next_lsn(self) -> int:
        self._lsn += 1
        return self._lsn

    def _journal(
        self,
        op: str,
        *,
        uid: int | None = None,
        cls: str | None = None,
        fields: Mapping[str, Any] | None = None,
        source: int | None = None,
        target: int | None = None,
    ) -> int:
        if self._closed:
            raise StorageError(f"durable store {self.name} is closed")
        if self._read_only is not None:
            raise StorageError(self._read_only)
        ts = self._stamp()
        record = WalRecord(
            lsn=self._next_lsn(), op=op, ts=ts, uid=uid, cls=cls,
            fields=dict(fields) if fields is not None else None,
            source=source, target=target, dv=self._inner.data_version,
        )
        self._crash("wal.append")
        offset = self._wal.append(record)
        self._event("wal.append")
        return offset

    def _commit_point(self) -> None:
        """Make everything journaled so far durable (per the sync policy)."""
        if self._sync_policy != "none":
            self._wal.sync()
            self._event("wal.sync")

    def _journaled(self, op: str, apply: Callable[[], Any], **journal_kw) -> Any:
        """Journal, apply, then commit (standalone ops only).

        If applying raises — validation, unknown element — the journaled
        record is rolled back so the WAL only ever describes mutations
        that really happened.
        """
        with self._commit_lock:
            offset = self._journal(op, **journal_kw)
            try:
                result = apply()
            except Exception:
                self._wal.rollback_to(offset)
                raise
            self._crash("wal.applied")
            if self._bulk_depth == 0:
                self._commit_point()
            elif self._sync_policy == "always":
                self._wal.sync()
                self._event("wal.sync")
            return result

    # ------------------------------------------------------------------
    # write path (journaled)
    # ------------------------------------------------------------------

    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
    ) -> int:
        if uid is None:
            uid = self._inner.reserve_uid()
        return self._journaled(
            OP_INSERT_NODE,
            lambda: self._inner.insert_node(class_name, fields, uid=uid),
            uid=uid, cls=class_name, fields=fields or {},
        )

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
    ) -> int:
        if uid is None:
            uid = self._inner.reserve_uid()
        return self._journaled(
            OP_INSERT_EDGE,
            lambda: self._inner.insert_edge(class_name, source, target, fields, uid=uid),
            uid=uid, cls=class_name, fields=fields or {}, source=source, target=target,
        )

    def update_element(self, uid: int, changes: Mapping[str, Any]) -> None:
        self._journaled(
            OP_UPDATE,
            lambda: self._inner.update_element(uid, changes),
            uid=uid, fields=changes,
        )

    def delete_element(self, uid: int) -> None:
        # Cascades re-run identically at replay, so only the root delete
        # is journaled.
        self._journaled(
            OP_DELETE, lambda: self._inner.delete_element(uid), uid=uid
        )

    def reinsert(self, uid: int, fields: Mapping[str, Any] | None = None,
                 source: int | None = None, target: int | None = None) -> int:
        return self._journaled(
            OP_REINSERT,
            lambda: self._inner.reinsert(uid, fields, source=source, target=target),
            uid=uid, fields=fields,
        )

    # ------------------------------------------------------------------
    # batching (the atomic unit of recovery)
    # ------------------------------------------------------------------

    @contextmanager
    def bulk(self):
        """An atomic batch: all-or-nothing across crashes.

        Member records are journaled unsynced; the closing ``bulk_commit``
        is the durability point.  On an in-batch *exception* the journal is
        rolled back to the batch start (a crash instead leaves the partial
        records, which recovery discards as an unmatched ``bulk_begin`` —
        the same pre-batch state either way).  Note the in-memory inner
        store cannot roll back its own partial writes; after an aborted
        batch the live process is ahead of the journal until the batch's
        writes are re-applied or the process restarts.
        """
        with self._commit_lock:
            if self._bulk_depth > 0:  # reentrant: the outermost batch frames
                self._bulk_depth += 1
                try:
                    yield
                finally:
                    self._bulk_depth -= 1
                return
            begin_offset = self._journal(OP_BULK_BEGIN)
            self._bulk_depth = 1
            try:
                with self._inner.bulk():
                    yield
            except Exception:
                self._bulk_depth = 0
                self._wal.rollback_to(begin_offset)
                raise
            finally:
                # CrashPoint (BaseException) lands here without the rollback:
                # a simulated death must leave the torn journal in place.
                self._bulk_depth = 0
            self._crash("bulk.commit")
            self._journal(OP_BULK_COMMIT)
            self._commit_point()
            self._crash("bulk.synced")
            self._event("wal.bulk_commit")

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> CheckpointInfo:
        """Write a compacted full-history baseline and truncate the WAL.

        Protocol: compact → write+fsync a temp file → atomic replace →
        truncate the journal.  A crash at any point leaves a recoverable
        pair: the manifest's ``last_lsn`` makes journal records the new
        baseline already covers harmless duplicates that recovery skips.
        """
        with self._commit_lock:
            if self._bulk_depth:
                raise StorageError("cannot checkpoint inside an open bulk batch")
            if self._closed:
                raise StorageError(f"durable store {self.name} is closed")
            records = compact_history(self._inner)
            manifest = WalRecord(
                lsn=0, op=OP_CHECKPOINT, ts=self._inner.clock.now(),
                dv=self._inner.data_version, last_lsn=self._lsn,
                last_uid=self._inner.last_uid,
                epoch=self._epoch or None,
            )
            temp_path = os.path.join(self._dir, CHECKPOINT_TEMP)
            self._crash("checkpoint.write")
            write_records(temp_path, [*records, manifest])
            self._crash("checkpoint.replace")
            os.replace(temp_path, os.path.join(self._dir, CHECKPOINT_FILE))
            self._fsync_dir()
            self._crash("checkpoint.truncate")
            truncated = self._wal.tell()
            self._wal.truncate()
            self._checkpoint_lsn = self._lsn
            self._event("wal.checkpoint")
            return CheckpointInfo(
                records=len(records),
                data_version=self._inner.data_version,
                wal_bytes_truncated=truncated,
            )

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self._dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # replication (log shipping; see repro.replication)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Highest epoch fence this store has durably acknowledged."""
        return self._epoch

    @property
    def last_lsn(self) -> int:
        """The LSN of the newest journaled record."""
        return self._lsn

    @property
    def checkpoint_lsn(self) -> int:
        """The highest LSN covered by the on-disk checkpoint baseline.

        Journal bytes below this LSN no longer exist (the checkpoint
        truncated them); a replica whose pull offset outruns the journal
        compares its applied LSN against this to decide between re-basing
        at offset 0 and a full resynchronization.
        """
        return self._checkpoint_lsn

    def set_read_only(self, reason: str | None) -> None:
        """Reject local writes (``reason`` becomes the error text).

        A replication replica applies shipped records only; a fenced
        ex-primary applies nothing at all.  ``None`` re-enables writes
        (promotion).
        """
        with self._commit_lock:
            self._read_only = reason

    @property
    def read_only(self) -> bool:
        return self._read_only is not None

    def stamp_epoch(self, epoch: int) -> int:
        """Journal and fsync an epoch fence record; returns its LSN.

        Promotion calls this *before* accepting writes, so every record the
        new primary ships carries proof of its term: a revived old primary
        replaying or receiving records with a higher epoch knows it has
        been superseded.
        """
        with self._commit_lock:
            if epoch <= self._epoch:
                raise StorageError(
                    f"epoch must increase: {epoch} <= current {self._epoch}"
                )
            if self._closed:
                raise StorageError(f"durable store {self.name} is closed")
            record = WalRecord(
                lsn=self._next_lsn(), op=OP_EPOCH,
                ts=self._stamp(), epoch=epoch,
            )
            self._wal.append(record)
            self._commit_point()
            self._epoch = epoch
            self._event("replication.epoch_stamped")
            return record.lsn

    def read_wal(self, offset: int, limit: int = 1 << 20) -> tuple[bytes, int]:
        """Journal bytes from *offset* (primary side of log shipping).

        Returns ``(chunk, committed_size)`` where ``committed_size`` is the
        journal length excluding any rolled-back tail.  The chunk may end
        mid-frame — the replica's :class:`~repro.storage.wal.FrameDecoder`
        buffers the split.  Raises :class:`StorageError` when *offset* lies
        beyond the journal (the caller's position predates a checkpoint
        truncation and it must resynchronize).
        """
        with self._commit_lock:
            committed = self._wal.tell()
            if offset < 0 or offset > committed:
                raise StorageError(
                    f"wal offset {offset} out of range (journal is "
                    f"{committed} bytes; truncated by a checkpoint?)"
                )
            if offset == committed:
                return b"", committed
            with open(self._wal.path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(min(limit, committed - offset))
            return data, committed

    def snapshot_stream(self) -> tuple[bytes, int, int]:
        """A bootstrap snapshot: ``(framed bytes, last_lsn, epoch)``.

        The same compacted-history stream a checkpoint writes, rendered to
        bytes under the commit lock so it is a consistent cut: the manifest
        ``last_lsn`` tells the replica which journal records the snapshot
        already covers.
        """
        with self._commit_lock:
            records = compact_history(self._inner)
            manifest = WalRecord(
                lsn=0, op=OP_CHECKPOINT, ts=self._inner.clock.now(),
                dv=self._inner.data_version, last_lsn=self._lsn,
                last_uid=self._inner.last_uid,
                epoch=self._epoch or None,
            )
            from repro.storage.wal import encode_frame

            data = b"".join(encode_frame(r) for r in [*records, manifest])
            self._event("replication.snapshot_served")
            return data, self._lsn, self._epoch

    def install_snapshot(self, data: bytes) -> int:
        """Bootstrap this (empty) store from a primary's snapshot stream.

        The bytes become the local ``checkpoint.wal`` (temp + fsync +
        atomic replace, like a local checkpoint), the records are applied
        through the write path with the clock pinned to each timestamp,
        and the LSN/uid/epoch high-water marks jump to the manifest's.
        After this the replica pulls the primary's journal from offset 0;
        records the snapshot covers are skipped by their LSN.
        """
        with self._commit_lock:
            if self._inner.known_uids():
                raise StorageError(
                    "snapshot install requires an empty store; restart the "
                    "replica with a fresh data directory to resynchronize"
                )
            decoder = FrameDecoder()
            parsed = decoder.feed(data)
            if decoder.pending:
                raise WalCorruptionError(
                    f"snapshot stream ends mid-frame ({decoder.pending} "
                    "trailing bytes)"
                )
            if not parsed or parsed[-1][0].op != OP_CHECKPOINT:
                raise WalCorruptionError(
                    "snapshot stream has no trailing checkpoint manifest"
                )
            manifest = parsed[-1][0]
            temp_path = os.path.join(self._dir, CHECKPOINT_TEMP)
            with open(temp_path, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, os.path.join(self._dir, CHECKPOINT_FILE))
            self._fsync_dir()
            for record, _ in parsed[:-1]:
                _apply_record(self._inner, record)
            if manifest.last_uid:
                self._inner.observe_uid(manifest.last_uid)
            if manifest.dv:
                self._inner.restore_data_version(manifest.dv)
            self._lsn = manifest.last_lsn or 0
            self._epoch = manifest.epoch or 0
            self._checkpoint_lsn = self._lsn
            self._wal.truncate()
            self._rep_decoder = FrameDecoder()
            self._rep_batch = None
            self._rep_stream_base = 0
            self._rep_committed_offset = 0
            self._rep_committed_lsn = self._lsn
            self._event("replication.snapshot_installed")
            return len(parsed) - 1

    def begin_replication(self, reason: str) -> None:
        """Enter follower mode: local writes rejected, apply state armed."""
        with self._commit_lock:
            self._read_only = reason
            self._rep_decoder = FrameDecoder()
            self._rep_batch = None
            self._rep_stream_base = self._wal.tell()
            self._rep_committed_offset = self._rep_stream_base
            self._rep_committed_lsn = self._lsn

    def end_replication(self) -> None:
        """Leave follower mode (promotion or shutdown).

        Any shipped-but-uncommitted residue — a split frame, a batch whose
        ``bulk_commit`` never arrived — is rolled back to the last commit
        boundary, exactly what recovery would discard, so the journal never
        interleaves stale batch members with post-promotion writes.
        """
        with self._commit_lock:
            if self._rep_decoder is None:
                self._read_only = None
                return
            self._wal.rollback_to(self._rep_committed_offset)
            self._wal.sync()
            self._lsn = self._rep_committed_lsn
            self._rep_decoder = None
            self._rep_batch = None
            self._read_only = None

    def replication_apply(self, data: bytes) -> "ReplicationApplyResult":
        """Append shipped journal bytes and apply the records they complete.

        The bytes land in the local journal verbatim (replica WAL files are
        byte-identical prefixes of the primary's), then every frame the
        chunk completes is applied through the same path recovery uses:
        clock pinned to the record's timestamp, batches buffered until
        their ``bulk_commit``, records at or below the local LSN skipped as
        already present (snapshot coverage or a pull overlap after
        recovery).
        """
        with self._commit_lock:
            if self._rep_decoder is None:
                raise StorageError(
                    "not in replication mode (call begin_replication first)"
                )
            if self._closed:
                raise StorageError(f"durable store {self.name} is closed")
            applied = skipped = 0
            self._wal.append_raw(data)
            for record, end in self._rep_decoder.feed(data):
                offset = self._rep_stream_base + end
                if record.op == OP_EPOCH:
                    self._epoch = max(self._epoch, record.epoch or 0)
                    self._lsn = max(self._lsn, record.lsn)
                    self._commit_boundary(offset)
                    continue
                if record.lsn <= self._rep_committed_lsn:
                    skipped += 1
                    self._commit_boundary(offset, lsn=None)
                    continue
                if record.op == OP_BULK_BEGIN:
                    self._rep_batch = []
                    continue
                if record.op == OP_BULK_COMMIT:
                    for member in self._rep_batch or ():
                        self._apply_shipped(member)
                        applied += 1
                    self._rep_batch = None
                    self._lsn = max(self._lsn, record.lsn)
                    self._commit_boundary(offset)
                    continue
                if record.op not in MUTATION_OPS:
                    self._commit_boundary(offset, lsn=None)
                    continue
                if self._rep_batch is not None:
                    self._rep_batch.append(record)
                    continue
                self._apply_shipped(record)
                applied += 1
                self._lsn = max(self._lsn, record.lsn)
                self._commit_boundary(offset)
            if self._sync_policy != "none" and data:
                self._wal.sync()
            if applied:
                self._event("replication.applied", applied)
            return ReplicationApplyResult(
                applied=applied,
                skipped=skipped,
                last_lsn=self._lsn,
                last_ts=self._rep_last_ts,
                epoch=self._epoch,
                pending_bytes=self._rep_decoder.pending,
                open_batch=self._rep_batch is not None,
            )

    def _commit_boundary(self, offset: int, lsn: int | None = 0) -> None:
        """Advance the replica's durable boundary to *offset* (a record end
        that is not inside an open batch)."""
        self._rep_committed_offset = offset
        if lsn is not None:
            self._rep_committed_lsn = self._lsn

    def _apply_shipped(self, record: WalRecord) -> None:
        _apply_record(self._inner, record)
        if record.ts is not None:
            self._rep_last_ts = record.ts
        if record.dv is not None:
            self._inner.restore_data_version(record.dv + 1)

    # ------------------------------------------------------------------
    # data versioning (delegated to the inner store)
    # ------------------------------------------------------------------

    @property
    def data_version(self) -> int:
        return self._inner.data_version

    def bump_data_version(self) -> None:
        self._inner.bump_data_version()

    def restore_data_version(self, version: int) -> None:
        self._inner.restore_data_version(version)

    @property
    def supports_snapshots(self) -> bool:
        return self._inner.supports_snapshots

    # ------------------------------------------------------------------
    # read path (pure delegation)
    # ------------------------------------------------------------------

    def scan_atom(self, atom: "Atom", scope: TimeScope) -> "list[ElementRecord]":
        return self._inner.scan_atom(atom, scope)

    def get_element(self, uid: int, scope: TimeScope) -> "ElementRecord | None":
        return self._inner.get_element(uid, scope)

    def get_many(
        self, uids: "Sequence[int]", scope: TimeScope
    ) -> "dict[int, ElementRecord]":
        return self._inner.get_many(uids, scope)

    def versions(self, uid: int, window: "Interval") -> "list[ElementRecord]":
        return self._inner.versions(uid, window)

    def out_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "list[EdgeRecord]":
        return self._inner.out_edges(node_uid, scope, classes)

    def in_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "list[EdgeRecord]":
        return self._inner.in_edges(node_uid, scope, classes)

    def out_edges_many(
        self,
        node_uids: "Sequence[int]",
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "dict[int, list[EdgeRecord]]":
        return self._inner.out_edges_many(node_uids, scope, classes)

    def in_edges_many(
        self,
        node_uids: "Sequence[int]",
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "dict[int, list[EdgeRecord]]":
        return self._inner.in_edges_many(node_uids, scope, classes)

    def class_count(self, class_name: str) -> int:
        return self._inner.class_count(class_name)

    def class_count_at(self, class_name: str, scope: TimeScope) -> int | None:
        return self._inner.class_count_at(class_name, scope)

    def counts(self) -> dict[str, int]:
        return self._inner.counts()

    def storage_cells(self) -> int:
        return self._inner.storage_cells()

    def find_pathways(
        self, program: "MatchProgram", scope: TimeScope
    ) -> "list[Pathway]":
        return self._inner.find_pathways(program, scope)

    def known_uids(self) -> list[int]:
        return self._inner.known_uids()

    def reserve_uid(self) -> int:
        return self._inner.reserve_uid()

    def observe_uid(self, external_id: int) -> None:
        self._inner.observe_uid(external_id)

    @property
    def last_uid(self) -> int:
        return self._inner.last_uid

    def __getattr__(self, name: str):
        # Read-only extras (current_uids, degree, ...) fall through to the
        # inner store; mutations are all explicitly journaled above.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)
