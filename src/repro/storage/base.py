"""Backend interface and time scopes.

A :class:`GraphStore` is a transaction-time temporal graph database: every
write is stamped by the store's clock, superseded versions move to history,
and reads are parameterized by a :class:`TimeScope` — the current snapshot,
a past time point (``AT '<ts>'``), or a time range (``AT '<t1>' : '<t2>'``).

Backends implement element-level reads (scan by atom, adjacency expansion,
version retrieval); pathway finding has a generic frontier-based
implementation (:mod:`repro.plan.traverse`) which the relational backend
overrides with set-at-a-time SQL (§5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import StorageError, TemporalError
from repro.model.elements import EdgeRecord, ElementRecord, NodeRecord
from repro.rpe.ast import Atom
from repro.schema.classes import EdgeClass
from repro.schema.registry import Schema
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import FOREVER, Interval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.pathway import Pathway
    from repro.plan.program import MatchProgram


@dataclass(frozen=True)
class TimeScope:
    """Which temporal slice of the database a read observes.

    * ``current`` — the live snapshot (open system periods only);
    * ``at`` — a time point: versions whose period contains ``start``;
    * ``range`` — a window ``[start, end)``: versions overlapping the window.
    """

    kind: str
    start: float = 0.0
    end: float = FOREVER

    CURRENT = "current"
    AT = "at"
    RANGE = "range"

    @classmethod
    def current(cls) -> "TimeScope":
        return cls(cls.CURRENT)

    @classmethod
    def at(cls, timestamp: float) -> "TimeScope":
        return cls(cls.AT, start=timestamp)

    @classmethod
    def between(cls, start: float, end: float) -> "TimeScope":
        if start >= end:
            raise TemporalError(f"empty time range [{start}, {end})")
        return cls(cls.RANGE, start=start, end=end)

    @property
    def is_current(self) -> bool:
        return self.kind == self.CURRENT

    @property
    def is_range(self) -> bool:
        return self.kind == self.RANGE

    def window(self) -> Interval:
        """The scope as an interval (time points become minimal intervals)."""
        if self.kind == self.CURRENT:
            return Interval(-FOREVER, FOREVER)
        if self.kind == self.AT:
            return Interval.at(self.start)
        return Interval(self.start, self.end)

    def admits(self, period: Interval) -> bool:
        """Is a version with this system period visible under the scope?"""
        if self.kind == self.CURRENT:
            return period.is_current
        if self.kind == self.AT:
            return period.contains(self.start)
        return period.overlaps(self.window())

    def __str__(self) -> str:
        if self.kind == self.CURRENT:
            return "current"
        if self.kind == self.AT:
            return f"at {self.start}"
        return f"range [{self.start}, {self.end})"


class GraphStore(ABC):
    """Abstract temporal graph backend."""

    def __init__(self, schema: Schema, clock: TransactionClock | None = None, name: str = ""):
        self.schema = schema
        self.clock = clock or TransactionClock()
        self.name = name or type(self).__name__
        self._data_version = 0

    # ------------------------------------------------------------------
    # data versioning
    # ------------------------------------------------------------------

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped on every write or bulk load.

        Cardinality estimators compare it against the version they last
        sampled and refresh their statistics epoch when it drifts, which
        in turn retires stale compiled plans (:mod:`repro.plan.cache`).
        The counter says nothing about *what* changed — only that reads
        planned against older statistics may now be suboptimal.
        """
        return self._data_version

    def bump_data_version(self) -> None:
        """Record that the stored data changed (backends call this on
        every successful write; loaders may call it once per batch)."""
        self._data_version += 1

    def restore_data_version(self, version: int) -> None:
        """Raise the counter to at least *version* (never lowers it).

        Crash recovery replays a *compacted* history, which bumps the
        counter fewer times than the original write sequence did; this
        restores monotonicity so statistics epochs and cached plans keyed
        on the pre-crash version are correctly retired.
        """
        if version > self._data_version:
            self._data_version = version

    @property
    def supports_snapshots(self) -> bool:
        """True when reads at a pinned transaction time see a stable view.

        A snapshot-capable backend keeps full version chains and answers
        ``at(t)`` reads for any past ``t``, so a
        :class:`~repro.core.concurrency.SnapshotStore` can rewrite every
        read to the pinned instant.  Backends that answer only "latest
        state" (or whose historical reads are not isolated from concurrent
        writers) report ``False`` and are queried live.  Decorators
        delegate to their inner store.
        """
        return False

    # ------------------------------------------------------------------
    # uid allocation (durability and bulk-load support)
    # ------------------------------------------------------------------

    def reserve_uid(self) -> int:
        """Allocate (and burn) the next uid without inserting anything.

        The durable store resolves uids *before* journaling so replayed
        inserts are deterministic regardless of allocator state."""
        raise StorageError(f"{self.name} does not expose uid reservation")

    def observe_uid(self, external_id: int) -> None:
        """Advance the allocator past an externally assigned uid."""
        raise StorageError(f"{self.name} does not expose uid observation")

    @property
    def last_uid(self) -> int:
        """The allocator's high-water mark (checkpoint manifests save it)."""
        raise StorageError(f"{self.name} does not expose uid accounting")

    def known_uids(self) -> list[int]:
        """Every uid the store has ever held, current or historical."""
        raise StorageError(f"{self.name} does not expose uid enumeration")

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    @abstractmethod
    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
    ) -> int:
        """Insert a node; returns its uid.  Validates against the schema."""

    @abstractmethod
    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
    ) -> int:
        """Insert an edge between existing nodes; returns its uid."""

    @abstractmethod
    def update_element(self, uid: int, changes: Mapping[str, Any]) -> None:
        """Apply field changes, closing the current version into history."""

    @abstractmethod
    def delete_element(self, uid: int) -> None:
        """Logically delete: close the current version.  Deleting a node
        cascades to its incident edges, as a cloud-inventory feed would."""

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    @abstractmethod
    def scan_atom(self, atom: Atom, scope: TimeScope) -> list[ElementRecord]:
        """All elements (one representative version per uid) satisfying
        *atom* under *scope*.  Under a range scope an element qualifies when
        *some* version in the window satisfies the atom."""

    @abstractmethod
    def get_element(self, uid: int, scope: TimeScope) -> ElementRecord | None:
        """The representative version of *uid* under *scope* (or None)."""

    def get_many(
        self, uids: Sequence[int], scope: TimeScope
    ) -> dict[int, ElementRecord]:
        """Batched :meth:`get_element` over a whole frontier of uids.

        Returns only the uids with a visible representative.  The default
        loops; backends with a columnar snapshot answer the batch with one
        bisect per uid, and every delegating wrapper overrides this
        explicitly so snapshot pinning / chaos / retry semantics apply to
        the batch exactly as they do to single point reads.
        """
        result: dict[int, ElementRecord] = {}
        for uid in uids:
            record = self.get_element(uid, scope)
            if record is not None:
                result[uid] = record
        return result

    @abstractmethod
    def versions(self, uid: int, window: Interval) -> list[ElementRecord]:
        """Every version of *uid* overlapping *window* (for exact validity)."""

    @abstractmethod
    def out_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> list[EdgeRecord]:
        """Edges leaving *node_uid*, optionally restricted to class subtrees."""

    @abstractmethod
    def in_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> list[EdgeRecord]:
        """Edges entering *node_uid*, optionally restricted to class subtrees."""

    def out_edges_many(
        self,
        node_uids: Sequence[int],
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> dict[int, list[EdgeRecord]]:
        """Batched :meth:`out_edges` over a traversal frontier.

        The generic traversal expands whole frontiers through this, so a
        backend that can amortize per-call work (filter construction, index
        probes, round trips) only pays it once per step.  The default just
        loops, preserving single-call semantics exactly.
        """
        return {uid: self.out_edges(uid, scope, classes) for uid in node_uids}

    def in_edges_many(
        self,
        node_uids: Sequence[int],
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> dict[int, list[EdgeRecord]]:
        """Batched :meth:`in_edges`; see :meth:`out_edges_many`."""
        return {uid: self.in_edges(uid, scope, classes) for uid in node_uids}

    # ------------------------------------------------------------------
    # statistics & accounting
    # ------------------------------------------------------------------

    @abstractmethod
    def class_count(self, class_name: str) -> int:
        """Number of current elements in the class subtree (for costing)."""

    def class_count_at(self, class_name: str, scope: TimeScope) -> int | None:
        """Elements of the class subtree visible under *scope*, or ``None``
        when the backend has no cheap way to count historically (the
        estimator then falls back to current counts and schema hints)."""
        if scope.is_current:
            return self.class_count(class_name)
        return None

    @abstractmethod
    def counts(self) -> dict[str, int]:
        """Census: current nodes/edges and history versions."""

    @abstractmethod
    def storage_cells(self) -> int:
        """Rough storage footprint in stored field cells (for E4)."""

    # ------------------------------------------------------------------
    # pathway finding (generic; relational backend overrides)
    # ------------------------------------------------------------------

    def find_pathways(self, program: "MatchProgram", scope: TimeScope) -> "list[Pathway]":
        """Evaluate a compiled match program; default frontier traversal."""
        from repro.plan.traverse import evaluate_program

        return evaluate_program(self, program, scope)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def bulk(self):
        """Context manager batching many writes; no-op by default.

        The relational backend overrides this with a SQLite transaction;
        generators and the snapshot loader wrap their loads in it.
        """
        from contextlib import nullcontext

        return nullcontext()

    def node(self, uid: int, scope: TimeScope | None = None) -> NodeRecord | None:
        record = self.get_element(uid, scope or TimeScope.current())
        return record if isinstance(record, NodeRecord) else None

    def insert_symmetric_edge(
        self,
        class_name: str,
        left: int,
        right: int,
        fields: Mapping[str, Any] | None = None,
    ) -> tuple[int, int]:
        """Insert reciprocal edges for symmetric connectivity classes."""
        forward = self.insert_edge(class_name, left, right, fields)
        backward = self.insert_edge(class_name, right, left, fields)
        return forward, backward

    def bulk_insert_nodes(
        self, rows: Iterable[tuple[str, Mapping[str, Any]]]
    ) -> list[int]:
        return [self.insert_node(class_name, fields) for class_name, fields in rows]

    def describe(self) -> str:
        counts = self.counts()
        return (
            f"{self.name} [{self.schema.name}]: "
            f"{counts.get('nodes', 0)} nodes, {counts.get('edges', 0)} edges, "
            f"{counts.get('history_versions', 0)} history versions"
        )
