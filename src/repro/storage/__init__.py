"""Graph data management layer (Section 3.1).

Nepal "works as a layer over one or more underlying databases": this package
defines the backend interface (:class:`~repro.storage.base.GraphStore`), the
temporal write path shared by backends, the update-by-snapshot service for
feeds that deliver periodic dumps instead of change streams, and the two
backends — an in-memory property-graph engine (the Gremlin stand-in) and a
SQL-generating relational engine on SQLite (the PostgreSQL stand-in).
"""

from repro.storage.base import GraphStore, TimeScope
from repro.storage.chaos import CrashPoint, FaultInjectingStore, FaultPlan
from repro.storage.durable import CheckpointInfo, DurableStore, RecoveryReport, recover
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.storage.snapshot import Snapshot, SnapshotLoader, SnapshotStats, export_snapshot
from repro.storage.wal import WalRecord, WalWriter, compact_history, history_digest, scan_wal

__all__ = [
    "CheckpointInfo",
    "CrashPoint",
    "DurableStore",
    "FaultInjectingStore",
    "FaultPlan",
    "GraphStore",
    "MemGraphStore",
    "RecoveryReport",
    "RelationalStore",
    "Snapshot",
    "SnapshotLoader",
    "SnapshotStats",
    "TimeScope",
    "WalRecord",
    "WalWriter",
    "compact_history",
    "export_snapshot",
    "history_digest",
    "recover",
    "scan_wal",
]
