"""Update-by-snapshot service (Section 3.1).

"Several data sources provide periodic snapshots of their contents rather
than update streams, so the graph database management layer also provides
an update-by-snapshot service."

A :class:`Snapshot` is a full dump of a source's nodes and edges keyed by
externally assigned uids.  :class:`SnapshotLoader` diffs it against the
store's current state and emits the minimal insert/update/delete stream:
elements missing from the snapshot are logically deleted, new uids are
inserted (revived uids resume their version chains — flapping elements are
normal in inventory feeds), and elements whose fields changed get a new
version.  Because only changed elements produce history rows, this is what
keeps the 60-day history overhead at the few-percent level of §6.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ValidationError
from repro.model.elements import EdgeRecord
from repro.rpe.ast import Atom
from repro.schema.validate import validate_fields
from repro.storage.base import GraphStore, TimeScope


@dataclass(frozen=True)
class SnapshotNode:
    uid: int
    class_name: str
    fields: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SnapshotEdge:
    uid: int
    class_name: str
    source: int
    target: int
    fields: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class Snapshot:
    """One full dump from an inventory source."""

    nodes: list[SnapshotNode] = field(default_factory=list)
    edges: list[SnapshotEdge] = field(default_factory=list)

    def add_node(self, uid: int, class_name: str, **fields: Any) -> "Snapshot":
        self.nodes.append(SnapshotNode(uid, class_name, fields))
        return self

    def add_edge(
        self, uid: int, class_name: str, source: int, target: int, **fields: Any
    ) -> "Snapshot":
        self.edges.append(SnapshotEdge(uid, class_name, source, target, fields))
        return self

    def uids(self) -> set[int]:
        return {n.uid for n in self.nodes} | {e.uid for e in self.edges}

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible rendering of the snapshot."""
        return {
            "nodes": [
                {"uid": n.uid, "class": n.class_name, "fields": dict(n.fields)}
                for n in self.nodes
            ],
            "edges": [
                {
                    "uid": e.uid, "class": e.class_name,
                    "source": e.source, "target": e.target,
                    "fields": dict(e.fields),
                }
                for e in self.edges
            ],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Snapshot":
        snapshot = cls()
        for node in document.get("nodes", ()):
            snapshot.nodes.append(
                SnapshotNode(int(node["uid"]), str(node["class"]), dict(node.get("fields", {})))
            )
        for edge in document.get("edges", ()):
            snapshot.edges.append(
                SnapshotEdge(
                    int(edge["uid"]), str(edge["class"]),
                    int(edge["source"]), int(edge["target"]),
                    dict(edge.get("fields", {})),
                )
            )
        return snapshot

    def save(self, path) -> None:
        """Write the snapshot as JSON, crash-safely.

        The document goes to a temp file in the destination directory,
        is flushed and fsynced, then atomically renamed over *path* — a
        failure mid-write (full disk, crash, injected fault) leaves any
        previous snapshot at *path* intact instead of a torn JSON file.
        """
        import json
        import os
        import tempfile

        path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(path))
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "Snapshot":
        import json

        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def export_snapshot(store: GraphStore, scope: TimeScope | None = None) -> Snapshot:
    """Dump a store's visible graph as a :class:`Snapshot`.

    With a past-time scope this exports the network *as it was* — combined
    with :class:`SnapshotLoader` this moves graphs between backends (the
    data-integration scenario of §3.1) or rolls a store back for what-if
    analysis on another instance.
    """
    from repro.model.elements import EdgeRecord
    from repro.rpe.ast import Atom

    scope = scope or TimeScope.current()
    snapshot = Snapshot()
    node_atom = Atom("Node").bind(store.schema)
    edge_atom = Atom("Edge").bind(store.schema)
    for record in store.scan_atom(node_atom, scope):
        snapshot.nodes.append(
            SnapshotNode(record.uid, record.cls.name, dict(record.fields))
        )
    for record in store.scan_atom(edge_atom, scope):
        assert isinstance(record, EdgeRecord)
        snapshot.edges.append(
            SnapshotEdge(
                record.uid, record.cls.name,
                record.source_uid, record.target_uid, dict(record.fields),
            )
        )
    return snapshot


@dataclass(frozen=True)
class SnapshotStats:
    """What one snapshot application changed."""

    inserted_nodes: int = 0
    inserted_edges: int = 0
    updated: int = 0
    deleted: int = 0
    unchanged: int = 0

    def total_changes(self) -> int:
        return self.inserted_nodes + self.inserted_edges + self.updated + self.deleted


class SnapshotLoader:
    """Applies periodic snapshots to a store as minimal change streams."""

    def __init__(self, store: GraphStore):
        self.store = store
        self._node_atom = Atom("Node").bind(store.schema)
        self._edge_atom = Atom("Edge").bind(store.schema)

    def _current_state(self) -> dict[int, Any]:
        scope = TimeScope.current()
        current: dict[int, Any] = {}
        for record in self.store.scan_atom(self._node_atom, scope):
            current[record.uid] = record
        for record in self.store.scan_atom(self._edge_atom, scope):
            current[record.uid] = record
        return current

    def apply(self, snapshot: Snapshot) -> SnapshotStats:
        """Diff *snapshot* against the store and apply the changes."""
        seen = snapshot.uids()
        if len(seen) != len(snapshot.nodes) + len(snapshot.edges):
            raise ValidationError("snapshot reuses a uid across elements")
        current = self._current_state()

        inserted_nodes = inserted_edges = updated = deleted = unchanged = 0
        with self.store.bulk():
            # Deletes first: edges of deleted nodes go away by cascade, and
            # explicit edge deletes before node deletes stay idempotent.
            for uid, record in current.items():
                if uid not in seen and isinstance(record, EdgeRecord):
                    self.store.delete_element(uid)
                    deleted += 1
            for uid, record in current.items():
                if uid not in seen and not isinstance(record, EdgeRecord):
                    self.store.delete_element(uid)
                    deleted += 1

            for node in snapshot.nodes:
                existing = current.get(node.uid)
                if existing is None:
                    self.store.insert_node(node.class_name, node.fields, uid=node.uid)
                    inserted_nodes += 1
                elif self._changed(existing, node.class_name, node.fields):
                    self.store.update_element(node.uid, dict(node.fields))
                    updated += 1
                else:
                    unchanged += 1

            for edge in snapshot.edges:
                existing = current.get(edge.uid)
                if existing is None:
                    self.store.insert_edge(
                        edge.class_name, edge.source, edge.target, edge.fields, uid=edge.uid
                    )
                    inserted_edges += 1
                elif self._changed(existing, edge.class_name, edge.fields):
                    self.store.update_element(edge.uid, dict(edge.fields))
                    updated += 1
                else:
                    unchanged += 1

        return SnapshotStats(
            inserted_nodes=inserted_nodes,
            inserted_edges=inserted_edges,
            updated=updated,
            deleted=deleted,
            unchanged=unchanged,
        )

    def _changed(self, record: Any, class_name: str, fields: Mapping[str, Any]) -> bool:
        cls = self.store.schema.resolve(class_name)
        if record.cls is not cls:
            raise ValidationError(
                f"snapshot changes class of element {record.uid}: "
                f"{record.cls.name} -> {class_name} (classes are immutable)"
            )
        normalized = validate_fields(cls, fields)
        return dict(record.fields) != normalized
