"""Deterministic fault injection for any :class:`GraphStore`.

A :class:`FaultInjectingStore` decorates a real backend and injects
seedable, reproducible faults on every store method — transient
:class:`~repro.errors.BackendUnavailable` errors, hard-down outages,
failure-after-N-calls schedules, latency spikes and slow scans.  It is the
adversary the resilience layer (:mod:`repro.core.resilience`) is tested
against, and doubles as a zero-fault pass-through decorator for the
cross-backend differential harness (a wrapped backend must behave exactly
like the bare one when its :class:`FaultPlan` injects nothing).

Faults fire *before* the call is delegated, so a failed call never
partially applies — the at-most-once property the retry layer relies on
for writes.  All injection decisions come from a private
``random.Random(plan.seed)``, so a given (plan, call sequence) pair always
produces the same fault schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

import random

from repro.errors import BackendUnavailable
from repro.storage.base import GraphStore, TimeScope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.elements import EdgeRecord, ElementRecord
    from repro.model.pathway import Pathway
    from repro.plan.program import MatchProgram
    from repro.rpe.ast import Atom
    from repro.schema.classes import EdgeClass
    from repro.temporal.interval import Interval

#: Methods considered scans for ``slow_scan`` latency purposes.
_SCAN_METHODS = frozenset({"scan_atom", "find_pathways"})


class CrashPoint(BaseException):
    """A simulated process death, raised by a crash hook.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that no
    library ``except Exception`` cleanup path can run "after death" — the
    journal and data directory are left exactly as a SIGKILL would leave
    them, and the crash-matrix tests then recover from that residue.
    Raised by hooks installed on :class:`~repro.storage.durable.
    DurableStore` (``crash_hook``), following the same decorate-and-inject
    pattern as :class:`FaultInjectingStore`.
    """

    def __init__(self, point: str = ""):
        self.point = point
        super().__init__(point or "simulated crash")


def crash_at(point: str):
    """A crash hook that dies at the named durability point.

    >>> store = DurableStore(inner, path, crash_hook=crash_at("bulk.commit"))
    """

    def hook(reached: str) -> None:
        if reached == point:
            raise CrashPoint(point)

    return hook


@dataclass(frozen=True)
class FaultPlan:
    """A seedable fault schedule.

    The default plan injects nothing — a zero-fault wrapper must be
    indistinguishable from the bare backend.

    * ``error_rate`` — per-call probability of a transient failure;
    * ``fail_first`` — the first N calls *per method* fail transiently
      (then succeed), modelling a backend that recovers under retry;
    * ``fail_every`` — every Nth call (by the global call counter) fails;
    * ``fail_after`` — the store goes hard-down after N total calls;
    * ``hard_down`` — every call fails (a dead backend);
    * ``latency`` / ``latency_spike_rate`` / ``latency_spike`` — fixed
      per-call delay plus probabilistic spikes;
    * ``slow_scan`` — extra delay on ``scan_atom`` / ``find_pathways``;
    * ``methods`` — restrict injection to these method names (None = all).
    """

    seed: int = 0
    error_rate: float = 0.0
    fail_first: int = 0
    fail_every: int | None = None
    fail_after: int | None = None
    hard_down: bool = False
    latency: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike: float = 0.0
    slow_scan: float = 0.0
    methods: frozenset[str] | None = None

    def injects_nothing(self) -> bool:
        """True when this plan can never fault or delay a call."""
        return (
            not self.hard_down
            and self.error_rate == 0.0
            and self.fail_first == 0
            and self.fail_every is None
            and self.fail_after is None
            and self.latency == 0.0
            and self.latency_spike_rate == 0.0
            and self.slow_scan == 0.0
        )


@dataclass(frozen=True)
class InjectedFault:
    """One injected fault, for post-mortem assertions."""

    call_index: int
    method: str
    kind: str


@dataclass
class ChaosCounters:
    """Per-wrapper call and fault accounting."""

    total_calls: int = 0
    calls: dict[str, int] = field(default_factory=dict)
    faults: dict[str, int] = field(default_factory=dict)
    log: list[InjectedFault] = field(default_factory=list)

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())


class FaultInjectingStore(GraphStore):
    """Wraps any backend and injects faults per a :class:`FaultPlan`."""

    def __init__(
        self,
        inner: GraphStore,
        plan: FaultPlan | None = None,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        super().__init__(inner.schema, clock=inner.clock, name=inner.name)
        self._inner = inner
        self.plan = plan or FaultPlan()
        self._sleeper = sleeper
        self._rng = random.Random(self.plan.seed)
        self.chaos = ChaosCounters()

    @property
    def inner(self) -> GraphStore:
        """The wrapped backend."""
        return self._inner

    @property
    def data_version(self) -> int:
        return self._inner.data_version

    def bump_data_version(self) -> None:
        self._inner.bump_data_version()

    def restore_data_version(self, version: int) -> None:
        self._inner.restore_data_version(version)

    @property
    def supports_snapshots(self) -> bool:
        return self._inner.supports_snapshots

    # uid-allocation protocol: pure delegation (not faultable I/O).
    def reserve_uid(self) -> int:
        return self._inner.reserve_uid()

    def observe_uid(self, external_id: int) -> None:
        self._inner.observe_uid(external_id)

    @property
    def last_uid(self) -> int:
        return self._inner.last_uid

    def known_uids(self) -> list[int]:
        return self._inner.known_uids()

    # ------------------------------------------------------------------
    # schedule control
    # ------------------------------------------------------------------

    def heal(self) -> None:
        """Stop injecting anything (counters and call history persist)."""
        self.plan = FaultPlan(seed=self.plan.seed)

    def set_hard_down(self, down: bool = True) -> None:
        """Flip the backend into (or out of) a total outage."""
        self.plan = replace(self.plan, hard_down=down)

    # ------------------------------------------------------------------
    # fault engine
    # ------------------------------------------------------------------

    def _fault(self, method: str, kind: str) -> None:
        self.chaos.faults[kind] = self.chaos.faults.get(kind, 0) + 1
        self.chaos.log.append(InjectedFault(self.chaos.total_calls, method, kind))
        raise BackendUnavailable(
            f"injected {kind} fault on {self.name}.{method} "
            f"(call #{self.chaos.total_calls})",
            store=self.name,
        )

    def _before(self, method: str) -> None:
        counters = self.chaos
        counters.total_calls += 1
        method_calls = counters.calls.get(method, 0) + 1
        counters.calls[method] = method_calls
        plan = self.plan
        if plan.methods is not None and method not in plan.methods:
            return
        if plan.hard_down:
            self._fault(method, "hard_down")
        if plan.fail_after is not None and counters.total_calls > plan.fail_after:
            self._fault(method, "hard_down")
        delay = plan.latency
        if method in _SCAN_METHODS:
            delay += plan.slow_scan
        if plan.latency_spike_rate and self._rng.random() < plan.latency_spike_rate:
            delay += plan.latency_spike
        if delay > 0.0:
            self._sleeper(delay)
        if method_calls <= plan.fail_first:
            self._fault(method, "transient")
        if plan.fail_every is not None and counters.total_calls % plan.fail_every == 0:
            self._fault(method, "transient")
        if plan.error_rate and self._rng.random() < plan.error_rate:
            self._fault(method, "transient")

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
    ) -> int:
        self._before("insert_node")
        return self._inner.insert_node(class_name, fields, uid=uid)

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
    ) -> int:
        self._before("insert_edge")
        return self._inner.insert_edge(class_name, source, target, fields, uid=uid)

    def update_element(self, uid: int, changes: Mapping[str, Any]) -> None:
        self._before("update_element")
        self._inner.update_element(uid, changes)

    def delete_element(self, uid: int) -> None:
        self._before("delete_element")
        self._inner.delete_element(uid)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def scan_atom(self, atom: "Atom", scope: TimeScope) -> "list[ElementRecord]":
        self._before("scan_atom")
        return self._inner.scan_atom(atom, scope)

    def get_element(self, uid: int, scope: TimeScope) -> "ElementRecord | None":
        self._before("get_element")
        return self._inner.get_element(uid, scope)

    def get_many(
        self, uids: "Sequence[int]", scope: TimeScope
    ) -> "dict[int, ElementRecord]":
        self._before("get_many")
        return self._inner.get_many(uids, scope)

    def versions(self, uid: int, window: "Interval") -> "list[ElementRecord]":
        self._before("versions")
        return self._inner.versions(uid, window)

    def out_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "list[EdgeRecord]":
        self._before("out_edges")
        return self._inner.out_edges(node_uid, scope, classes)

    def in_edges(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "list[EdgeRecord]":
        self._before("in_edges")
        return self._inner.in_edges(node_uid, scope, classes)

    # ------------------------------------------------------------------
    # statistics & pathways
    # ------------------------------------------------------------------

    def out_edges_many(
        self,
        node_uids: "Sequence[int]",
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "dict[int, list[EdgeRecord]]":
        self._before("out_edges_many")
        return self._inner.out_edges_many(node_uids, scope, classes)

    def in_edges_many(
        self,
        node_uids: "Sequence[int]",
        scope: TimeScope,
        classes: "Sequence[EdgeClass] | None" = None,
    ) -> "dict[int, list[EdgeRecord]]":
        self._before("in_edges_many")
        return self._inner.in_edges_many(node_uids, scope, classes)

    def class_count(self, class_name: str) -> int:
        self._before("class_count")
        return self._inner.class_count(class_name)

    def class_count_at(self, class_name: str, scope: TimeScope) -> int | None:
        self._before("class_count_at")
        return self._inner.class_count_at(class_name, scope)

    def counts(self) -> dict[str, int]:
        self._before("counts")
        return self._inner.counts()

    def storage_cells(self) -> int:
        self._before("storage_cells")
        return self._inner.storage_cells()

    def find_pathways(
        self, program: "MatchProgram", scope: TimeScope
    ) -> "list[Pathway]":
        # Delegated (not re-run through the generic traversal) so the
        # wrapped backend keeps its own evaluation strategy — the
        # relational store's set-at-a-time SQL in particular.
        self._before("find_pathways")
        return self._inner.find_pathways(program, scope)

    # ------------------------------------------------------------------
    # convenience delegation
    # ------------------------------------------------------------------

    def bulk(self):
        # Entering a batch is not a faultable unit of work; the writes
        # inside it are individually injected.
        return self._inner.bulk()

    def bulk_insert_nodes(
        self, rows: "Iterable[tuple[str, Mapping[str, Any]]]"
    ) -> list[int]:
        return [self.insert_node(class_name, fields) for class_name, fields in rows]
