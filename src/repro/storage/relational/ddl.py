"""DDL generation: per-class tables and INHERITS-replicating views.

For every *concrete* class ``X`` two physical tables exist:

* ``c_X`` — current rows (open system period);
* ``h_X`` — history rows (closed system period).

For *every* class (abstract included) two views exist:

* ``v_X`` — the current extent of the class subtree, i.e. what Postgres
  ``SELECT * FROM X`` gives with INHERITS;
* ``vh_X`` — the historical extent (current + history), the analogue of the
  paper's ``X__historical`` view over ``temporal_tables``.

Each view projects the columns of ``X`` itself (a subclass row seen through
a parent view exposes only the parent's fields — Postgres semantics) plus a
``class_`` literal naming the concrete class so rows can be materialized
back into typed records.

Field columns are prefixed ``f_`` to avoid keyword collisions; structured
fields (containers, composites) are stored as JSON text.
"""

from __future__ import annotations

from repro.schema.classes import EdgeClass, ElementClass
from repro.schema.registry import Schema

INF_SQL = "9e999"  # SQLite parses this as +Infinity — the open period bound.


def field_column(field_name: str) -> str:
    return f"f_{field_name}"


def current_table(cls: ElementClass) -> str:
    return f"c_{cls.name}"


def history_table(cls: ElementClass) -> str:
    return f"h_{cls.name}"


def current_view(cls: ElementClass) -> str:
    return f"v_{cls.name}"


def historical_view(cls: ElementClass) -> str:
    return f"vh_{cls.name}"


def base_columns(cls: ElementClass) -> list[str]:
    """The non-field columns every table carries."""
    columns = ["id_", "sys_start", "sys_end"]
    if isinstance(cls, EdgeClass):
        columns += ["source_id_", "target_id_"]
    return columns


def view_columns(cls: ElementClass) -> list[str]:
    """Columns a view of *cls* projects (base + own-and-inherited fields)."""
    columns = base_columns(cls)
    columns += [field_column(name) for name in cls.fields if name != "id"]
    return columns


def _column_type(cls: ElementClass, field_name: str) -> str:
    type_name = cls.fields[field_name].type.name
    if type_name == "integer":
        return "INTEGER"
    if type_name in ("float", "timestamp"):
        return "REAL"
    if type_name == "boolean":
        return "INTEGER"
    return "TEXT"  # strings, ip addresses, JSON-encoded structures


def create_statements(schema: Schema) -> list[str]:
    """All CREATE TABLE / CREATE VIEW / CREATE INDEX statements."""
    statements: list[str] = [
        "CREATE TABLE elements (id_ INTEGER PRIMARY KEY, class_name TEXT NOT NULL)"
    ]
    for root in (schema.node_root, schema.edge_root):
        for cls in root.subtree():
            if not cls.abstract:
                statements.extend(_table_statements(cls))
            statements.extend(_view_statements(cls))
    return statements


def _table_statements(cls: ElementClass) -> list[str]:
    columns = ["id_ INTEGER NOT NULL", "sys_start REAL NOT NULL", "sys_end REAL NOT NULL"]
    if isinstance(cls, EdgeClass):
        columns += ["source_id_ INTEGER NOT NULL", "target_id_ INTEGER NOT NULL"]
    for field_name in cls.fields:
        if field_name == "id":
            continue
        columns.append(f"{field_column(field_name)} {_column_type(cls, field_name)}")
    statements = []
    for table in (current_table(cls), history_table(cls)):
        statements.append(f"CREATE TABLE {table} ({', '.join(columns)})")
        statements.append(f"CREATE INDEX idx_{table}_id ON {table} (id_)")
        if isinstance(cls, EdgeClass):
            statements.append(
                f"CREATE INDEX idx_{table}_src ON {table} (source_id_)"
            )
            statements.append(
                f"CREATE INDEX idx_{table}_tgt ON {table} (target_id_)"
            )
    return statements


def _view_statements(cls: ElementClass) -> list[str]:
    projected = view_columns(cls)
    concrete = cls.concrete_subtree()
    current_branches = []
    historical_branches = []
    for sub in concrete:
        select_list = ", ".join(projected) + f", '{sub.name}' AS class_"
        current_branches.append(f"SELECT {select_list} FROM {current_table(sub)}")
        historical_branches.append(f"SELECT {select_list} FROM {current_table(sub)}")
        historical_branches.append(f"SELECT {select_list} FROM {history_table(sub)}")
    if not concrete:
        # An abstract leaf (schema oddity): empty views keep SQL generation uniform.
        select_list = ", ".join(f"NULL AS {column}" for column in projected)
        empty = f"SELECT {select_list}, NULL AS class_ WHERE 0"
        current_branches = [empty]
        historical_branches = [empty]
    statements = [
        f"CREATE VIEW {current_view(cls)} AS "
        + " UNION ALL ".join(current_branches),
        f"CREATE VIEW {historical_view(cls)} AS "
        + " UNION ALL ".join(historical_branches),
    ]
    return statements
