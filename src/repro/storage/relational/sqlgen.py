"""SQL generation for set-at-a-time pathway evaluation (Section 5.2).

Partial paths live in TEMP tables, one per automaton state, with the layout
of the paper's examples: a ``uid_list`` of the elements consumed so far (a
comma-separated list standing in for the Postgres array), the ``frontier``
node id where the path currently sits, the kind of the last consumed
element, and the anchor uid for reassembly.  The operators:

* **Select** seeds the start-state table from the anchor atom's class view;
* **Extend** inserts into the successor state's table by joining the edge or
  node class view on the frontier, appending to ``uid_list`` and enforcing
  the no-cycle predicate — the paper's
  ``H.id_ != ANY(T.uid_list)`` becomes an ``instr`` check on the CSV;
* **Union** copies rows between state tables (reified epsilon transitions);
* **ExtendBlock** fuses a linear chain of Extends into a single multi-join
  insert, "keeping the data in the database for multiple operators" (§5.2).

Backward evaluation uses the same operators with source/target swapped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.plan.operators import ExtendOp
from repro.rpe.ast import Atom
from repro.schema.classes import NodeClass
from repro.schema.datatypes import PrimitiveType
from repro.schema.registry import Schema
from repro.storage.base import TimeScope
from repro.storage.relational import ddl
from repro.storage.relational.temporal import scope_predicate

FORWARD = "forward"
BACKWARD = "backward"

_OP_SQL = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


@dataclass(frozen=True)
class Statement:
    sql: str
    params: tuple = ()


def state_table(tag: str, state: int) -> str:
    return f"tmp_{tag}_s{state}"


def create_state_table(name: str) -> Statement:
    return Statement(
        f"CREATE TEMP TABLE {name} ("
        "uid_list TEXT PRIMARY KEY, "
        "frontier INTEGER NOT NULL, "
        "last_kind TEXT NOT NULL, "
        "anchor_uid INTEGER NOT NULL) WITHOUT ROWID"
    )


def drop_state_table(name: str) -> Statement:
    return Statement(f"DROP TABLE IF EXISTS {name}")


def _cycle_check(path_alias: str, element_alias: str) -> str:
    return (
        f"instr(',' || {path_alias}.uid_list || ',', "
        f"',' || {element_alias}.id_ || ',') = 0"
    )


def atom_conditions(
    atom: Atom, alias: str, scope: TimeScope
) -> tuple[list[str], list, bool]:
    """WHERE conjuncts (and params) for an atom; third value reports whether
    some predicate could not be pushed into SQL (caller must post-verify)."""
    assert atom.cls is not None
    conditions: list[str] = []
    params: list = []
    needs_post_filter = False
    predicate_sql, predicate_params = scope_predicate(alias, scope)
    conditions.append(predicate_sql)
    params.extend(predicate_params)
    for predicate in atom.predicates:
        if predicate.name == "id":
            conditions.append(f"{alias}.id_ {_OP_SQL[predicate.op]} ?")
            params.append(predicate.value)
            continue
        if "." in predicate.name:
            # Dotted path into JSON-encoded structured data: post-verify.
            needs_post_filter = True
            continue
        field = atom.cls.fields[predicate.name]
        if isinstance(field.type, PrimitiveType):
            value = predicate.value
            if isinstance(value, bool):
                value = int(value)
            conditions.append(
                f"{alias}.{ddl.field_column(predicate.name)} {_OP_SQL[predicate.op]} ?"
            )
            params.append(value)
        else:
            # Structured fields are JSON text; evaluated in Python afterwards.
            needs_post_filter = True
    return conditions, params, needs_post_filter


class PathSql:
    """Generates the statements of one directional evaluation pass."""

    def __init__(self, schema: Schema, scope: TimeScope, direction: str, tag: str):
        if direction not in (FORWARD, BACKWARD):
            raise StorageError(f"unknown direction {direction!r}")
        self.schema = schema
        self.scope = scope
        self.direction = direction
        self.tag = tag
        self.needs_post_filter = False

    # -- helpers ------------------------------------------------------------

    def _view(self, cls) -> str:
        if self.scope.is_current:
            return ddl.current_view(cls)
        return ddl.historical_view(cls)

    def _edge_join(self, alias: str) -> tuple[str, str]:
        """(join condition on frontier, next-frontier expression)."""
        if self.direction == FORWARD:
            return f"{alias}.source_id_ = T.frontier", f"{alias}.target_id_"
        return f"{alias}.target_id_ = T.frontier", f"{alias}.source_id_"

    def _edge_seed_frontier(self) -> str:
        return "target_id_" if self.direction == FORWARD else "source_id_"

    # -- Select -------------------------------------------------------------------

    def anchor_select(self, table: str, atom: Atom, seed_uids=None) -> Statement:
        """Seed the start-state table from the anchor atom."""
        assert atom.cls is not None
        conditions, params, post = atom_conditions(atom, "A", self.scope)
        self.needs_post_filter |= post
        if seed_uids is not None:
            placeholders = ", ".join("?" for _ in seed_uids)
            conditions.append(f"A.id_ IN ({placeholders})")
            params.extend(seed_uids)
        if isinstance(atom.cls, NodeClass):
            frontier, kind = "A.id_", "node"
        else:
            frontier, kind = f"A.{self._edge_seed_frontier()}", "edge"
        sql = (
            f"INSERT OR IGNORE INTO {table} (uid_list, frontier, last_kind, anchor_uid) "
            f"SELECT CAST(A.id_ AS TEXT), {frontier}, '{kind}', A.id_ "
            f"FROM {self._view(atom.cls)} A WHERE " + " AND ".join(conditions)
        )
        return Statement(sql, tuple(params))

    # -- Extend -------------------------------------------------------------------

    def extend(self, op: ExtendOp, from_table: str, to_table: str) -> list[Statement]:
        """One-element extension; wildcards expand to edge + node variants."""
        statements: list[Statement] = []
        if op.consumes in ("edge", "any"):
            atom = op.atom if op.atom is not None and op.atom.is_edge_atom else None
            statements.append(self._extend_edge(from_table, to_table, atom))
        if op.consumes in ("node", "any"):
            atom = op.atom if op.atom is not None and op.atom.is_node_atom else None
            statements.append(self._extend_node(from_table, to_table, atom))
        return statements

    def _extend_edge(self, from_table: str, to_table: str, atom: Atom | None) -> Statement:
        cls = atom.cls if atom is not None else self.schema.edge_root
        join, next_frontier = self._edge_join("H")
        conditions = [
            "T.last_kind = 'node'",
            join,
            _cycle_check("T", "H"),
        ]
        params: list = []
        if atom is not None:
            atom_sql, atom_params, post = atom_conditions(atom, "H", self.scope)
            self.needs_post_filter |= post
            conditions += atom_sql
            params += atom_params
        else:
            predicate_sql, predicate_params = scope_predicate("H", self.scope)
            conditions.append(predicate_sql)
            params += predicate_params
        sql = (
            f"INSERT OR IGNORE INTO {to_table} (uid_list, frontier, last_kind, anchor_uid) "
            f"SELECT T.uid_list || ',' || H.id_, {next_frontier}, 'edge', T.anchor_uid "
            f"FROM {from_table} T JOIN {self._view(cls)} H ON {join} "
            f"WHERE " + " AND ".join(conditions)
        )
        return Statement(sql, tuple(params))

    def _extend_node(self, from_table: str, to_table: str, atom: Atom | None) -> Statement:
        cls = atom.cls if atom is not None else self.schema.node_root
        conditions = [
            "T.last_kind = 'edge'",
            _cycle_check("T", "V"),
        ]
        params: list = []
        if atom is not None:
            atom_sql, atom_params, post = atom_conditions(atom, "V", self.scope)
            self.needs_post_filter |= post
            conditions += atom_sql
            params += atom_params
        else:
            predicate_sql, predicate_params = scope_predicate("V", self.scope)
            conditions.append(predicate_sql)
            params += predicate_params
        sql = (
            f"INSERT OR IGNORE INTO {to_table} (uid_list, frontier, last_kind, anchor_uid) "
            f"SELECT T.uid_list || ',' || V.id_, V.id_, 'node', T.anchor_uid "
            f"FROM {from_table} T JOIN {self._view(cls)} V ON V.id_ = T.frontier "
            f"WHERE " + " AND ".join(conditions)
        )
        return Statement(sql, tuple(params))

    # -- ExtendBlock ----------------------------------------------------------------

    @staticmethod
    def fusable(steps: tuple[ExtendOp, ...]) -> bool:
        """Steps of known kind (atoms or node/edge wildcards) alternating
        node/edge can be fused into one multi-join insert."""
        kinds = [step.consumes for step in steps]
        if "any" in kinds:
            return False
        return all(a != b for a, b in zip(kinds, kinds[1:]))

    def extend_block(
        self, steps: tuple[ExtendOp, ...], from_table: str, to_table: str
    ) -> Statement:
        """Fused multi-join Extend — one insert for the whole chain."""
        assert self.fusable(steps)
        joins: list[str] = []
        conditions: list[str] = []
        params: list = []
        frontier = "T.frontier"
        uid_parts = ["T.uid_list"]
        first_kind = "node" if steps[0].consumes == "edge" else "edge"
        conditions.append(f"T.last_kind = '{first_kind}'")
        last_kind = first_kind
        aliases_so_far: list[str] = []
        for index, step in enumerate(steps):
            atom = step.atom
            alias = f"X{index}"
            if step.consumes == "edge":
                join_cond = (
                    f"{alias}.source_id_ = {frontier}"
                    if self.direction == FORWARD
                    else f"{alias}.target_id_ = {frontier}"
                )
                next_frontier = (
                    f"{alias}.target_id_" if self.direction == FORWARD else f"{alias}.source_id_"
                )
                frontier = next_frontier
                last_kind = "edge"
            else:
                join_cond = f"{alias}.id_ = {frontier}"
                last_kind = "node"
            if atom is not None:
                view = self._view(atom.cls)
            else:
                wildcard_root = (
                    self.schema.edge_root if step.consumes == "edge" else self.schema.node_root
                )
                view = self._view(wildcard_root)
            joins.append(f"JOIN {view} {alias} ON {join_cond}")
            conditions.append(_cycle_check("T", alias))
            for other in aliases_so_far:
                conditions.append(f"{alias}.id_ <> {other}.id_")
            if atom is not None:
                atom_sql, atom_params, post = atom_conditions(atom, alias, self.scope)
                self.needs_post_filter |= post
                conditions += atom_sql
                params += atom_params
            else:
                predicate_sql, predicate_params = scope_predicate(alias, self.scope)
                conditions.append(predicate_sql)
                params += predicate_params
            uid_parts.append(f"{alias}.id_")
            aliases_so_far.append(alias)
        uid_expression = " || ',' || ".join(uid_parts)
        sql = (
            f"INSERT OR IGNORE INTO {to_table} (uid_list, frontier, last_kind, anchor_uid) "
            f"SELECT {uid_expression}, {frontier}, '{last_kind}', T.anchor_uid "
            f"FROM {from_table} T " + " ".join(joins) + " WHERE " + " AND ".join(conditions)
        )
        return Statement(sql, tuple(params))

    # -- Union -----------------------------------------------------------------------

    @staticmethod
    def union(from_table: str, to_table: str) -> Statement:
        return Statement(
            f"INSERT OR IGNORE INTO {to_table} "
            f"SELECT uid_list, frontier, last_kind, anchor_uid FROM {from_table}"
        )
