"""Temporal predicates — the SQL side of the ``temporal_tables`` emulation.

The paper evaluates a timeslice query by "adding the following predicate to
the Select and Extend queries: ``H.sys_period @> '...'::timestamptz``".
SQLite has no range type, so the system period is the (sys_start, sys_end)
column pair with ``sys_end = +Infinity`` for current rows; the predicates
here are the expansion of the ``@>`` (containment) and ``&&`` (overlap)
operators.
"""

from __future__ import annotations

from repro.storage.base import TimeScope


def scope_predicate(alias: str, scope: TimeScope) -> tuple[str, list[float]]:
    """SQL predicate (with parameters) selecting versions visible in *scope*.

    Meant for the ``vh_*`` historical views; under a current scope, callers
    should prefer the ``v_*`` views (the predicate returned here still works
    but scans history needlessly).
    """
    prefix = f"{alias}." if alias else ""
    if scope.is_current:
        return (f"{prefix}sys_end = 9e999", [])
    if scope.kind == TimeScope.AT:
        return (
            f"({prefix}sys_start <= ? AND ? < {prefix}sys_end)",
            [scope.start, scope.start],
        )
    # range: version period overlaps [start, end)
    return (
        f"({prefix}sys_start < ? AND {prefix}sys_end > ?)",
        [scope.end, scope.start],
    )


def view_for_scope(cls_view_current: str, cls_view_historical: str, scope: TimeScope) -> str:
    """Pick the narrower view when the scope only needs current rows."""
    return cls_view_current if scope.is_current else cls_view_historical
