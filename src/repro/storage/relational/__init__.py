"""Relational backend: Nepal's PostgreSQL target, reproduced on SQLite.

The paper stores "one table for each distinct Node and Edge class", uses
Postgres ``INHERITS`` for class hierarchies, the ``temporal_tables``
extension for transaction time, and evaluates Extend operators as bulk
joins materializing TEMP tables of partial paths (§5.2–5.3).

SQLite has none of those extensions, so this package regenerates their
behaviour with plain SQL — which the paper itself sanctions: "The INHERITS
feature of Postgres is implemented by view management, so its function can
be replicated in other relational systems."

* ``ddl.py`` — per-concrete-class tables plus per-class UNION ALL views
  (``v_X`` current, ``vh_X`` current+history) replicating INHERITS;
* ``temporal.py`` — the current/history table pair and the write path that
  ``temporal_tables`` triggers would perform;
* ``sqlgen.py`` — the Select/Extend/Union TEMP-table SQL of §5.2, with
  uid-list cycle checks and optional ExtendBlock fusion;
* ``store.py`` — the :class:`~repro.storage.base.GraphStore` implementation
  and the set-at-a-time ``find_pathways`` override.
"""

from repro.storage.relational.store import RelationalStore

__all__ = ["RelationalStore"]
