"""The relational (SQLite) implementation of :class:`GraphStore`.

One current + one history table per concrete class (the per-class
partitioning whose payoff §6 measures), INHERITS-style views for class
subtree scans, and a set-at-a-time ``find_pathways`` that executes the
Select/Extend/Union TEMP-table program of §5.2 entirely inside SQLite,
shipping only the final uid lists back to Python for materialization.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import (
    StorageError,
    UniquenessError,
    UnknownElementError,
)
from repro.model.elements import EdgeRecord, ElementRecord, NodeRecord
from repro.model.pathway import Pathway
from repro.plan.operators import ExtendOp, UnionOp, fuse_extend_blocks, lower_affix
from repro.plan.program import CompiledSplit, MatchProgram
from repro.rpe.ast import Atom
from repro.rpe.match import matches_pathway
from repro.rpe.nfa import PathwayNfa
from repro.schema.classes import EdgeClass, ElementClass, NodeClass
from repro.schema.datatypes import BOOLEAN, PrimitiveType
from repro.schema.registry import Schema
from repro.schema.validate import validate_edge_endpoints, validate_fields
from repro.storage.base import GraphStore, TimeScope
from repro.storage.relational import ddl, sqlgen
from repro.storage.relational.temporal import scope_predicate
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import Interval
from repro.util.ids import IdAllocator


class RelationalStore(GraphStore):
    """Temporal graph database on SQLite with generated SQL."""

    def __init__(
        self,
        schema: Schema,
        clock: TransactionClock | None = None,
        name: str = "relational",
        path: str = ":memory:",
        use_extend_block: bool = True,
    ):
        super().__init__(schema, clock=clock, name=name)
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.isolation_level = None  # explicit transaction control
        self._conn.execute("PRAGMA synchronous = OFF")
        self._conn.execute("PRAGMA temp_store = MEMORY")
        self.use_extend_block = use_extend_block
        self._ids = IdAllocator()
        self._class_of: dict[int, ElementClass] = {}
        self._is_current: dict[int, bool] = {}
        self._edge_endpoints: dict[int, tuple[int, int]] = {}
        self._temp_counter = 0
        existing = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='elements'"
        ).fetchone()
        if existing is None:
            for statement in ddl.create_statements(schema):
                self._conn.execute(statement)
        else:
            self._rebuild_caches()

    def _rebuild_caches(self) -> None:
        """Reopen an existing database file: restore the in-memory indexes.

        The tables are the source of truth; the uid allocator, class map,
        currency flags and edge endpoints are all derivable from them, so a
        relational store is fully durable across processes.
        """
        for uid, class_name in self._conn.execute(
            "SELECT id_, class_name FROM elements"
        ):
            try:
                cls = self.schema.resolve(class_name)
            except Exception as exc:  # pragma: no cover - schema mismatch
                raise StorageError(
                    f"database contains class {class_name!r} unknown to "
                    f"schema {self.schema.name!r}"
                ) from exc
            self._class_of[uid] = cls
            self._is_current[uid] = False
            self._ids.observe(uid)
        for root in (self.schema.node_root, self.schema.edge_root):
            for cls in root.concrete_subtree():
                for row in self._conn.execute(
                    f"SELECT id_ FROM {ddl.current_table(cls)}"
                ):
                    self._is_current[row[0]] = True
                if isinstance(cls, EdgeClass):
                    for table in (ddl.current_table(cls), ddl.history_table(cls)):
                        for uid, source, target in self._conn.execute(
                            f"SELECT id_, source_id_, target_id_ FROM {table}"
                        ):
                            self._edge_endpoints[uid] = (source, target)
        # Transaction time must keep moving forward across restarts.
        latest = 0.0
        for root in (self.schema.node_root, self.schema.edge_root):
            for cls in root.concrete_subtree():
                for table in (ddl.current_table(cls), ddl.history_table(cls)):
                    row = self._conn.execute(
                        f"SELECT MAX(sys_start) FROM {table}"
                    ).fetchone()
                    if row[0] is not None:
                        latest = max(latest, row[0])
        if latest and self.clock.now() < latest:
            self.clock.set(latest)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def _encode_fields(self, cls: ElementClass, fields: Mapping[str, Any]) -> dict[str, Any]:
        encoded: dict[str, Any] = {}
        for field_name, spec in cls.fields.items():
            if field_name == "id":
                continue
            value = fields.get(field_name)
            column = ddl.field_column(field_name)
            if value is None:
                encoded[column] = None
            elif isinstance(spec.type, PrimitiveType):
                encoded[column] = int(value) if spec.type is BOOLEAN else value
            else:
                encoded[column] = json.dumps(value)
        return encoded

    def _decode_row(self, cls: ElementClass, row: sqlite3.Row) -> dict[str, Any]:
        fields: dict[str, Any] = {}
        for field_name, spec in cls.fields.items():
            if field_name == "id":
                continue
            value = row[ddl.field_column(field_name)]
            if value is None:
                continue
            if isinstance(spec.type, PrimitiveType):
                fields[field_name] = bool(value) if spec.type is BOOLEAN else value
            else:
                fields[field_name] = json.loads(value)
        return fields

    def _record_from_row(self, cls: ElementClass, row: sqlite3.Row) -> ElementRecord:
        period = Interval(row["sys_start"], row["sys_end"])
        fields = self._decode_row(cls, row)
        if isinstance(cls, EdgeClass):
            return EdgeRecord(
                uid=row["id_"], cls=cls, fields=fields, period=period,
                source_uid=row["source_id_"], target_uid=row["target_id_"],
            )
        return NodeRecord(uid=row["id_"], cls=cls, fields=fields, period=period)

    # ------------------------------------------------------------------
    # uid allocation (shared protocol with the in-memory backend)
    # ------------------------------------------------------------------

    def reserve_uid(self) -> int:
        return self._ids.next()

    def observe_uid(self, external_id: int) -> None:
        self._ids.observe(external_id)

    @property
    def last_uid(self) -> int:
        return self._ids.last

    def known_uids(self) -> list[int]:
        """Every uid ever admitted — current, historical, or deleted."""
        return sorted(self._class_of)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Wrap many writes in one SQLite transaction (bulk loading)."""
        self._conn.execute("BEGIN")
        try:
            yield
        except Exception:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def _allocate_uid(self, uid: int | None, cls: ElementClass) -> tuple[int, bool]:
        if uid is None:
            return self._ids.next(), False
        existing = self._class_of.get(uid)
        if existing is None:
            self._ids.observe(uid)
            return uid, False
        if self._is_current.get(uid, False):
            raise UniquenessError(f"element id {uid} already exists")
        if existing is not cls:
            raise UniquenessError(
                f"element id {uid} was a {existing.name}, cannot revive as {cls.name}"
            )
        return uid, True

    def _insert_row(
        self,
        cls: ElementClass,
        uid: int,
        fields: Mapping[str, Any],
        endpoints: tuple[int, int] | None,
        revived: bool = False,
    ) -> None:
        encoded = self._encode_fields(cls, fields)
        columns = ["id_", "sys_start", "sys_end"]
        values: list[Any] = [uid, self.clock.now(), float("inf")]
        if endpoints is not None:
            columns += ["source_id_", "target_id_"]
            values += list(endpoints)
        columns += list(encoded)
        values += list(encoded.values())
        placeholders = ", ".join("?" for _ in values)
        self._conn.execute(
            f"INSERT INTO {ddl.current_table(cls)} ({', '.join(columns)}) "
            f"VALUES ({placeholders})",
            values,
        )
        if not revived:
            self._conn.execute(
                "INSERT INTO elements (id_, class_name) VALUES (?, ?)", (uid, cls.name)
            )
        self._class_of[uid] = cls
        self._is_current[uid] = True
        if endpoints is not None:
            self._edge_endpoints[uid] = endpoints
        self.bump_data_version()

    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
    ) -> int:
        cls = self.schema.node_class(class_name)
        normalized = validate_fields(cls, fields or {})
        uid, revived = self._allocate_uid(uid, cls)
        self._insert_row(cls, uid, normalized, endpoints=None, revived=revived)
        return uid

    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
    ) -> int:
        cls = self.schema.edge_class(class_name)
        for endpoint in (source, target):
            endpoint_cls = self._class_of.get(endpoint)
            if endpoint_cls is None or not self._is_current.get(endpoint, False):
                raise UnknownElementError(f"edge endpoint {endpoint} is not a current node")
            if not isinstance(endpoint_cls, NodeClass):
                raise UnknownElementError(f"edge endpoint {endpoint} is not a node")
        validate_edge_endpoints(
            self.schema, cls, self._class_of[source], self._class_of[target]  # type: ignore[arg-type]
        )
        normalized = validate_fields(cls, fields or {})
        uid, revived = self._allocate_uid(uid, cls)
        if revived and self._edge_endpoints.get(uid) != (source, target):
            raise UniquenessError(
                f"edge {uid} endpoints are immutable: "
                f"{self._edge_endpoints.get(uid)} != ({source}, {target})"
            )
        self._insert_row(cls, uid, normalized, endpoints=(source, target), revived=revived)
        return uid

    def _close_current_row(self, cls: ElementClass, uid: int, now: float) -> sqlite3.Row:
        """Move the current row of *uid* into history, returning it."""
        self._conn.row_factory = sqlite3.Row
        cursor = self._conn.execute(
            f"SELECT * FROM {ddl.current_table(cls)} WHERE id_ = ?", (uid,)
        )
        row = cursor.fetchone()
        self._conn.row_factory = None
        if row is None:
            raise UnknownElementError(f"element {uid} has no current version")
        if now > row["sys_start"]:
            columns = row.keys()
            values = [row[column] for column in columns]
            values[columns.index("sys_end")] = now
            placeholders = ", ".join("?" for _ in values)
            self._conn.execute(
                f"INSERT INTO {ddl.history_table(cls)} ({', '.join(columns)}) "
                f"VALUES ({placeholders})",
                values,
            )
        self._conn.execute(
            f"DELETE FROM {ddl.current_table(cls)} WHERE id_ = ?", (uid,)
        )
        return row

    def update_element(self, uid: int, changes: Mapping[str, Any]) -> None:
        cls = self._class_of.get(uid)
        if cls is None or not self._is_current.get(uid, False):
            raise UnknownElementError(f"cannot update unknown or deleted element {uid}")
        current = self.get_element(uid, TimeScope.current())
        if current is None:
            raise UnknownElementError(f"element {uid} has no current version")
        fields = dict(current.fields)
        for field_name, value in changes.items():
            if value is None:
                fields.pop(field_name, None)
            else:
                fields[field_name] = value
        # Validate *before* touching the tables: a rejected update must not
        # close the current version.
        normalized = validate_fields(cls, fields)
        now = self.clock.now()
        row = self._close_current_row(cls, uid, now)
        encoded = self._encode_fields(cls, normalized)
        columns = ["id_", "sys_start", "sys_end"]
        values: list[Any] = [uid, now, float("inf")]
        if isinstance(cls, EdgeClass):
            columns += ["source_id_", "target_id_"]
            values += [row["source_id_"], row["target_id_"]]
        columns += list(encoded)
        values += list(encoded.values())
        placeholders = ", ".join("?" for _ in values)
        self._conn.execute(
            f"INSERT INTO {ddl.current_table(cls)} ({', '.join(columns)}) "
            f"VALUES ({placeholders})",
            values,
        )
        self.bump_data_version()

    def delete_element(self, uid: int) -> None:
        cls = self._class_of.get(uid)
        if cls is None or not self._is_current.get(uid, False):
            raise UnknownElementError(f"cannot delete unknown or deleted element {uid}")
        if isinstance(cls, NodeClass):
            for edge_uid, (source, target) in list(self._edge_endpoints.items()):
                if self._is_current.get(edge_uid) and uid in (source, target):
                    self.delete_element(edge_uid)
        now = self.clock.now()
        self._close_current_row(cls, uid, now)
        self._is_current[uid] = False
        self.bump_data_version()

    # ------------------------------------------------------------------
    # read path (element level)
    # ------------------------------------------------------------------

    def _scan_tables(self, cls: ElementClass, scope: TimeScope) -> list[str]:
        tables = [ddl.current_table(cls)]
        if not scope.is_current:
            tables.append(ddl.history_table(cls))
        return tables

    def _query_rows(
        self, sql: str, params: Sequence[Any]
    ) -> list[sqlite3.Row]:
        self._conn.row_factory = sqlite3.Row
        rows = self._conn.execute(sql, params).fetchall()
        self._conn.row_factory = None
        return rows

    def scan_atom(self, atom: Atom, scope: TimeScope) -> list[ElementRecord]:
        if atom.cls is None:
            raise StorageError(f"atom {atom.class_name}() must be bound before scanning")
        best: dict[int, ElementRecord] = {}
        for concrete in atom.cls.concrete_subtree():
            for table in self._scan_tables(concrete, scope):
                predicate_sql, params = scope_predicate("", scope)
                rows = self._query_rows(
                    f"SELECT * FROM {table} WHERE {predicate_sql}", params
                )
                for row in rows:
                    record = self._record_from_row(concrete, row)
                    if not atom.matches(record):
                        continue
                    existing = best.get(record.uid)
                    if existing is None or record.period.start > existing.period.start:
                        best[record.uid] = record
        return [best[uid] for uid in sorted(best)]

    def get_element(self, uid: int, scope: TimeScope) -> ElementRecord | None:
        cls = self._class_of.get(uid)
        if cls is None:
            return None
        best: ElementRecord | None = None
        for table in self._scan_tables(cls, scope):
            predicate_sql, params = scope_predicate("", scope)
            rows = self._query_rows(
                f"SELECT * FROM {table} WHERE id_ = ? AND {predicate_sql}",
                [uid, *params],
            )
            for row in rows:
                record = self._record_from_row(cls, row)
                if best is None or record.period.start > best.period.start:
                    best = record
        return best

    def versions(self, uid: int, window: Interval) -> list[ElementRecord]:
        cls = self._class_of.get(uid)
        if cls is None:
            return []
        records: list[ElementRecord] = []
        for table in (ddl.history_table(cls), ddl.current_table(cls)):
            rows = self._query_rows(
                f"SELECT * FROM {table} WHERE id_ = ? AND sys_start < ? AND sys_end > ?",
                [uid, window.end, window.start],
            )
            records.extend(self._record_from_row(cls, row) for row in rows)
        records.sort(key=lambda record: record.period.start)
        return records

    def _adjacent(
        self,
        node_uid: int,
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None,
        column: str,
    ) -> list[EdgeRecord]:
        if classes is None:
            roots: list[EdgeClass] = [self.schema.edge_root]  # type: ignore[list-item]
        else:
            roots = list(classes)
        concrete: dict[str, EdgeClass] = {}
        for root in roots:
            for cls in root.concrete_subtree():
                concrete[cls.name] = cls  # type: ignore[assignment]
        results: list[EdgeRecord] = []
        best: dict[int, EdgeRecord] = {}
        for cls in concrete.values():
            for table in self._scan_tables(cls, scope):
                predicate_sql, params = scope_predicate("", scope)
                rows = self._query_rows(
                    f"SELECT * FROM {table} WHERE {column} = ? AND {predicate_sql}",
                    [node_uid, *params],
                )
                for row in rows:
                    record = self._record_from_row(cls, row)
                    assert isinstance(record, EdgeRecord)
                    existing = best.get(record.uid)
                    if existing is None or record.period.start > existing.period.start:
                        best[record.uid] = record
        results = [best[uid] for uid in sorted(best)]
        return results

    def out_edges(
        self, node_uid: int, scope: TimeScope, classes: Sequence[EdgeClass] | None = None
    ) -> list[EdgeRecord]:
        return self._adjacent(node_uid, scope, classes, "source_id_")

    def in_edges(
        self, node_uid: int, scope: TimeScope, classes: Sequence[EdgeClass] | None = None
    ) -> list[EdgeRecord]:
        return self._adjacent(node_uid, scope, classes, "target_id_")

    # ------------------------------------------------------------------
    # statistics & accounting
    # ------------------------------------------------------------------

    def class_count(self, class_name: str) -> int:
        cls = self.schema.resolve(class_name)
        total = 0
        for concrete in cls.concrete_subtree():
            cursor = self._conn.execute(
                f"SELECT COUNT(*) FROM {ddl.current_table(concrete)}"
            )
            total += cursor.fetchone()[0]
        return total

    def counts(self) -> dict[str, int]:
        nodes = self.class_count(self.schema.node_root.name)
        edges = self.class_count(self.schema.edge_root.name)
        history = 0
        for root in (self.schema.node_root, self.schema.edge_root):
            for cls in root.concrete_subtree():
                cursor = self._conn.execute(
                    f"SELECT COUNT(*) FROM {ddl.history_table(cls)}"
                )
                history += cursor.fetchone()[0]
        return {
            "nodes": nodes,
            "edges": edges,
            "current_versions": nodes + edges,
            "history_versions": history,
        }

    def storage_cells(self) -> int:
        total = 0
        for root in (self.schema.node_root, self.schema.edge_root):
            for cls in root.concrete_subtree():
                width = len(ddl.base_columns(cls)) + len(cls.fields) - 1
                for table in (ddl.current_table(cls), ddl.history_table(cls)):
                    cursor = self._conn.execute(f"SELECT COUNT(*) FROM {table}")
                    total += width * cursor.fetchone()[0]
        return total

    # ------------------------------------------------------------------
    # set-at-a-time pathway evaluation (the §5.2 program)
    # ------------------------------------------------------------------

    def find_pathways(self, program: MatchProgram, scope: TimeScope) -> list[Pathway]:
        results: dict[tuple[int, ...], Pathway] = {}
        record_cache: dict[int, ElementRecord] = {}
        needs_verify = False
        for compiled in program.splits:
            forward_rows, forward_post = self._run_direction(
                compiled, compiled.forward_nfa, sqlgen.FORWARD, scope, program
            )
            if not forward_rows:
                continue
            backward_rows, backward_post = self._run_direction(
                compiled, compiled.backward_nfa, sqlgen.BACKWARD, scope, program
            )
            needs_verify |= forward_post or backward_post
            by_anchor: dict[int, list[list[int]]] = {}
            for anchor_uid, uids in backward_rows:
                by_anchor.setdefault(anchor_uid, []).append(uids)
            for anchor_uid, forward_uids in forward_rows:
                for backward_uids in by_anchor.get(anchor_uid, ()):  # noqa: B020
                    tail = forward_uids[1:]
                    head = backward_uids[1:]
                    if head and tail and not set(head).isdisjoint(tail):
                        continue
                    sequence = [*reversed(head), anchor_uid, *tail]
                    if len(sequence) > program.max_elements:
                        continue
                    key = tuple(sequence)
                    if key in results:
                        continue
                    pathway = self._materialize(sequence, scope, record_cache)
                    if pathway is not None:
                        results[key] = pathway
        pathways = list(results.values())
        if needs_verify and not scope.is_range:
            # JSON-typed predicates were not pushed into SQL: re-verify.
            pathways = [p for p in pathways if matches_pathway(program.matcher, p)]
        return pathways

    def _run_direction(
        self,
        compiled: CompiledSplit,
        nfa: PathwayNfa,
        direction: str,
        scope: TimeScope,
        program: MatchProgram,
    ) -> tuple[list[tuple[int, list[int]]], bool]:
        """Run one directional state-table program; returns (anchor, uid list)
        rows from the accept state, plus the post-filter flag."""
        self._temp_counter += 1
        tag = f"{direction[0]}{self._temp_counter}"
        generator = sqlgen.PathSql(self.schema, scope, direction, tag)
        states = nfa.states()
        tables = {state: sqlgen.state_table(tag, state) for state in states}
        try:
            for state in states:
                self._conn.execute(sqlgen.create_state_table(tables[state]).sql)
            seed = generator.anchor_select(
                tables[nfa.start_state],
                compiled.split.anchor,
                seed_uids=program.seeds,
            )
            self._conn.execute(seed.sql, seed.params)

            operators = lower_affix(nfa)
            if self.use_extend_block:
                protect = frozenset((nfa.start_state, nfa.accept_state))
                operators = self._fuse(operators, generator, protect)
            for op in operators:
                self._execute_operator(op, generator, tables)

            rows = self._conn.execute(
                f"SELECT anchor_uid, uid_list FROM {tables[nfa.accept_state]}"
            ).fetchall()
            parsed = [
                (anchor_uid, [int(part) for part in uid_list.split(",")])
                for anchor_uid, uid_list in rows
            ]
            return parsed, generator.needs_post_filter
        finally:
            for table in tables.values():
                self._conn.execute(sqlgen.drop_state_table(table).sql)

    def _fuse(self, operators, generator: sqlgen.PathSql, protect: frozenset):
        fused = fuse_extend_blocks(operators, protect)
        # Unfuse blocks SQL cannot express (wildcards, same-kind repeats).
        flattened = []
        for op in fused:
            if hasattr(op, "steps") and not generator.fusable(op.steps):
                flattened.extend(op.steps)
            else:
                flattened.append(op)
        return flattened

    def _execute_operator(self, op, generator: sqlgen.PathSql, tables) -> None:
        if isinstance(op, UnionOp):
            statement = generator.union(tables[op.from_state], tables[op.to_state])
            self._conn.execute(statement.sql, statement.params)
        elif isinstance(op, ExtendOp):
            for statement in generator.extend(
                op, tables[op.from_state], tables[op.to_state]
            ):
                self._conn.execute(statement.sql, statement.params)
        else:  # ExtendBlockOp
            statement = generator.extend_block(
                op.steps, tables[op.from_state], tables[op.to_state]
            )
            self._conn.execute(statement.sql, statement.params)

    def _materialize(
        self,
        uid_sequence: list[int],
        scope: TimeScope,
        cache: dict[int, ElementRecord],
    ) -> Pathway | None:
        elements: list[ElementRecord] = []
        for position, uid in enumerate(uid_sequence):
            record = cache.get(uid)
            if record is None:
                record = self.get_element(uid, scope)
                if record is None:
                    return None
                cache[uid] = record
            expect_node = position % 2 == 0
            if expect_node != record.is_node:
                return None
            elements.append(record)
        if len(elements) % 2 == 0:
            return None
        return Pathway(elements)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def sql_trace(self, program: MatchProgram, scope: TimeScope) -> list[str]:
        """The SQL a program would run (for tests and documentation)."""
        statements: list[str] = []
        for compiled in program.splits:
            for nfa, direction in (
                (compiled.forward_nfa, sqlgen.FORWARD),
                (compiled.backward_nfa, sqlgen.BACKWARD),
            ):
                generator = sqlgen.PathSql(self.schema, scope, direction, "x")
                tables = {state: sqlgen.state_table("x", state) for state in nfa.states()}
                statements.append(
                    generator.anchor_select(
                        tables[nfa.start_state], compiled.split.anchor
                    ).sql
                )
                operators = lower_affix(nfa)
                if self.use_extend_block:
                    operators = self._fuse(
                        operators, generator,
                        frozenset((nfa.start_state, nfa.accept_state)),
                    )
                for op in operators:
                    if isinstance(op, UnionOp):
                        statements.append(
                            generator.union(tables[op.from_state], tables[op.to_state]).sql
                        )
                    elif isinstance(op, ExtendOp):
                        statements.extend(
                            s.sql
                            for s in generator.extend(
                                op, tables[op.from_state], tables[op.to_state]
                            )
                        )
                    else:
                        statements.append(
                            generator.extend_block(
                                op.steps, tables[op.from_state], tables[op.to_state]
                            ).sql
                        )
        return statements

    def connection(self) -> sqlite3.Connection:
        """The raw SQLite connection (mixing graph and relational data, §6.1)."""
        return self._conn
