"""Immutable columnar snapshots of the in-memory store (CSR layout).

The row-at-a-time read path walks Python dicts element by element:
``scan_atom`` copies index sets, sorts them, and chases a dict lookup plus
an ``Interval`` method call per candidate; frontier expansion does the
same per edge.  Following the batch-at-a-time execution model of
vectorized engines (MonetDB/X100 style), this module freezes the store
into flat parallel arrays once per ``data_version`` epoch so the batch
operators in :mod:`repro.plan.batch` can replace those inner loops with
bisects over sorted interval columns and tight scans over offset ranges.

A :class:`CsrSnapshot` holds:

* an **interning table**: every uid ever admitted, sorted ascending in an
  ``array('q')``; its index is the element's *dense id*.  Class names
  (node and edge labels alike) are interned to dense int ids the same
  way, and a parallel int32 array maps each element to its class id.
* **chain columns**: every element's version chain (closed history plus
  the open current version, chronological) flattened into parallel
  start/end ``array('d')`` columns plus a record column, indexed CSR-style
  by a per-element offset array.  Starts and ends are each ascending
  within a chain, so the latest version visible in a window ``[a, b)`` is
  found with one bisect and one comparison.
* **class columns**: per concrete class, the current members as a
  uid-sorted column (current-scope scans never sort or copy sets again)
  and the full version set split into start-sorted *open* and end-sorted
  *closed* columns (the vectorized temporal-visibility filter bisects
  these instead of calling ``Interval.contains`` per element).
* **adjacency CSR**: forward and reverse adjacency flattened into a
  dense-edge-id column with per-node, per-edge-class ``(lo, hi)``
  segments, preserving exactly the ordering contract of
  :meth:`~repro.storage.memgraph.indexes.AdjacencyIndex.edges`.

Snapshots are *immutable*: writers never touch one.  The store rebuilds
lazily on the first batch read after ``data_version`` moves, so read-heavy
epochs pay the build once and write-heavy epochs pay nothing.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

from repro.model.elements import ElementRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.memgraph.store import MemGraphStore


class ClassColumns:
    """Per-class version columns powering batched anchor scans."""

    __slots__ = (
        "current_uids",
        "current_records",
        "open_starts",
        "open_uids",
        "open_records",
        "closed_ends",
        "closed_starts",
        "closed_uids",
        "closed_records",
    )

    def __init__(self) -> None:
        # Current members, uid-ascending (scan output order needs no sort).
        self.current_uids: list[int] = []
        self.current_records: list[ElementRecord] = []
        # Open versions (end == FOREVER), start-ascending: visible under a
        # window [a, b) iff start < b, i.e. a bisect prefix.
        self.open_starts: list[float] = []
        self.open_uids: list[int] = []
        self.open_records: list[ElementRecord] = []
        # Closed versions, end-ascending with parallel starts: visible iff
        # end > a (a bisect tail) and start < b (a comparison).
        self.closed_ends: list[float] = []
        self.closed_starts: list[float] = []
        self.closed_uids: list[int] = []
        self.closed_records: list[ElementRecord] = []

    def visible_rows(
        self, a: float, b: float, rows: list[tuple[int, float, ElementRecord]]
    ) -> None:
        """Append every ``(uid, start, record)`` visible in ``[a, b)``."""
        starts = self.open_starts
        for i in range(bisect_left(starts, b)):
            rows.append((self.open_uids[i], starts[i], self.open_records[i]))
        ends = self.closed_ends
        cstarts = self.closed_starts
        for i in range(bisect_right(ends, a), len(ends)):
            start = cstarts[i]
            if start < b:
                rows.append((self.closed_uids[i], start, self.closed_records[i]))


class CsrSnapshot:
    """One immutable columnar view of a :class:`MemGraphStore` epoch."""

    __slots__ = (
        "data_version",
        "uids",
        "dense_of",
        "class_names",
        "class_id_of",
        "element_class_ids",
        "current_records",
        "chain_offsets",
        "chain_starts",
        "chain_ends",
        "chain_records",
        "class_columns",
        "out_segments",
        "out_edge_dense",
        "out_edge_current",
        "out_node_lo",
        "out_node_hi",
        "in_segments",
        "in_edge_dense",
        "in_edge_current",
        "in_node_lo",
        "in_node_hi",
    )

    def __init__(self, data_version: int) -> None:
        self.data_version = data_version
        #: dense id -> uid, ascending; the inverse of :attr:`dense_of`.
        self.uids: array = array("q")
        self.dense_of: dict[int, int] = {}
        #: interned class labels (node and edge classes share one table).
        self.class_names: list[str] = []
        self.class_id_of: dict[str, int] = {}
        #: dense element id -> interned class id (int32 column).
        self.element_class_ids: array = array("i")
        #: dense element id -> current record, or None while deleted.
        self.current_records: list[ElementRecord | None] = []
        # Version chains, flattened CSR-style over dense element ids.
        self.chain_offsets: array = array("q", [0])
        self.chain_starts: array = array("d")
        self.chain_ends: array = array("d")
        self.chain_records: list[ElementRecord] = []
        self.class_columns: dict[str, ClassColumns] = {}
        # Adjacency CSR: per dense node id, {edge class name: (lo, hi)}
        # segments into the flat dense-edge-id column.  Segment dict order
        # and in-segment order reproduce AdjacencyIndex.edges() exactly.
        self.out_segments: list[dict[str, tuple[int, int]] | None] = []
        self.out_edge_dense: array = array("q")
        self.in_segments: list[dict[str, tuple[int, int]] | None] = []
        self.in_edge_dense: array = array("q")
        # Unfiltered expansion fast path: a node's class segments are laid
        # out consecutively, so its whole adjacency is one [lo, hi) range —
        # plus the edges' current records materialized as a parallel
        # column, so current-scope waves never touch the chain arrays.
        self.out_node_lo: array = array("q")
        self.out_node_hi: array = array("q")
        self.in_node_lo: array = array("q")
        self.in_node_hi: array = array("q")
        self.out_edge_current: list[ElementRecord | None] = []
        self.in_edge_current: list[ElementRecord | None] = []

    # ------------------------------------------------------------------
    # chain probes
    # ------------------------------------------------------------------

    def chain_run(self, dense: int, a: float, b: float) -> tuple[int, int]:
        """Indices ``[lo, hi)`` into the chain columns visible in ``[a, b)``.

        Chain starts and ends are each ascending, so the visible versions
        of one element form a contiguous run: drop the prefix whose ends
        are ``<= a`` and the suffix whose starts are ``>= b``.
        """
        lo = self.chain_offsets[dense]
        hi = self.chain_offsets[dense + 1]
        return (
            bisect_right(self.chain_ends, a, lo, hi),
            bisect_left(self.chain_starts, b, lo, hi),
        )

    def latest_visible_dense(
        self, dense: int, a: float, b: float
    ) -> ElementRecord | None:
        """Latest version of dense element visible in ``[a, b)``, or None.

        The last version with ``start < b`` also has the chain's maximum
        end among that prefix, so a single end comparison decides.
        """
        lo = self.chain_offsets[dense]
        hi = bisect_left(self.chain_starts, b, lo, self.chain_offsets[dense + 1])
        if hi > lo and self.chain_ends[hi - 1] > a:
            return self.chain_records[hi - 1]
        return None

    def latest_visible(self, uid: int, a: float, b: float) -> ElementRecord | None:
        dense = self.dense_of.get(uid)
        if dense is None:
            return None
        return self.latest_visible_dense(dense, a, b)

    def current_of(self, uid: int) -> ElementRecord | None:
        dense = self.dense_of.get(uid)
        if dense is None:
            return None
        return self.current_records[dense]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def describe(self) -> dict[str, int]:
        return {
            "data_version": self.data_version,
            "elements": len(self.uids),
            "classes": len(self.class_names),
            "versions": len(self.chain_records),
            "out_adjacency": len(self.out_edge_dense),
            "in_adjacency": len(self.in_edge_dense),
        }


def _intern_class(snapshot: CsrSnapshot, name: str) -> int:
    class_id = snapshot.class_id_of.get(name)
    if class_id is None:
        class_id = len(snapshot.class_names)
        snapshot.class_id_of[name] = class_id
        snapshot.class_names.append(name)
    return class_id


def _build_adjacency(
    snapshot: CsrSnapshot,
    edges_by_node: dict[int, dict[str, list[int]]],
    segments: list[dict[str, tuple[int, int]] | None],
    flat: array,
    node_lo: array,
    node_hi: array,
) -> None:
    dense_of = snapshot.dense_of
    for node_uid, per_class in edges_by_node.items():
        node_dense = dense_of.get(node_uid)
        if node_dense is None:  # pragma: no cover - adjacency implies admitted
            continue
        lo_all = len(flat)
        segs: dict[str, tuple[int, int]] = {}
        for class_name, edge_uids in per_class.items():
            lo = len(flat)
            for edge_uid in edge_uids:
                flat.append(dense_of[edge_uid])
            segs[class_name] = (lo, len(flat))
        segments[node_dense] = segs
        node_lo[node_dense] = lo_all
        node_hi[node_dense] = len(flat)


def build_csr(store: "MemGraphStore") -> CsrSnapshot:
    """Freeze *store* into a :class:`CsrSnapshot`.

    Must run under the store's read lock (the batch accessor holds it);
    the snapshot only aliases immutable records, never live containers.
    """
    snapshot = CsrSnapshot(store.data_version)
    current = store._current
    history = store._history
    class_of = store._class_of

    uids = snapshot.uids
    dense_of = snapshot.dense_of
    for dense, uid in enumerate(sorted(class_of)):
        uids.append(uid)
        dense_of[uid] = dense

    per_class: dict[str, ClassColumns] = snapshot.class_columns
    opens: dict[str, list[tuple[float, int, ElementRecord]]] = {}
    closeds: dict[str, list[tuple[float, float, int, ElementRecord]]] = {}

    chain_offsets = snapshot.chain_offsets
    chain_starts = snapshot.chain_starts
    chain_ends = snapshot.chain_ends
    chain_records = snapshot.chain_records
    for uid in uids:
        cls_name = class_of[uid].name
        snapshot.element_class_ids.append(_intern_class(snapshot, cls_name))
        closed_rows = closeds.setdefault(cls_name, [])
        for version in history.get(uid, ()):
            chain_starts.append(version.period.start)
            chain_ends.append(version.period.end)
            chain_records.append(version)
            closed_rows.append((version.period.end, version.period.start, uid, version))
        record = current.get(uid)
        snapshot.current_records.append(record)
        if record is not None:
            chain_starts.append(record.period.start)
            chain_ends.append(record.period.end)
            chain_records.append(record)
            opens.setdefault(cls_name, []).append((record.period.start, uid, record))
            columns = per_class.get(cls_name)
            if columns is None:
                columns = per_class[cls_name] = ClassColumns()
            # uid-ascending because the enclosing loop is.
            columns.current_uids.append(uid)
            columns.current_records.append(record)
        chain_offsets.append(len(chain_records))

    for cls_name, rows in opens.items():
        rows.sort(key=lambda row: row[0])
        columns = per_class.setdefault(cls_name, ClassColumns())
        for start, uid, record in rows:
            columns.open_starts.append(start)
            columns.open_uids.append(uid)
            columns.open_records.append(record)
    for cls_name, crows in closeds.items():
        if not crows:
            continue
        crows.sort(key=lambda row: (row[0], row[1]))
        columns = per_class.setdefault(cls_name, ClassColumns())
        for end, start, uid, record in crows:
            columns.closed_ends.append(end)
            columns.closed_starts.append(start)
            columns.closed_uids.append(uid)
            columns.closed_records.append(record)

    for cls in store.schema.classes():
        _intern_class(snapshot, cls.name)

    n = len(uids)
    snapshot.out_segments = [None] * n
    snapshot.in_segments = [None] * n
    zeros = array("q", [0]) * n
    snapshot.out_node_lo = array("q", zeros)
    snapshot.out_node_hi = array("q", zeros)
    snapshot.in_node_lo = array("q", zeros)
    snapshot.in_node_hi = array("q", zeros)
    _build_adjacency(
        snapshot,
        store._out._edges,
        snapshot.out_segments,
        snapshot.out_edge_dense,
        snapshot.out_node_lo,
        snapshot.out_node_hi,
    )
    _build_adjacency(
        snapshot,
        store._in._edges,
        snapshot.in_segments,
        snapshot.in_edge_dense,
        snapshot.in_node_lo,
        snapshot.in_node_hi,
    )
    records = snapshot.current_records
    snapshot.out_edge_current = [records[d] for d in snapshot.out_edge_dense]
    snapshot.in_edge_current = [records[d] for d in snapshot.in_edge_dense]
    return snapshot
