"""Temporal secondary indexes for the in-memory backend.

Historical reads (``AT '<ts>'`` and ``AT '<t1>':'<t2>'`` scopes) used to
degrade to a scan over every uid the store ever admitted.  The structures
here keep *version postings* — one ``[start, end)`` system period per
stored version — organized so an interval-overlap lookup is served with a
bisect instead of a scan, in the spirit of the interval-aware secondary
structures of "Towards Temporal Graph Databases" (PAPERS.md):

* :class:`TemporalClassIndex` — per concrete class, every version period
  ever recorded, answering "which uids had *some* version of this class
  overlapping the scope?";
* :class:`TemporalFieldIndex` — per (class, field, value) for the store's
  indexed fields, answering the same question restricted to versions that
  carried that field value.

Both share one posting layout (:class:`VersionPostings`): the open versions
live in a ``uid → start`` dict (their end is ``FOREVER``, so they overlap
any scope that starts before "now"), and closed versions append to arrays
sorted by close time — transaction clocks are monotone, so closing order
*is* end order and the append keeps the arrays sorted for free (a dirty
flag re-sorts defensively if that invariant is ever violated).  A lookup
for a window ``[a, b)`` takes the open versions with ``start < b`` plus the
closed-array tail with ``end > a`` (one ``bisect``), filtered by
``start < b``.

Maintenance mirrors the version chain exactly: a version *opens* when it
is admitted, *closes* when an update or delete supersedes it, and a
zero-duration version (opened and replaced at the same transaction
instant) is *dropped* — it never existed, matching the store's in-place
overwrite rule.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import defaultdict
from typing import Iterable, Iterator

from repro.schema.classes import field_value_key
from repro.storage.base import TimeScope
from repro.temporal.interval import FOREVER


class VersionPostings:
    """Version periods under one index key, bisect-searchable by end."""

    __slots__ = ("open", "_ends", "_starts", "_uids", "_sorted", "_lock")

    def __init__(self) -> None:
        self.open: dict[int, float] = {}
        self._ends: list[float] = []
        self._starts: list[float] = []
        self._uids: list[int] = []
        self._sorted = True
        # Guards the lazy re-sort: two concurrent *readers* racing through
        # _ensure_sorted would both permute the parallel arrays.  Writers
        # are already exclusive (store-level RW lock), so only the
        # sort-and-scan of the closed arrays needs the lock.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.open) + len(self._ends)

    def open_version(self, uid: int, start: float) -> None:
        self.open[uid] = start

    def close_version(self, uid: int, end: float) -> None:
        start = self.open.pop(uid, None)
        if start is None:
            return
        if self._ends and end < self._ends[-1]:
            self._sorted = False
        self._ends.append(end)
        self._starts.append(start)
        self._uids.append(uid)

    def drop_open(self, uid: int) -> None:
        """Forget an open version that turned out to have zero duration."""
        self.open.pop(uid, None)

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        order = sorted(range(len(self._ends)), key=self._ends.__getitem__)
        self._ends = [self._ends[i] for i in order]
        self._starts = [self._starts[i] for i in order]
        self._uids = [self._uids[i] for i in order]
        self._sorted = True

    def overlapping(self, start: float, end: float, into: set[int]) -> None:
        """Add every uid with a version overlapping ``[start, end)`` to *into*.

        Open versions overlap iff they started before *end*; closed versions
        are the ``end > start`` tail of the end-sorted arrays, filtered by
        their own start.
        """
        for uid, opened in self.open.items():
            if opened < end:
                into.add(uid)
        with self._lock:
            self._ensure_sorted()
            index = bisect_right(self._ends, start)
            starts, uids = self._starts, self._uids
            for i in range(index, len(self._ends)):
                if starts[i] < end:
                    into.add(uids[i])


def _scope_window(scope: TimeScope) -> tuple[float, float]:
    """The scope as a plain ``(start, end)`` overlap window.

    An ``AT t`` scope admits periods with ``start <= t < end``; with the
    half-open posting convention that is exactly overlap against the
    minimal window starting at ``t``, which :meth:`TimeScope.window`
    already constructs.
    """
    window = scope.window()
    return window.start, window.end


class TemporalClassIndex:
    """Per-class version postings: class name → every period ever stored."""

    def __init__(self) -> None:
        self._postings: dict[str, VersionPostings] = defaultdict(VersionPostings)

    def open(self, class_name: str, uid: int, start: float) -> None:
        self._postings[class_name].open_version(uid, start)

    def close(self, class_name: str, uid: int, end: float) -> None:
        postings = self._postings.get(class_name)
        if postings is not None:
            postings.close_version(uid, end)

    def drop_open(self, class_name: str, uid: int) -> None:
        postings = self._postings.get(class_name)
        if postings is not None:
            postings.drop_open(uid)

    def lookup(self, class_names: Iterable[str], scope: TimeScope) -> set[int]:
        """uids with at least one version of the classes overlapping *scope*."""
        start, end = _scope_window(scope)
        result: set[int] = set()
        for name in class_names:
            postings = self._postings.get(name)
            if postings is not None:
                postings.overlapping(start, end, result)
        return result

    def count(self, class_names: Iterable[str], scope: TimeScope) -> int:
        """How many uids the lookup would return (for anchor costing)."""
        return len(self.lookup(class_names, scope))

    def postings_count(self, class_name: str) -> int:
        """Total version postings held for one class (tests, introspection)."""
        postings = self._postings.get(class_name)
        return len(postings) if postings is not None else 0


class TemporalFieldIndex:
    """(class, field, value) → version postings for the indexed fields.

    The temporal extension of
    :class:`~repro.storage.memgraph.indexes.FieldEqualityIndex`: where the
    equality index tracks *current* field values, this one keeps the value
    each version carried over its whole system period, so a historical
    equality anchor like ``Host(name='h-17') AT '<ts>'`` resolves with one
    posting lookup instead of a class scan.
    """

    def __init__(self, indexed_fields: tuple[str, ...] = ("name",)):
        self.indexed_fields = indexed_fields
        self._postings: dict[tuple[str, str, object], VersionPostings] = {}

    def _keys(self, class_name: str, fields: dict) -> Iterator[tuple[str, str, object]]:
        for field_name in self.indexed_fields:
            value = fields.get(field_name)
            if value is None:
                continue
            yield (class_name, field_name, field_value_key(value))

    def open(self, class_name: str, uid: int, start: float, fields: dict) -> None:
        for key in self._keys(class_name, fields):
            postings = self._postings.get(key)
            if postings is None:
                postings = self._postings[key] = VersionPostings()
            postings.open_version(uid, start)

    def close(self, class_name: str, uid: int, end: float, fields: dict) -> None:
        for key in self._keys(class_name, fields):
            postings = self._postings.get(key)
            if postings is not None:
                postings.close_version(uid, end)

    def drop_open(self, class_name: str, uid: int, fields: dict) -> None:
        for key in self._keys(class_name, fields):
            postings = self._postings.get(key)
            if postings is not None:
                postings.drop_open(uid)

    def lookup(
        self,
        class_names: Iterable[str],
        field_name: str,
        value: object,
        scope: TimeScope,
    ) -> set[int] | None:
        """uids with a version carrying ``field = value`` overlapping *scope*,
        or ``None`` when the field is not indexed (caller falls back)."""
        if field_name not in self.indexed_fields:
            return None
        start, end = _scope_window(scope)
        key_value = field_value_key(value)
        result: set[int] = set()
        for class_name in class_names:
            postings = self._postings.get((class_name, field_name, key_value))
            if postings is not None:
                postings.overlapping(start, end, result)
        return result


__all__ = [
    "FOREVER",
    "TemporalClassIndex",
    "TemporalFieldIndex",
    "VersionPostings",
]
