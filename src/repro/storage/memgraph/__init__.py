"""In-memory temporal property-graph engine (the Gremlin target stand-in).

Implements the storage idioms of the paper's Gremlin backend: class
inheritance encoded as label paths with prefix matching, adjacency indexes
per edge class (so class-filtered expansion never touches irrelevant
edges), and per-element version chains for transaction time.
"""

from repro.storage.memgraph.store import MemGraphStore
from repro.storage.memgraph.traversal import Traversal

__all__ = ["MemGraphStore", "Traversal"]
