"""The in-memory temporal property-graph store.

Every element (node or edge) is a *version chain*: the open current version
plus closed historical versions.  Updates close the current version at the
transaction time and open a new one; deletes just close it.  This is the
in-memory equivalent of the ``temporal_tables`` current/history pair the
paper uses on Postgres (§5.3), and it yields the same modest history
overhead the evaluation reports, because only changed elements grow chains.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from functools import wraps
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from repro.errors import (
    StorageError,
    UniquenessError,
    UnknownElementError,
)
from repro.model.elements import EdgeRecord, ElementRecord, NodeRecord
from repro.rpe.ast import Atom
from repro.schema.classes import EdgeClass, ElementClass
from repro.schema.registry import Schema
from repro.schema.validate import validate_edge_endpoints, validate_fields
from repro.storage.base import GraphStore, TimeScope
from repro.storage.memgraph.csr import CsrSnapshot, build_csr
from repro.storage.memgraph.indexes import AdjacencyIndex, ClassIndex, FieldEqualityIndex
from repro.storage.memgraph.temporal_index import TemporalClassIndex, TemporalFieldIndex
from repro.temporal.clock import TransactionClock
from repro.temporal.interval import FOREVER, Interval
from repro.util.ids import IdAllocator
from repro.util.locks import ReadWriteLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stats.metrics import MetricsRegistry


def _read_op(method: Callable) -> Callable:
    """Run *method* holding the store's shared read lock."""

    @wraps(method)
    def locked(self: "MemGraphStore", *args: Any, **kwargs: Any) -> Any:
        with self.rwlock.read_locked:
            return method(self, *args, **kwargs)

    return locked


def _write_op(method: Callable) -> Callable:
    """Run *method* holding the store's exclusive write lock."""

    @wraps(method)
    def locked(self: "MemGraphStore", *args: Any, **kwargs: Any) -> Any:
        with self.rwlock.write_locked:
            return method(self, *args, **kwargs)

    return locked


class MemGraphStore(GraphStore):
    """Temporal graph database held in Python dictionaries.

    Concurrency: all state lives in plain dicts, so a reader iterating
    while a writer mutates would crash (``dictionary changed size during
    iteration``) or observe torn multi-dict updates.  A per-store
    :class:`~repro.util.locks.ReadWriteLock` gives reads shared access and
    writes exclusive access; the single-writer commit gate in
    :mod:`repro.core.concurrency` serializes writers *above* this lock and
    keeps open read snapshots isolated.  Multi-call operations (e.g. the
    two inserts of a symmetric edge) are made atomic by that gate, not by
    this lock.
    """

    def __init__(
        self,
        schema: Schema,
        clock: TransactionClock | None = None,
        name: str = "memgraph",
        indexed_fields: tuple[str, ...] = ("name",),
        metrics: "MetricsRegistry | None" = None,
    ):
        super().__init__(schema, clock=clock, name=name)
        self._ids = IdAllocator()
        self._current: dict[int, ElementRecord] = {}
        self._history: dict[int, list[ElementRecord]] = {}
        self._class_of: dict[int, ElementClass] = {}
        self._class_index = ClassIndex()
        self._field_index = FieldEqualityIndex(indexed_fields)
        self._temporal_class = TemporalClassIndex()
        self._temporal_field = TemporalFieldIndex(indexed_fields)
        self._out = AdjacencyIndex()
        self._in = AdjacencyIndex()
        self._metrics = metrics
        self.rwlock = ReadWriteLock()
        #: Ablation / oracle switch: with the temporal indexes disabled,
        #: historical anchors fall back to the brute-force scan over every
        #: uid ever admitted.  The indexes are still *maintained* while
        #: disabled, so the switch can be flipped freely mid-test.
        self.temporal_index_enabled = True
        #: Ablation switch for the vectorized execution layer: with it off
        #: every read runs the row-at-a-time oracle path.  Batch scans also
        #: require ``temporal_index_enabled`` so the temporal ablation keeps
        #: comparing against the genuine brute-force scan.
        self.batch_enabled = True
        self._csr: CsrSnapshot | None = None
        self._csr_seen_version = -1
        self._csr_lock = threading.Lock()

    def set_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Attach (or detach) the registry receiving ``index.*`` events."""
        self._metrics = metrics

    @property
    def supports_snapshots(self) -> bool:
        """Version chains answer ``at(t)`` for any past t: snapshot-capable."""
        return True

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Hold the write lock across a whole batch, so readers never see
        a half-applied bulk load."""
        with self.rwlock.write_locked:
            yield

    def _event(self, event_name: str, count: int = 1) -> None:
        if self._metrics is not None and count:
            self._metrics.event(event_name, count)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _allocate_uid(self, uid: int | None, cls: ElementClass) -> tuple[int, bool]:
        """Returns (uid, revived): revived means the uid existed before and
        is being brought back by a snapshot feed (class must match)."""
        if uid is None:
            return self._ids.next(), False
        existing = self._class_of.get(uid)
        if existing is None:
            self._ids.observe(uid)
            return uid, False
        if uid in self._current:
            raise UniquenessError(f"element id {uid} already exists")
        if existing is not cls:
            raise UniquenessError(
                f"element id {uid} was a {existing.name}, cannot revive as {cls.name}"
            )
        return uid, True

    @_write_op
    def insert_node(
        self, class_name: str, fields: Mapping[str, Any] | None = None, uid: int | None = None
    ) -> int:
        cls = self.schema.node_class(class_name)
        normalized = validate_fields(cls, fields or {})
        uid, _ = self._allocate_uid(uid, cls)
        record = NodeRecord(
            uid=uid, cls=cls, fields=normalized,
            period=Interval(self.clock.now(), FOREVER),
        )
        self._admit(record)
        return uid

    @_write_op
    def insert_edge(
        self,
        class_name: str,
        source: int,
        target: int,
        fields: Mapping[str, Any] | None = None,
        uid: int | None = None,
    ) -> int:
        cls = self.schema.edge_class(class_name)
        source_record = self._current.get(source)
        target_record = self._current.get(target)
        if not isinstance(source_record, NodeRecord):
            raise UnknownElementError(f"edge source {source} is not a current node")
        if not isinstance(target_record, NodeRecord):
            raise UnknownElementError(f"edge target {target} is not a current node")
        validate_edge_endpoints(self.schema, cls, source_record.cls, target_record.cls)
        normalized = validate_fields(cls, fields or {})
        uid, revived = self._allocate_uid(uid, cls)
        if revived:
            history = self._history.get(uid)
            assert history, "revived uid must have history"
            last = history[-1]
            assert isinstance(last, EdgeRecord)
            if (last.source_uid, last.target_uid) != (source, target):
                raise UniquenessError(
                    f"edge {uid} endpoints are immutable: "
                    f"({last.source_uid}->{last.target_uid}) != ({source}->{target})"
                )
        record = EdgeRecord(
            uid=uid, cls=cls, fields=normalized,
            period=Interval(self.clock.now(), FOREVER),
            source_uid=source, target_uid=target,
        )
        self._admit(record)
        if not revived:
            self._out.add(source, cls.name, uid)
            self._in.add(target, cls.name, uid)
        return uid

    def _admit(self, record: ElementRecord) -> None:
        self._current[record.uid] = record
        self._class_of[record.uid] = record.cls
        self._class_index.add(record.cls.name, record.uid)
        self._field_index.add(record.cls.name, record.uid, dict(record.fields))
        cls_name = record.cls.name
        start = record.period.start
        self._temporal_class.open(cls_name, record.uid, start)
        self._temporal_field.open(cls_name, record.uid, start, dict(record.fields))
        self.bump_data_version()

    @_write_op
    def update_element(self, uid: int, changes: Mapping[str, Any]) -> None:
        current = self._current.get(uid)
        if current is None:
            raise UnknownElementError(f"cannot update unknown or deleted element {uid}")
        merged = dict(current.fields)
        for field_name, value in changes.items():
            if value is None:
                merged.pop(field_name, None)
            else:
                merged[field_name] = value
        normalized = validate_fields(current.cls, merged)
        now = self.clock.now()
        cls_name = current.cls.name
        old_fields = dict(current.fields)
        self._field_index.discard(cls_name, uid, old_fields)
        if now > current.period.start:
            closed = current.with_period(Interval(current.period.start, now))
            self._history.setdefault(uid, []).append(closed)
            # The superseded version keeps its period in the temporal
            # indexes; the replacement opens a fresh posting at *now*.
            self._temporal_class.close(cls_name, uid, now)
            self._temporal_field.close(cls_name, uid, now, old_fields)
            self._temporal_class.open(cls_name, uid, now)
        else:
            # The version opened at this same instant; overwrite in place.
            # The class posting (same uid, same start) is untouched, but
            # the zero-duration field values never existed.
            self._temporal_field.drop_open(cls_name, uid, old_fields)
        replacement = self._reopen(current, normalized, now)
        self._current[uid] = replacement
        self._field_index.add(cls_name, uid, normalized)
        self._temporal_field.open(cls_name, uid, replacement.period.start, normalized)
        self.bump_data_version()

    @staticmethod
    def _reopen(
        previous: ElementRecord, fields: dict[str, Any], start: float
    ) -> ElementRecord:
        period = Interval(start, FOREVER)
        if isinstance(previous, EdgeRecord):
            return EdgeRecord(
                uid=previous.uid, cls=previous.cls, fields=fields, period=period,
                source_uid=previous.source_uid, target_uid=previous.target_uid,
            )
        return NodeRecord(
            uid=previous.uid, cls=previous.cls, fields=fields, period=period
        )

    @_write_op
    def delete_element(self, uid: int) -> None:
        current = self._current.get(uid)
        if current is None:
            raise UnknownElementError(f"cannot delete unknown or deleted element {uid}")
        if isinstance(current, NodeRecord):
            for edge_uid in list(self._out.edges(uid)) + list(self._in.edges(uid)):
                if edge_uid in self._current:
                    self.delete_element(edge_uid)
        now = self.clock.now()
        fields = dict(current.fields)
        if now > current.period.start:
            closed = current.with_period(Interval(current.period.start, now))
            self._history.setdefault(uid, []).append(closed)
            self._temporal_class.close(current.cls.name, uid, now)
            self._temporal_field.close(current.cls.name, uid, now, fields)
        else:
            # A version opened and deleted at the same instant never existed.
            self._temporal_class.drop_open(current.cls.name, uid)
            self._temporal_field.drop_open(current.cls.name, uid, fields)
        del self._current[uid]
        self._class_index.discard(current.cls.name, uid)
        self._field_index.discard(current.cls.name, uid, fields)
        self.bump_data_version()

    @_write_op
    def reinsert(self, uid: int, fields: Mapping[str, Any] | None = None,
                 source: int | None = None, target: int | None = None) -> int:
        """Bring a previously deleted element back (same uid, same class).

        Snapshot feeds commonly flap elements; the version chain records the
        gap, which is exactly what makes time-range queries interesting.
        """
        if uid in self._current:
            raise UniquenessError(f"element {uid} is already current")
        versions = self._history.get(uid)
        if not versions:
            raise UnknownElementError(f"element {uid} was never stored")
        last = versions[-1]
        normalized = validate_fields(last.cls, dict(fields or last.fields))
        if source is not None or target is not None:
            raise StorageError("edge endpoints are immutable; insert a new edge instead")
        record = self._reopen(last, normalized, self.clock.now())
        if isinstance(record, EdgeRecord):
            for endpoint in (record.source_uid, record.target_uid):
                if not isinstance(self._current.get(endpoint), NodeRecord):
                    raise UnknownElementError(
                        f"cannot reinsert edge {uid}: endpoint {endpoint} is not current"
                    )
        self._admit(record)
        return uid

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def _csr_snapshot(self) -> CsrSnapshot | None:
        """The columnar snapshot for this ``data_version`` epoch, or ``None``
        when the read should stay on the row path.

        The snapshot is immutable, so invalidation is just an epoch
        comparison.  Rebuilds are lazy *and* amortized: the first batch
        read of a fresh epoch only marks the epoch seen and runs row-wise;
        the second pays one O(n) build that every later read in the epoch
        reuses.  Write-heavy interleavings (one read per epoch) therefore
        never thrash full rebuilds, while read-heavy epochs — the hot path
        this layer exists for — go columnar from their second read on.

        Callers hold the read lock, which keeps the build consistent;
        ``_csr_lock`` only stops concurrent readers duplicating the build.
        """
        snapshot = self._csr
        version = self.data_version
        if snapshot is not None and snapshot.data_version == version:
            self._event("executor.batch.csr_reuse")
            return snapshot
        if self._csr_seen_version != version:
            self._csr_seen_version = version
            return None
        with self._csr_lock:
            snapshot = self._csr
            if snapshot is not None and snapshot.data_version == version:
                return snapshot
            snapshot = build_csr(self)
            self._csr = snapshot
        self._event("executor.batch.csr_build")
        return snapshot

    def _batch_reads(self) -> bool:
        return self.batch_enabled and self.temporal_index_enabled

    def _visible_versions(self, uid: int, scope: TimeScope) -> list[ElementRecord]:
        result: list[ElementRecord] = []
        if not scope.is_current:
            for version in self._history.get(uid, ()):
                if scope.admits(version.period):
                    result.append(version)
        current = self._current.get(uid)
        if current is not None and scope.admits(current.period):
            result.append(current)
        return result

    @_read_op
    def get_element(self, uid: int, scope: TimeScope) -> ElementRecord | None:
        versions = self._visible_versions(uid, scope)
        return versions[-1] if versions else None

    @_read_op
    def get_many(self, uids: Sequence[int], scope: TimeScope) -> dict[int, ElementRecord]:
        """Batched :meth:`get_element` under a single lock acquisition."""
        if self.batch_enabled:
            csr = self._csr_snapshot()
            if csr is not None:
                from repro.plan.batch import batch_get_many

                self._event("executor.batch.point_reads", len(uids))
                return batch_get_many(csr, uids, scope)
        result: dict[int, ElementRecord] = {}
        for uid in uids:
            versions = self._visible_versions(uid, scope)
            if versions:
                result[uid] = versions[-1]
        return result

    @_read_op
    def versions(self, uid: int, window: Interval) -> list[ElementRecord]:
        result = [
            version
            for version in self._history.get(uid, ())
            if version.period.overlaps(window)
        ]
        current = self._current.get(uid)
        if current is not None and current.period.overlaps(window):
            result.append(current)
        return result

    def _representative(self, uid: int, atom: Atom, scope: TimeScope) -> ElementRecord | None:
        """Latest visible version satisfying *atom*, or None."""
        for version in reversed(self._visible_versions(uid, scope)):
            if atom.matches(version):
                return version
        return None

    @_read_op
    def scan_atom(self, atom: Atom, scope: TimeScope) -> list[ElementRecord]:
        if atom.cls is None:
            raise StorageError(f"atom {atom.class_name}() must be bound before scanning")
        class_names = self.schema.concrete_names(atom.cls)

        # Batch scans additionally require the temporal ablation switch on,
        # so flipping it off still compares against the true row oracle.
        if self._batch_reads():
            csr = self._csr_snapshot()
            if csr is not None:
                from repro.plan.batch import batch_scan_atom

                results = batch_scan_atom(self, csr, atom, class_names, scope)
                if results is not None:
                    self._event("executor.batch.scan")
                    self._event("executor.batch.scan_rows", len(results))
                    return results

        candidate_uids = self._anchor_candidates(atom, class_names, scope)
        results: list[ElementRecord] = []
        for uid in sorted(candidate_uids):
            record = self._representative(uid, atom, scope)
            if record is not None:
                results.append(record)
        return results

    def _anchor_candidates(
        self, atom: Atom, class_names: Sequence[str], scope: TimeScope
    ) -> set[int]:
        uid_value = atom.equality_value("id")
        if uid_value is not None:
            cls = self._class_of.get(int(uid_value))
            if cls is None or not cls.is_subclass_of(atom.cls):
                return set()
            return {int(uid_value)}
        if scope.is_current:
            candidates = self._indexed_equalities(atom, class_names, scope, temporal=False)
            if candidates is not None:
                self._event("index.field.hit")
                return candidates
            self._event("index.class.hit")
            total = len(self._current)
            if total and self._class_index.count(class_names) >= total:
                # Cost gate: the class subtree covers the whole live store
                # (root scans like Element()), so copying and unioning the
                # per-class index sets can only lose to snapshotting the
                # live dict's keys directly.
                self._event("index.class.live_scan")
                return set(self._current)
            return self._class_index.members(class_names)
        if not self.temporal_index_enabled:
            # Ablation / oracle path: the pre-index full-extent scan.
            self._event("index.temporal.scan")
            names = set(class_names)
            return {uid for uid, cls in self._class_of.items() if cls.name in names}
        candidates = self._indexed_equalities(atom, class_names, scope, temporal=True)
        if candidates is not None:
            self._event("index.temporal.field_hit")
            self._event("index.temporal.candidates", len(candidates))
            return candidates
        candidates = self._temporal_class.lookup(class_names, scope)
        self._event("index.temporal.class_hit")
        self._event("index.temporal.candidates", len(candidates))
        return candidates

    def _indexed_equalities(
        self, atom: Atom, class_names: Sequence[str], scope: TimeScope, temporal: bool
    ) -> set[int] | None:
        """Intersection of every indexed equality predicate of *atom*.

        Every predicate an element must satisfy is satisfied by *some*
        version of it, so each indexed lookup yields a superset of the
        answer and the intersection is the tightest index-only candidate
        set — equivalent to starting from the most selective predicate.
        Returns ``None`` when no equality predicate is indexed.
        """
        candidates: set[int] | None = None
        for predicate in atom.predicates:
            if predicate.op != "=":
                continue
            if temporal:
                indexed = self._temporal_field.lookup(
                    class_names, predicate.name, predicate.value, scope
                )
            else:
                indexed = self._field_index.lookup(
                    class_names, predicate.name, predicate.value
                )
            if indexed is None:
                continue
            candidates = indexed if candidates is None else candidates & indexed
            if not candidates:
                break
        return candidates

    def _edge_class_names(
        self, classes: Sequence[EdgeClass] | None
    ) -> list[str] | None:
        if classes is None:
            return None
        names: set[str] = set()
        for cls in classes:
            names.update(self.schema.concrete_names(cls))
        return sorted(names)

    def _expand(
        self,
        adjacency: AdjacencyIndex,
        node_uid: int,
        scope: TimeScope,
        class_names: list[str] | None,
    ) -> list[EdgeRecord]:
        records: list[EdgeRecord] = []
        for edge_uid in adjacency.edges(node_uid, class_names):
            versions = self._visible_versions(edge_uid, scope)
            if versions:
                record = versions[-1]
                assert isinstance(record, EdgeRecord)
                records.append(record)
        return records

    def _expand_many(
        self,
        adjacency: AdjacencyIndex,
        node_uids: Sequence[int],
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None,
    ) -> dict[int, list[EdgeRecord]]:
        """One adjacency expansion for a whole frontier: the class-subtree
        filter is resolved once, then applied per node."""
        class_names = self._edge_class_names(classes)
        self._event("index.expand.batches")
        self._event("index.expand.nodes", len(node_uids))
        if self.batch_enabled:
            csr = self._csr_snapshot()
            if csr is not None:
                from repro.plan.batch import batch_expand_many

                self._event("executor.batch.expand")
                return batch_expand_many(
                    csr, adjacency is self._out, node_uids, scope, class_names
                )
        return {
            uid: self._expand(adjacency, uid, scope, class_names)
            for uid in node_uids
        }

    @_read_op
    def out_edges(
        self, node_uid: int, scope: TimeScope, classes: Sequence[EdgeClass] | None = None
    ) -> list[EdgeRecord]:
        return self._expand(self._out, node_uid, scope, self._edge_class_names(classes))

    @_read_op
    def in_edges(
        self, node_uid: int, scope: TimeScope, classes: Sequence[EdgeClass] | None = None
    ) -> list[EdgeRecord]:
        return self._expand(self._in, node_uid, scope, self._edge_class_names(classes))

    @_read_op
    def out_edges_many(
        self,
        node_uids: Sequence[int],
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> dict[int, list[EdgeRecord]]:
        return self._expand_many(self._out, node_uids, scope, classes)

    @_read_op
    def in_edges_many(
        self,
        node_uids: Sequence[int],
        scope: TimeScope,
        classes: Sequence[EdgeClass] | None = None,
    ) -> dict[int, list[EdgeRecord]]:
        return self._expand_many(self._in, node_uids, scope, classes)

    # ------------------------------------------------------------------
    # statistics & accounting
    # ------------------------------------------------------------------

    @_read_op
    def class_count(self, class_name: str) -> int:
        cls = self.schema.resolve(class_name)
        return self._class_index.count(self.schema.concrete_names(cls))

    @_read_op
    def class_count_at(self, class_name: str, scope: TimeScope) -> int | None:
        """Scope-aware class cardinality, served by the temporal index.

        Historical anchor costing uses this so churned inventories are
        costed with what existed *then*, not what exists now.
        """
        if scope.is_current:
            return self.class_count(class_name)
        if not self.temporal_index_enabled:
            return None
        cls = self.schema.resolve(class_name)
        return self._temporal_class.count(self.schema.concrete_names(cls), scope)

    @_read_op
    def counts(self) -> dict[str, int]:
        nodes = sum(1 for r in self._current.values() if isinstance(r, NodeRecord))
        edges = len(self._current) - nodes
        history = sum(len(chain) for chain in self._history.values())
        return {
            "nodes": nodes,
            "edges": edges,
            "current_versions": len(self._current),
            "history_versions": history,
        }

    @_read_op
    def storage_cells(self) -> int:
        """Stored cells across all versions (id + class + period + fields)."""
        total = 0
        for record in self._current.values():
            total += 3 + len(record.fields)
        for chain in self._history.values():
            for record in chain:
                total += 3 + len(record.fields)
        return total

    # ------------------------------------------------------------------
    # introspection used by tests and the traversal API
    # ------------------------------------------------------------------

    def reserve_uid(self) -> int:
        return self._ids.next()

    def observe_uid(self, external_id: int) -> None:
        self._ids.observe(external_id)

    @property
    def last_uid(self) -> int:
        return self._ids.last

    @_read_op
    def known_uids(self) -> list[int]:
        """Every uid ever admitted — current, historical, or deleted."""
        return sorted(self._class_of)

    @_read_op
    def current_uids(self) -> list[int]:
        return sorted(self._current)

    @_read_op
    def degree(self, node_uid: int) -> tuple[int, int]:
        """Structural (out, in) degree — includes historical edges."""
        return self._out.degree(node_uid), self._in.degree(node_uid)

    @_read_op
    def temporal_posting_count(self, class_name: str) -> int:
        """Version postings the temporal class index holds for one class."""
        return self._temporal_class.postings_count(class_name)

    @_write_op
    def rebuild_temporal_indexes(self) -> None:
        """Recreate the temporal indexes from the version chains.

        Incremental maintenance must be equivalent to this full rebuild;
        the differential tests flip between them to prove it.  Rebuilding
        inserts closed postings in per-uid (not global end) order, which
        also exercises the postings' lazy re-sort guard.
        """
        self._temporal_class = TemporalClassIndex()
        self._temporal_field = TemporalFieldIndex(self._field_index.indexed_fields)
        for uid, cls in self._class_of.items():
            for version in self._history.get(uid, ()):
                fields = dict(version.fields)
                self._temporal_class.open(cls.name, uid, version.period.start)
                self._temporal_class.close(cls.name, uid, version.period.end)
                self._temporal_field.open(cls.name, uid, version.period.start, fields)
                self._temporal_field.close(cls.name, uid, version.period.end, fields)
            current = self._current.get(uid)
            if current is not None:
                start = current.period.start
                self._temporal_class.open(cls.name, uid, start)
                self._temporal_field.open(cls.name, uid, start, dict(current.fields))
