"""Index structures for the in-memory backend.

Three indexes mirror what the paper's Gremlin deployment relies on:

* a class index over *current* elements (label-prefix matching turns into
  subtree unions, since an element's class never changes);
* per-edge-class adjacency lists in both directions — the in-memory
  analogue of the per-class edge tables whose benefit §6 quantifies;
* an equality index on selected fields of current elements, used to seed
  anchors like ``Host(name='src')`` without a class scan.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.schema.classes import field_value_key


class ClassIndex:
    """uids of current elements per concrete class name."""

    def __init__(self) -> None:
        self._members: dict[str, set[int]] = defaultdict(set)

    def add(self, class_name: str, uid: int) -> None:
        self._members[class_name].add(uid)

    def discard(self, class_name: str, uid: int) -> None:
        self._members[class_name].discard(uid)

    def members(self, class_names: Iterable[str]) -> set[int]:
        result: set[int] = set()
        for name in class_names:
            result |= self._members.get(name, set())
        return result

    def count(self, class_names: Iterable[str]) -> int:
        return sum(len(self._members.get(name, ())) for name in class_names)


class AdjacencyIndex:
    """edge uids incident to a node, partitioned by concrete edge class.

    Membership is *structural* (an edge stays listed after logical deletion);
    visibility under a time scope is checked by the store on access, exactly
    like a row surviving in a history table.
    """

    def __init__(self) -> None:
        self._edges: dict[int, dict[str, list[int]]] = {}

    def add(self, node_uid: int, class_name: str, edge_uid: int) -> None:
        per_class = self._edges.setdefault(node_uid, {})
        per_class.setdefault(class_name, []).append(edge_uid)

    def edges(self, node_uid: int, class_names: Iterable[str] | None = None) -> list[int]:
        per_class = self._edges.get(node_uid)
        if per_class is None:
            return []
        if class_names is None:
            result: list[int] = []
            for uids in per_class.values():
                result.extend(uids)
            return result
        result = []
        for name in class_names:
            result.extend(per_class.get(name, ()))
        return result

    def degree(self, node_uid: int) -> int:
        per_class = self._edges.get(node_uid)
        if per_class is None:
            return 0
        return sum(len(uids) for uids in per_class.values())


class FieldEqualityIndex:
    """(class, field, value) → uids of current elements."""

    def __init__(self, indexed_fields: tuple[str, ...] = ("name",)):
        self.indexed_fields = indexed_fields
        self._entries: dict[tuple[str, str], dict[object, set[int]]] = defaultdict(dict)

    def add(self, class_name: str, uid: int, fields: dict) -> None:
        for field_name in self.indexed_fields:
            value = fields.get(field_name)
            if value is None:
                continue
            bucket = self._entries[(class_name, field_name)]
            bucket.setdefault(field_value_key(value), set()).add(uid)

    def discard(self, class_name: str, uid: int, fields: dict) -> None:
        for field_name in self.indexed_fields:
            value = fields.get(field_name)
            if value is None:
                continue
            bucket = self._entries.get((class_name, field_name))
            if bucket is not None:
                members = bucket.get(field_value_key(value))
                if members is not None:
                    members.discard(uid)

    def lookup(
        self, class_names: Iterable[str], field_name: str, value: object
    ) -> set[int] | None:
        """uids matching the equality, or None when the field is unindexed."""
        if field_name not in self.indexed_fields:
            return None
        key = field_value_key(value)
        result: set[int] = set()
        for class_name in class_names:
            bucket = self._entries.get((class_name, field_name))
            if bucket is not None:
                result |= bucket.get(key, set())
        return result
