"""A small Gremlin-flavoured traversal API over the in-memory store.

Nepal compiles RPEs to traversal operators; this module exposes the same
primitive steps directly (``V().hasLabel(...).out(...)``) so tests can
cross-check the compiled plans against hand-written traversals, and so
examples can show what Nepal saves the user from writing.

Label matching follows the paper's Gremlin encoding: the label of an element
is its inheritance path (``Node:VM:VMWare``) and ``hasLabel('VM')`` matches
by class subtree — the prefix-matching trick of §5.2.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.model.elements import EdgeRecord, ElementRecord, NodeRecord
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore


class Traversal:
    """A lazily evaluated chain of traversal steps."""

    def __init__(
        self,
        store: MemGraphStore,
        scope: TimeScope | None = None,
        source: Iterable[ElementRecord] | None = None,
    ):
        self._store = store
        self._scope = scope or TimeScope.current()
        self._source = source

    # -- step plumbing ------------------------------------------------------

    def _stream(self) -> Iterable[ElementRecord]:
        if self._source is None:
            return []
        return self._source

    def _derive(self, generator: Iterable[ElementRecord]) -> "Traversal":
        return Traversal(self._store, self._scope, generator)

    # -- start steps ----------------------------------------------------------

    def V(self, *uids: int) -> "Traversal":
        """All current-scope nodes, or the ones with the given uids."""
        scope = self._scope

        def generate() -> Iterable[ElementRecord]:
            if uids:
                for uid in uids:
                    record = self._store.get_element(uid, scope)
                    if isinstance(record, NodeRecord):
                        yield record
            else:
                for uid in self._store.current_uids():
                    record = self._store.get_element(uid, scope)
                    if isinstance(record, NodeRecord):
                        yield record

        return self._derive(generate())

    # -- filter steps -----------------------------------------------------------

    def hasLabel(self, class_name: str) -> "Traversal":
        cls = self._store.schema.resolve(class_name)

        def generate() -> Iterable[ElementRecord]:
            for record in self._stream():
                if record.instance_of(cls):
                    yield record

        return self._derive(generate())

    def has(self, field_name: str, value: Any) -> "Traversal":
        def generate() -> Iterable[ElementRecord]:
            for record in self._stream():
                if record.get(field_name) == value:
                    yield record

        return self._derive(generate())

    def filter(self, predicate: Callable[[ElementRecord], bool]) -> "Traversal":
        return self._derive(r for r in self._stream() if predicate(r))

    def dedup(self) -> "Traversal":
        def generate() -> Iterable[ElementRecord]:
            seen: set[int] = set()
            for record in self._stream():
                if record.uid not in seen:
                    seen.add(record.uid)
                    yield record

        return self._derive(generate())

    def limit(self, count: int) -> "Traversal":
        def generate() -> Iterable[ElementRecord]:
            for index, record in enumerate(self._stream()):
                if index >= count:
                    return
                yield record

        return self._derive(generate())

    # -- move steps ---------------------------------------------------------------

    def _edge_classes(self, class_name: str | None):
        if class_name is None:
            return None
        return [self._store.schema.edge_class(class_name)]

    def outE(self, class_name: str | None = None) -> "Traversal":
        classes = self._edge_classes(class_name)

        def generate() -> Iterable[ElementRecord]:
            for record in self._stream():
                if isinstance(record, NodeRecord):
                    yield from self._store.out_edges(record.uid, self._scope, classes)

        return self._derive(generate())

    def inE(self, class_name: str | None = None) -> "Traversal":
        classes = self._edge_classes(class_name)

        def generate() -> Iterable[ElementRecord]:
            for record in self._stream():
                if isinstance(record, NodeRecord):
                    yield from self._store.in_edges(record.uid, self._scope, classes)

        return self._derive(generate())

    def inV(self) -> "Traversal":
        """The head (target) node of each edge on the stream."""

        def generate() -> Iterable[ElementRecord]:
            for record in self._stream():
                if isinstance(record, EdgeRecord):
                    node = self._store.get_element(record.target_uid, self._scope)
                    if node is not None:
                        yield node

        return self._derive(generate())

    def outV(self) -> "Traversal":
        """The tail (source) node of each edge on the stream."""

        def generate() -> Iterable[ElementRecord]:
            for record in self._stream():
                if isinstance(record, EdgeRecord):
                    node = self._store.get_element(record.source_uid, self._scope)
                    if node is not None:
                        yield node

        return self._derive(generate())

    def out(self, class_name: str | None = None) -> "Traversal":
        return self.outE(class_name).inV()

    def in_(self, class_name: str | None = None) -> "Traversal":
        return self.inE(class_name).outV()

    # -- terminal steps ---------------------------------------------------------------

    def to_list(self) -> list[ElementRecord]:
        return list(self._stream())

    def values(self, field_name: str) -> list[Any]:
        return [record.get(field_name) for record in self._stream()]

    def count(self) -> int:
        return sum(1 for _ in self._stream())


def g(store: MemGraphStore, scope: TimeScope | None = None) -> Traversal:
    """Gremlin-style entry point: ``g(store).V().hasLabel('VM')``."""
    return Traversal(store, scope)
