"""TOSCA-style schema loading (Section 3.2).

ONAP models services with TOSCA; the Nepal schema language "is derived from
the Tosca schema language (data_types, node_types, capability_types),
allowing automatic translation from Tosca to a Nepal schema".  This module
implements that translation for a pragmatic YAML dialect:

.. code-block:: yaml

    schema: my-network
    data_types:
      routingTableEntry:
        properties:
          address: ipaddress
          mask: integer
          interface: string
    node_types:
      VM:
        derived_from: Container
        properties:
          vcpus: integer
          flavor: {type: string, required: false}
    relationship_types:
      OnVM:
        derived_from: HostedOn
        valid_endpoints: [[VFC, Container]]

``relationship_types`` corresponds to TOSCA capability/relationship types —
edge classes whose ``valid_endpoints`` entries populate the allowed-edge
matrix.  ``derived_from`` expresses inheritance for all three sections; the
loader topologically sorts definitions so parents are created first.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

import yaml

from repro.errors import SchemaError
from repro.schema.classes import Field
from repro.schema.registry import Schema

_NODE_ROOT = "Node"
_EDGE_ROOT = "Edge"


def schema_from_tosca_file(path: str | Path) -> Schema:
    """Load a schema from a TOSCA-style YAML file."""
    with open(path, encoding="utf-8") as handle:
        document = yaml.safe_load(handle)
    return schema_from_tosca(document)


def schema_from_tosca(document: Mapping[str, Any]) -> Schema:
    """Build a :class:`Schema` from a parsed TOSCA-style document."""
    if not isinstance(document, Mapping):
        raise SchemaError("TOSCA document must be a mapping")
    schema = Schema(str(document.get("schema", "tosca-schema")))
    _load_data_types(schema, document.get("data_types") or {})
    _load_classes(schema, document.get("node_types") or {}, kind="node")
    _load_classes(
        schema,
        document.get("relationship_types") or document.get("capability_types") or {},
        kind="edge",
    )
    schema.validate()
    return schema


def _ordered_by_inheritance(
    definitions: Mapping[str, Mapping[str, Any]], builtin_parents: set[str]
) -> list[str]:
    """Topologically sort definitions so ``derived_from`` parents come first."""
    remaining = dict(definitions)
    done: set[str] = set(builtin_parents)
    order: list[str] = []
    while remaining:
        progress = False
        for name in list(remaining):
            definition = remaining[name] or {}
            parent = definition.get("derived_from")
            if parent is None or parent in done:
                order.append(name)
                done.add(name)
                del remaining[name]
                progress = True
        if not progress:
            raise SchemaError(
                f"cyclic or dangling derived_from chain among: {sorted(remaining)}"
            )
    return order


def _parse_properties(schema: Schema, properties: Mapping[str, Any] | None) -> dict[str, Field]:
    fields: dict[str, Field] = {}
    for prop_name, spec in (properties or {}).items():
        if isinstance(spec, str):
            fields[prop_name] = Field(prop_name, schema.types.resolve(spec))
        elif isinstance(spec, Mapping):
            type_name = spec.get("type")
            if not type_name:
                raise SchemaError(f"property {prop_name!r} is missing its type")
            entry = spec.get("entry_schema")
            if entry:
                # TOSCA spells list-of-X as type: list + entry_schema: X.
                type_name = f"{type_name}[{entry if isinstance(entry, str) else entry['type']}]"
            fields[prop_name] = Field(
                prop_name,
                schema.types.resolve(str(type_name)),
                required=bool(spec.get("required", False)),
                default=spec.get("default"),
                description=str(spec.get("description", "")),
            )
        else:
            raise SchemaError(f"property {prop_name!r}: unsupported spec {spec!r}")
    return fields


def _load_data_types(schema: Schema, definitions: Mapping[str, Any]) -> None:
    for name in _ordered_by_inheritance(definitions, builtin_parents=set()):
        definition = definitions[name] or {}
        properties = _parse_properties(schema, definition.get("properties"))
        schema.types.define(
            name,
            properties,
            parent=definition.get("derived_from"),
            description=str(definition.get("description", "")),
        )


def _load_classes(schema: Schema, definitions: Mapping[str, Any], kind: str) -> None:
    root = _NODE_ROOT if kind == "node" else _EDGE_ROOT
    for name in _ordered_by_inheritance(definitions, builtin_parents={root}):
        definition = definitions[name] or {}
        fields = _parse_properties(schema, definition.get("properties"))
        common = {
            "parent": definition.get("derived_from", root),
            "fields": fields,
            "abstract": bool(definition.get("abstract", False)),
            "description": str(definition.get("description", "")),
            "expected_count": definition.get("expected_count"),
        }
        if kind == "node":
            schema.define_node(name, **common)
        else:
            endpoints = [
                (str(src), str(dst))
                for src, dst in (definition.get("valid_endpoints") or [])
            ]
            schema.define_edge(
                name,
                endpoints=endpoints,
                symmetric=definition.get("symmetric"),
                **common,
            )


def schema_to_tosca(schema: Schema) -> dict[str, Any]:
    """Render a schema back to the TOSCA-style document form.

    Useful for round-trip tests and for exporting schemas to ONAP tooling.
    """
    document: dict[str, Any] = {
        "schema": schema.name,
        "data_types": {},
        "node_types": {},
        "relationship_types": {},
    }
    for name, data_type in schema.types.composite_types().items():
        document["data_types"][name] = {
            "description": data_type.description,
            "properties": {
                f.name: {"type": f.type.name, "required": f.required}
                for f in data_type.own_fields.values()
            },
        }
        if data_type.parent is not None:
            document["data_types"][name]["derived_from"] = data_type.parent.name
    for cls in schema.classes():
        if cls.parent is None:
            continue
        section = "node_types" if cls.kind == "node" else "relationship_types"
        entry: dict[str, Any] = {
            "derived_from": cls.parent.name,
            "abstract": cls.abstract,
            "properties": {
                f.name: {"type": f.type.name, "required": f.required}
                for f in cls.own_fields.values()
            },
        }
        if cls.kind == "edge":
            own_rules = getattr(cls, "_own_endpoints", ())
            if own_rules:
                entry["valid_endpoints"] = [
                    [rule.source.name, rule.target.name] for rule in own_rules
                ]
        document[section][cls.name] = entry
    return document
