"""The built-in ONAP-style layered network schema (Figures 2 and 3).

This is the schema the paper's virtualized-service evaluation runs on: four
layers (Service, Logical, Virtualization, Physical), ``Vertical`` edges for
HostedOn/ComposedOf relationships across layers and ``Horizontal`` edges for
connectivity within a layer.  The class names follow the paper's examples —
``VM:VMWare``/``VM:OnMetal`` node subclasses, ``ConnectedTo:ServerSwitch``
extending ``ConnectedTo`` with interface fields, ``ConnectedTo:VmNetwork``
adding an IP address, and a ``Router`` node carrying a structured routing
table (``List[routingTableEntry]``).

The schema is deliberately richer than the minimum required by the example
queries so that query-time generalization has real work to do: atoms like
``VNF()``, ``Vertical()`` or ``ConnectedTo()`` each cover several concrete
classes.
"""

from __future__ import annotations

from repro.schema.registry import Schema


def build_network_schema(name: str = "onap-network") -> Schema:
    """Construct the layered virtualized-network schema used throughout.

    Returns a fully validated :class:`~repro.schema.registry.Schema`.
    """
    schema = Schema(name)

    # ----- structured data types (Section 3.2.1) ------------------------
    schema.types.define(
        "routingTableEntry",
        {"address": "ipaddress", "mask": "integer", "interface": "string"},
        description="one route: destination prefix, mask length, out interface",
    )
    schema.types.define(
        "alarm",
        {"severity": "string", "message": "string", "raised_at": "timestamp"},
        description="an active alarm on a network element",
    )
    schema.types.define(
        "vnfDescriptor",
        {"vendor": "string", "version": "string"},
        description="TOSCA-style descriptor metadata for a VNF",
    )

    # ----- node hierarchy -------------------------------------------------
    schema.define_node(
        "NetworkElement", abstract=True,
        fields={"status": "string", "region": "string", "alarms": "list[alarm]"},
        description="any managed element of the network",
    )

    # Physical layer ------------------------------------------------------
    schema.define_node(
        "PhysicalElement", parent="NetworkElement", abstract=True,
        fields={"rack": "string", "serial_number": "string"},
    )
    schema.define_node(
        "Host", parent="PhysicalElement",
        fields={"cpu_cores": "integer", "memory_gb": "float", "hypervisor": "string"},
        description="a physical compute server",
        expected_count=200,
    )
    schema.define_node(
        "Switch", parent="PhysicalElement",
        fields={"ports": "integer"},
        expected_count=50,
    )
    schema.define_node("TorSwitch", parent="Switch",
                       description="top-of-rack switch", expected_count=40)
    schema.define_node("SpineSwitch", parent="Switch",
                       description="spine/aggregation switch", expected_count=10)
    schema.define_node(
        "Router", parent="PhysicalElement",
        fields={"routing_table": "list[routingTableEntry]"},
        expected_count=10,
    )

    # Virtualization layer --------------------------------------------------
    schema.define_node(
        "VirtualElement", parent="NetworkElement", abstract=True,
        description="elements of the overlay network",
    )
    schema.define_node(
        "Container", parent="VirtualElement", abstract=True,
        fields={"image": "string"},
        description="any virtualization container",
    )
    schema.define_node(
        "VM", parent="Container",
        fields={"vcpus": "integer", "flavor": "string"},
        expected_count=800,
    )
    schema.define_node("VMWare", parent="VM", expected_count=500)
    schema.define_node("OnMetal", parent="VM", expected_count=300)
    schema.define_node("Docker", parent="Container", expected_count=100)
    schema.define_node(
        "VirtualNetwork", parent="VirtualElement",
        fields={"cidr": "string"},
        expected_count=60,
    )
    schema.define_node("VirtualRouter", parent="VirtualElement", expected_count=30)

    # Logical layer ---------------------------------------------------------
    schema.define_node(
        "VFC", parent="VirtualElement", abstract=True,
        fields={"role": "string"},
        description="virtual function component — indivisible unit of a VNF",
    )
    schema.define_node("ProxyVFC", parent="VFC", expected_count=150)
    schema.define_node("WebServerVFC", parent="VFC", expected_count=150)
    schema.define_node("DatabaseVFC", parent="VFC", expected_count=100)
    schema.define_node("PacketCoreVFC", parent="VFC", expected_count=100)

    # Service layer -----------------------------------------------------------
    schema.define_node(
        "VNF", parent="VirtualElement", abstract=True,
        fields={"descriptor": "vnfDescriptor"},
        description="virtualized network function",
    )
    schema.define_node("DNS", parent="VNF", expected_count=10)
    schema.define_node("Firewall", parent="VNF",
                       fields={"ruleset_version": "string"}, expected_count=10)
    schema.define_node("LoadBalancer", parent="VNF", expected_count=10)
    schema.define_node("EPC", parent="VNF",
                       description="evolved packet core", expected_count=5)
    schema.define_node(
        "Service", parent="Node",
        fields={"customer": "string", "service_type": "string"},
        description="an end-to-end network service stitched from VNFs",
        expected_count=10,
    )

    # ----- edge hierarchy --------------------------------------------------
    schema.define_edge(
        "Vertical", abstract=True,
        description="cross-layer implementation relationships",
    )
    schema.define_edge(
        "ComposedOf", parent="Vertical",
        endpoints=[("Service", "VNF"), ("VNF", "VFC")],
        description="decomposition: service into VNFs, VNF into VFCs",
        expected_count=400,
    )
    schema.define_edge(
        "HostedOn", parent="Vertical", abstract=True,
        description="execution placement",
    )
    schema.define_edge(
        "OnVM", parent="HostedOn",
        endpoints=[("VFC", "Container")],
        description="a VFC runs inside a container or VM",
        expected_count=500,
    )
    schema.define_edge(
        "OnServer", parent="HostedOn",
        endpoints=[("Container", "Host")],
        description="a container/VM executes on a physical host",
        expected_count=900,
    )

    schema.define_edge(
        "Horizontal", abstract=True,
        description="communication relationships within a layer",
    )
    schema.define_edge(
        "ConnectedTo", parent="Horizontal", abstract=True, symmetric=True,
        description="generic connectivity",
    )
    schema.define_edge(
        "ServerSwitch", parent="ConnectedTo",
        fields={"server_interface": "string", "switch_interface": "string"},
        endpoints=[("Host", "Switch"), ("Switch", "Host")],
        expected_count=800,
    )
    schema.define_edge(
        "SwitchSwitch", parent="ConnectedTo",
        endpoints=[("Switch", "Switch")],
        expected_count=200,
    )
    schema.define_edge(
        "SwitchRouter", parent="ConnectedTo",
        endpoints=[("Switch", "Router"), ("Router", "Switch")],
        expected_count=100,
    )
    schema.define_edge(
        "RouterRouter", parent="ConnectedTo",
        endpoints=[("Router", "Router")],
        expected_count=40,
    )
    schema.define_edge(
        "VmNetwork", parent="ConnectedTo",
        fields={"ip_address": "ipaddress"},
        endpoints=[("Container", "VirtualNetwork"), ("VirtualNetwork", "Container")],
        description="a VM's attachment to a virtual network, with its IP",
        expected_count=1600,
    )
    schema.define_edge(
        "NetworkVRouter", parent="ConnectedTo",
        endpoints=[("VirtualNetwork", "VirtualRouter"), ("VirtualRouter", "VirtualNetwork")],
        expected_count=120,
    )
    schema.define_edge(
        "FlowsTo", parent="Horizontal",
        fields={"protocol": "string", "port": "integer"},
        endpoints=[("VNF", "VNF"), ("VFC", "VFC")],
        description="designed data/control flow at the service or logical layer",
        expected_count=300,
    )

    schema.validate()
    return schema
