"""Data types for node and edge fields (Section 3.2.1).

The paper's schema language, derived from TOSCA, supports:

* primitive types (string, integer, float, boolean, timestamp),
* composite ``data_types`` whose fields may themselves be of defined data
  types, with the composition DAG required to be acyclic,
* container fields — ``list``, ``set`` and ``map`` of a payload type,
* inheritance between data types (a subtype adds fields).

The running example is a router's routing table::

    routingTableEntry = (IPAddress address, Int mask, String interface)
    Router.routingTable : List[routingTableEntry]

Values are represented with plain Python objects (str/int/float/bool,
dict for composites, list/set/dict for containers); :meth:`DataType.validate`
checks and normalizes a value against the type.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from enum import Enum
from typing import Any, Mapping

from repro.errors import DataTypeError, ValidationError


class ContainerKind(str, Enum):
    """TOSCA container kinds available for fields."""

    LIST = "list"
    SET = "set"
    MAP = "map"


class DataType:
    """Abstract base for all field types."""

    name: str

    def validate(self, value: Any, path: str = "value") -> Any:
        """Check *value* against the type; return the normalized value.

        Raises :class:`ValidationError` on mismatch.  Subclasses may coerce
        (e.g. int → float) but never silently drop information.
        """
        raise NotImplementedError

    def is_subtype_of(self, other: "DataType") -> bool:
        """Nominal subtyping: only composite types form hierarchies."""
        return self is other or self.name == other.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class PrimitiveType(DataType):
    """A scalar type with a dedicated validator."""

    def __init__(self, name: str, python_types: tuple[type, ...], coerce=None):
        self.name = name
        self._python_types = python_types
        self._coerce = coerce

    def validate(self, value: Any, path: str = "value") -> Any:
        if isinstance(value, bool) and bool not in self._python_types:
            # bool is an int subclass; refuse it for integer/float fields.
            raise ValidationError(f"{path}: expected {self.name}, got boolean {value!r}")
        if isinstance(value, self._python_types) and self._coerce is None:
            return value
        if self._coerce is not None:
            try:
                return self._coerce(value)
            except (TypeError, ValueError) as exc:
                raise ValidationError(f"{path}: cannot coerce {value!r} to {self.name}") from exc
        raise ValidationError(f"{path}: expected {self.name}, got {type(value).__name__}")


def _validate_ip(value: Any) -> str:
    text = str(value)
    try:
        ipaddress.ip_address(text)
    except ValueError as exc:
        raise ValueError(f"not an IP address: {text!r}") from exc
    return text


#: The built-in primitive types, always present in a :class:`TypeRegistry`.
STRING = PrimitiveType("string", (str,))
INTEGER = PrimitiveType("integer", (int,))
FLOAT = PrimitiveType("float", (float, int), coerce=float)
BOOLEAN = PrimitiveType("boolean", (bool,))
TIMESTAMP = PrimitiveType("timestamp", (float, int), coerce=float)
IPADDRESS = PrimitiveType("ipaddress", (str,), coerce=_validate_ip)

_BUILTINS: dict[str, PrimitiveType] = {
    t.name: t for t in (STRING, INTEGER, FLOAT, BOOLEAN, TIMESTAMP, IPADDRESS)
}
# Friendly aliases accepted in schema definitions (TOSCA uses lowercase).
_ALIASES = {
    "str": "string",
    "text": "string",
    "int": "integer",
    "double": "float",
    "number": "float",
    "bool": "boolean",
    "ip": "ipaddress",
}


@dataclass(frozen=True)
class TypedField:
    """A named, typed field of a composite type (or of an element class)."""

    name: str
    type: DataType
    required: bool = False
    default: Any = None
    description: str = ""

    def validate(self, value: Any, path: str) -> Any:
        return self.type.validate(value, path=f"{path}.{self.name}")


class CompositeType(DataType):
    """A TOSCA ``data_type``: named fields, optional parent type."""

    def __init__(
        self,
        name: str,
        fields: Mapping[str, TypedField],
        parent: "CompositeType | None" = None,
        description: str = "",
    ):
        self.name = name
        self.parent = parent
        self.description = description
        self._own_fields = dict(fields)
        duplicated = set(self._own_fields) & set(parent.fields if parent else {})
        if duplicated:
            raise DataTypeError(
                f"data type {name!r} redefines inherited fields: {sorted(duplicated)}"
            )

    @property
    def fields(self) -> dict[str, TypedField]:
        """All fields, inherited ones first."""
        merged: dict[str, TypedField] = dict(self.parent.fields) if self.parent else {}
        merged.update(self._own_fields)
        return merged

    @property
    def own_fields(self) -> dict[str, TypedField]:
        return dict(self._own_fields)

    def is_subtype_of(self, other: DataType) -> bool:
        current: CompositeType | None = self
        while current is not None:
            if current.name == other.name:
                return True
            current = current.parent
        return False

    def validate(self, value: Any, path: str = "value") -> Any:
        if not isinstance(value, Mapping):
            raise ValidationError(
                f"{path}: expected a mapping for composite type {self.name}, "
                f"got {type(value).__name__}"
            )
        known = self.fields
        unknown = set(value) - set(known)
        if unknown:
            raise ValidationError(
                f"{path}: unknown fields {sorted(unknown)} for data type {self.name}"
            )
        normalized: dict[str, Any] = {}
        for field_name, spec in known.items():
            if field_name in value and value[field_name] is not None:
                normalized[field_name] = spec.validate(value[field_name], path)
            elif spec.required:
                raise ValidationError(
                    f"{path}: missing required field {field_name!r} of {self.name}"
                )
            elif spec.default is not None:
                normalized[field_name] = spec.default
        return normalized


class ContainerType(DataType):
    """A list/set/map of a payload type.

    Maps have string keys (the TOSCA convention); sets are normalized to
    sorted tuples so values stay hashable and deterministic.
    """

    def __init__(self, kind: ContainerKind, entry_type: DataType):
        self.kind = kind
        self.entry_type = entry_type
        self.name = f"{kind.value}[{entry_type.name}]"

    def validate(self, value: Any, path: str = "value") -> Any:
        if self.kind is ContainerKind.MAP:
            if not isinstance(value, Mapping):
                raise ValidationError(f"{path}: expected a map, got {type(value).__name__}")
            result = {}
            for key, entry in value.items():
                if not isinstance(key, str):
                    raise ValidationError(f"{path}: map keys must be strings, got {key!r}")
                result[key] = self.entry_type.validate(entry, path=f"{path}[{key!r}]")
            return result
        if isinstance(value, (str, bytes, Mapping)) or not hasattr(value, "__iter__"):
            raise ValidationError(
                f"{path}: expected a {self.kind.value}, got {type(value).__name__}"
            )
        entries = [
            self.entry_type.validate(entry, path=f"{path}[{i}]")
            for i, entry in enumerate(value)
        ]
        if self.kind is ContainerKind.SET:
            deduped = []
            for entry in entries:
                if entry not in deduped:
                    deduped.append(entry)
            return deduped
        return entries


class TypeRegistry:
    """Holds the data types of a schema; checks acyclicity of composition.

    The composition DAG requirement of §3.2.1 is enforced incrementally:
    a composite type may only reference types already registered, so a cycle
    can never be constructed through the public API, and :meth:`define` is
    the single entry point for composite definitions.
    """

    def __init__(self) -> None:
        self._types: dict[str, DataType] = dict(_BUILTINS)

    def resolve(self, name: str) -> DataType:
        """Look up a type by name (honouring aliases and container syntax).

        Container syntax: ``list[routingTableEntry]``, ``map[string]`` etc.
        """
        key = name.strip()
        lowered = key.lower()
        if "[" in key and key.endswith("]"):
            kind_name, _, inner = key.partition("[")
            try:
                kind = ContainerKind(kind_name.strip().lower())
            except ValueError as exc:
                raise DataTypeError(f"unknown container kind in {name!r}") from exc
            return ContainerType(kind, self.resolve(inner[:-1]))
        lowered = _ALIASES.get(lowered, lowered)
        if lowered in self._types:
            return self._types[lowered]
        if key in self._types:
            return self._types[key]
        raise DataTypeError(f"unknown data type: {name!r}")

    def define(
        self,
        name: str,
        fields: Mapping[str, "DataType | str | TypedField"],
        parent: str | None = None,
        description: str = "",
    ) -> CompositeType:
        """Register a composite data type.

        *fields* maps field names to types (by object, by name, or as a full
        :class:`TypedField`).
        """
        if name in self._types or name.lower() in _BUILTINS or name.lower() in _ALIASES:
            raise DataTypeError(f"data type {name!r} already defined")
        parent_type: CompositeType | None = None
        if parent is not None:
            resolved = self.resolve(parent)
            if not isinstance(resolved, CompositeType):
                raise DataTypeError(f"data type parent {parent!r} is not a composite type")
            parent_type = resolved
        typed_fields: dict[str, TypedField] = {}
        for field_name, spec in fields.items():
            if isinstance(spec, TypedField):
                typed_fields[field_name] = spec
            elif isinstance(spec, DataType):
                typed_fields[field_name] = TypedField(field_name, spec)
            else:
                typed_fields[field_name] = TypedField(field_name, self.resolve(spec))
        composite = CompositeType(name, typed_fields, parent=parent_type, description=description)
        self._types[name] = composite
        return composite

    def composite_types(self) -> dict[str, CompositeType]:
        return {
            name: data_type
            for name, data_type in self._types.items()
            if isinstance(data_type, CompositeType)
        }

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except DataTypeError:
            return False
        return True
