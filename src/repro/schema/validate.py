"""Record-level validation against a schema.

Strong typing is what "prevented us from loading garbage data into the
graphs, enabling early debugging" (§6.1): every insert is checked here before
a backend sees it.  Validation covers unknown fields, missing required
fields, field value types (including structured data), instantiability
(abstract classes cannot be stored) and edge endpoint admissibility.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ValidationError
from repro.schema.classes import EdgeClass, ElementClass, NodeClass
from repro.schema.registry import Schema


def validate_fields(
    cls: ElementClass, fields: Mapping[str, Any], strict: bool = True
) -> dict[str, Any]:
    """Validate and normalize a field mapping for an element of class *cls*.

    With ``strict=False`` unknown fields are dropped instead of raising —
    used by the snapshot loader when ingesting feeds that carry extra
    operational noise the schema does not model.
    """
    if cls.abstract:
        raise ValidationError(f"class {cls.path} is abstract and cannot be instantiated")
    known = cls.fields
    unknown = set(fields) - set(known)
    if unknown and strict:
        raise ValidationError(
            f"unknown fields {sorted(unknown)} for class {cls.path}; "
            f"known fields: {sorted(known)}"
        )
    normalized: dict[str, Any] = {}
    for name, spec in known.items():
        value = fields.get(name)
        if value is not None:
            normalized[name] = spec.type.validate(value, path=f"{cls.name}.{name}")
        elif spec.required:
            raise ValidationError(f"missing required field {name!r} for class {cls.path}")
        elif spec.default is not None:
            normalized[name] = spec.default
    return normalized


def validate_edge_endpoints(
    schema: Schema, edge_class: EdgeClass, source_class: NodeClass, target_class: NodeClass
) -> None:
    """Check the allowed-edge matrix (the "no VNF directly on a server" rule).

    The paper's Figure 3 example: ``composed_of`` and ``hosted_on`` are both
    ``Vertical``, but "one cannot directly link a VNF to a physical_server as
    no such edge is permitted by the graph schema".
    """
    if edge_class.admits(source_class, target_class):
        return
    rules = ", ".join(
        f"({rule.source.name} -> {rule.target.name})" for rule in edge_class.endpoint_rules
    )
    raise ValidationError(
        f"edge class {edge_class.path} does not admit "
        f"{source_class.name} -> {target_class.name}; allowed: {rules or 'none'}"
    )


def check_atom_fields(cls: ElementClass, field_names: Mapping[str, Any] | list[str]) -> None:
    """Ensure every field referenced by an atom predicate exists on *cls*.

    Atoms are strongly typed (§3.3): ``VM(...)`` may reference both VMWare
    and OnMetal nodes, "but only the VM fields can be referenced".
    """
    names = field_names if isinstance(field_names, list) else list(field_names)
    for name in names:
        if not cls.has_field(name):
            raise ValidationError(
                f"atom over {cls.name} references unknown field {name!r}; "
                f"fields of {cls.path}: {sorted(cls.fields)}"
            )
