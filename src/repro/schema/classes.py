"""Node and edge class hierarchies (Section 3.2).

All nodes and edges in a Nepal schema belong to a specific class within a
single-rooted hierarchy: the base class defines the properties of every
database entry and has the two subclasses ``Node`` and ``Edge``.  A subclass
inherits every field of its parent and may add more — e.g. the generic
``ConnectedTo`` edge is extended by ``ConnectedTo:ServerSwitch`` with
``server_interface``/``switch_interface`` fields and by ``ConnectedTo:VmNetwork``
with an ``ip_address`` field.

Edge classes additionally carry *endpoint rules* — the (source node class,
target node class) pairs the graph schema permits, in the spirit of TOSCA
capability types.  A rule is satisfied by any subclass of its endpoint
classes, so ``hosted_on: (Container, PhysicalServer)`` admits a
``VM -> OnMetalServer`` edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import SchemaError
from repro.schema.datatypes import TypedField

#: Element fields and data-type fields share one representation.
Field = TypedField

_NAME_ALPHABET = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _check_name(name: str, what: str) -> str:
    if not name or not set(name) <= _NAME_ALPHABET or name[0].isdigit():
        raise SchemaError(f"invalid {what} name: {name!r}")
    return name


class ElementClass:
    """Common machinery of node and edge classes."""

    kind: str = "element"

    def __init__(
        self,
        name: str,
        parent: "ElementClass | None" = None,
        fields: Mapping[str, Field] | None = None,
        abstract: bool = False,
        description: str = "",
        expected_count: int | None = None,
    ):
        self.name = _check_name(name, "class")
        self.parent = parent
        self.abstract = abstract
        self.description = description
        #: Optional schema hint for anchor costing when no statistics exist.
        self.expected_count = expected_count
        self._own_fields: dict[str, Field] = dict(fields or {})
        self._children: list[ElementClass] = []
        if parent is not None:
            clash = set(self._own_fields) & set(parent.fields)
            if clash:
                raise SchemaError(
                    f"class {name!r} redefines inherited fields: {sorted(clash)}"
                )
            parent._children.append(self)

    # -- hierarchy -----------------------------------------------------

    @property
    def children(self) -> tuple["ElementClass", ...]:
        return tuple(self._children)

    @property
    def path(self) -> str:
        """The inheritance path label, e.g. ``Node:VM:VMWare``.

        This is exactly the label the paper's Gremlin implementation stores on
        every element so that subtree membership reduces to prefix matching.
        """
        parts = []
        current: ElementClass | None = self
        while current is not None:
            parts.append(current.name)
            current = current.parent
        return ":".join(reversed(parts))

    def ancestors(self) -> list["ElementClass"]:
        """Self first, then parents up to the root."""
        chain: list[ElementClass] = []
        current: ElementClass | None = self
        while current is not None:
            chain.append(current)
            current = current.parent
        return chain

    def subtree(self) -> list["ElementClass"]:
        """Self plus all transitive subclasses, preorder."""
        result: list[ElementClass] = [self]
        for child in self._children:
            result.extend(child.subtree())
        return result

    def concrete_subtree(self) -> list["ElementClass"]:
        """The instantiable classes of the subtree."""
        return [cls for cls in self.subtree() if not cls.abstract]

    def is_subclass_of(self, other: "ElementClass") -> bool:
        current: ElementClass | None = self
        while current is not None:
            if current is other:
                return True
            current = current.parent
        return False

    # -- fields ---------------------------------------------------------

    @property
    def fields(self) -> dict[str, Field]:
        """All fields including inherited ones (root fields first)."""
        merged: dict[str, Field] = dict(self.parent.fields) if self.parent else {}
        merged.update(self._own_fields)
        return merged

    @property
    def own_fields(self) -> dict[str, Field]:
        return dict(self._own_fields)

    def field(self, name: str) -> Field:
        try:
            return self.fields[name]
        except KeyError:
            raise SchemaError(f"class {self.path} has no field {name!r}") from None

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path}>"


class NodeClass(ElementClass):
    """A class of network entities (hosts, VMs, VNFs, services, ...)."""

    kind = "node"


@dataclass(frozen=True)
class EndpointRule:
    """One permitted (source, target) node-class pair for an edge class."""

    source: NodeClass
    target: NodeClass

    def admits(self, source_class: NodeClass, target_class: NodeClass) -> bool:
        return source_class.is_subclass_of(self.source) and target_class.is_subclass_of(
            self.target
        )


class EdgeClass(ElementClass):
    """A class of relationships (HostedOn, ConnectedTo, ComposedOf, ...).

    ``symmetric`` marks relationship classes that model undirected physical
    or virtual adjacency; loaders may materialize the reciprocal edge (the
    core engine always traverses source → target, as the paper's SQL does).
    """

    kind = "edge"

    def __init__(
        self,
        name: str,
        parent: "EdgeClass | None" = None,
        fields: Mapping[str, Field] | None = None,
        abstract: bool = False,
        description: str = "",
        endpoints: Iterable[EndpointRule] = (),
        symmetric: bool | None = None,
        expected_count: int | None = None,
    ):
        super().__init__(
            name,
            parent=parent,
            fields=fields,
            abstract=abstract,
            description=description,
            expected_count=expected_count,
        )
        self._own_endpoints: tuple[EndpointRule, ...] = tuple(endpoints)
        self._symmetric = symmetric

    @property
    def symmetric(self) -> bool:
        """Inherited unless overridden; the root edge class is directed."""
        if self._symmetric is not None:
            return self._symmetric
        if isinstance(self.parent, EdgeClass):
            return self.parent.symmetric
        return False

    @property
    def endpoint_rules(self) -> tuple[EndpointRule, ...]:
        """Own rules plus inherited ones (a subclass narrows, never widens)."""
        inherited: tuple[EndpointRule, ...] = ()
        if isinstance(self.parent, EdgeClass):
            inherited = self.parent.endpoint_rules
        return self._own_endpoints + inherited

    def admits(self, source_class: NodeClass, target_class: NodeClass) -> bool:
        """Does the graph schema allow this edge between these node classes?

        An edge class with no rules anywhere in its ancestry is unconstrained
        (useful for generic/legacy data, cf. the single-edge-class load of
        Section 6).
        """
        rules = self.endpoint_rules
        if not rules:
            return True
        return any(rule.admits(source_class, target_class) for rule in rules)


def make_roots() -> tuple[NodeClass, EdgeClass]:
    """Create the standard ``Node``/``Edge`` roots with base fields.

    Every Nepal entry has a unique ``id`` and a human ``name``; these live on
    the roots so every atom predicate may reference them.
    """
    from repro.schema.datatypes import STRING

    # ``id`` is virtual — it is the store-assigned uid, addressable in atom
    # predicates and field accesses but never supplied as a field value.
    base_fields = {
        "name": Field("name", STRING, description="human-readable label"),
    }
    node_root = NodeClass("Node", fields=base_fields, abstract=True,
                          description="root of all node classes")
    edge_root = EdgeClass("Edge", fields=dict(base_fields), abstract=True,
                          description="root of all edge classes")
    return node_root, edge_root


def least_common_ancestor(classes: Iterable[ElementClass]) -> ElementClass | None:
    """The most specific class every given class derives from.

    Used to type ``source(P)``/``target(P)`` expressions: the class of the
    endpoint is the least common ancestor of every class the MATCHES analysis
    says could appear there (§3.4).
    """
    iterator = iter(classes)
    try:
        first = next(iterator)
    except StopIteration:
        return None
    common: list[ElementClass] = list(reversed(first.ancestors()))
    for cls in iterator:
        chain = list(reversed(cls.ancestors()))
        keep = 0
        for a, b in zip(common, chain):
            if a is b:
                keep += 1
            else:
                break
        common = common[:keep]
        if not common:
            return None
    return common[-1] if common else None


def field_value_key(value: Any) -> Any:
    """Hashable key for index lookups over possibly-unhashable field values."""
    if isinstance(value, dict):
        return tuple(sorted((k, field_value_key(v)) for k, v in value.items()))
    if isinstance(value, (list, set, tuple)):
        return tuple(field_value_key(v) for v in value)
    return value
