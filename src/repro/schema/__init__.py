"""Strongly-typed schema system (Section 3.2 of the paper).

Nepal departs from property-graph schemalessness: every node and edge belongs
to a class in a single-rooted hierarchy, classes carry typed fields (possibly
structured, with list/set/map containers), and the graph schema constrains
which edge classes may connect which node classes.  The schema system is what
enables query-time generalization (``VM()`` matching every VM subclass),
early rejection of garbage data, and the per-class physical partitioning the
evaluation section credits for large speedups.
"""

from repro.schema.classes import EdgeClass, ElementClass, EndpointRule, Field, NodeClass
from repro.schema.datatypes import (
    CompositeType,
    ContainerKind,
    ContainerType,
    DataType,
    PrimitiveType,
    TypeRegistry,
)
from repro.schema.registry import Schema
from repro.schema.builtin import build_network_schema
from repro.schema.tosca import schema_from_tosca, schema_from_tosca_file

__all__ = [
    "CompositeType",
    "ContainerKind",
    "ContainerType",
    "DataType",
    "EdgeClass",
    "ElementClass",
    "EndpointRule",
    "Field",
    "NodeClass",
    "PrimitiveType",
    "Schema",
    "TypeRegistry",
    "build_network_schema",
    "schema_from_tosca",
    "schema_from_tosca_file",
]
