"""The :class:`Schema` — registry of classes and data types for one database.

A schema owns one ``Node`` root and one ``Edge`` root, a
:class:`~repro.schema.datatypes.TypeRegistry` for structured field types,
and provides the lookups the rest of the system builds on: name resolution
with class generalization, subtree enumeration (for query-time
generalization), least-common-ancestor typing, and the allowed-edge matrix
used for model-driven traversal pruning.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SchemaError
from repro.schema.classes import (
    EdgeClass,
    ElementClass,
    EndpointRule,
    Field,
    NodeClass,
    least_common_ancestor,
    make_roots,
)
from repro.schema.datatypes import DataType, TypeRegistry, TypedField


class Schema:
    """A complete Nepal schema: class hierarchies plus data types.

    >>> schema = Schema("example")
    >>> vm = schema.define_node("VM", parent="Node", fields={"status": "string"})
    >>> schema.define_node("VMWare", parent="VM")
    <NodeClass Node:VM:VMWare>
    >>> [cls.name for cls in schema.resolve("VM").subtree()]
    ['VM', 'VMWare']
    """

    def __init__(self, name: str = "schema"):
        self.name = name
        self.types = TypeRegistry()
        self.node_root, self.edge_root = make_roots()
        self.version = 0
        """Monotonic counter bumped on every class definition (or
        :meth:`touch`).  Compiled plans embed schema knowledge — anchor
        candidates, allowed-edge pruning, subtree expansions — so the plan
        cache keys on (schema identity, version) and drops entries when
        the schema evolves."""
        self._classes: dict[str, ElementClass] = {
            self.node_root.name: self.node_root,
            self.edge_root.name: self.edge_root,
        }
        self._concrete_names_cache: dict[str, tuple[str, ...]] = {}
        self._concrete_names_version = -1

    # -- definition ------------------------------------------------------

    def touch(self) -> None:
        """Mark the schema as changed (retires cached compiled plans)."""
        self.version += 1

    def _register(self, cls: ElementClass) -> ElementClass:
        if cls.name in self._classes:
            raise SchemaError(f"class name {cls.name!r} already defined in schema {self.name!r}")
        self._classes[cls.name] = cls
        self.touch()
        return cls

    def _build_fields(self, fields: Mapping[str, object] | None) -> dict[str, Field]:
        built: dict[str, Field] = {}
        for field_name, spec in (fields or {}).items():
            if isinstance(spec, TypedField):
                built[field_name] = spec
            elif isinstance(spec, DataType):
                built[field_name] = Field(field_name, spec)
            elif isinstance(spec, str):
                built[field_name] = Field(field_name, self.types.resolve(spec))
            else:
                raise SchemaError(
                    f"field {field_name!r}: expected a type name, DataType or Field, "
                    f"got {type(spec).__name__}"
                )
        return built

    def define_node(
        self,
        name: str,
        parent: str = "Node",
        fields: Mapping[str, object] | None = None,
        abstract: bool = False,
        description: str = "",
        expected_count: int | None = None,
    ) -> NodeClass:
        """Define a node class deriving from *parent* (default: the root)."""
        parent_class = self.node_class(parent)
        node = NodeClass(
            name,
            parent=parent_class,
            fields=self._build_fields(fields),
            abstract=abstract,
            description=description,
            expected_count=expected_count,
        )
        self._register(node)
        return node

    def define_edge(
        self,
        name: str,
        parent: str = "Edge",
        fields: Mapping[str, object] | None = None,
        abstract: bool = False,
        description: str = "",
        endpoints: Iterable[tuple[str, str]] = (),
        symmetric: bool | None = None,
        expected_count: int | None = None,
    ) -> EdgeClass:
        """Define an edge class; *endpoints* are (source, target) class names."""
        parent_class = self.edge_class(parent)
        rules = tuple(
            EndpointRule(self.node_class(src), self.node_class(dst)) for src, dst in endpoints
        )
        edge = EdgeClass(
            name,
            parent=parent_class,
            fields=self._build_fields(fields),
            abstract=abstract,
            description=description,
            endpoints=rules,
            symmetric=symmetric,
            expected_count=expected_count,
        )
        self._register(edge)
        return edge

    # -- lookup ------------------------------------------------------------

    def resolve(self, name: str) -> ElementClass:
        """Resolve a class by simple name or by inheritance path.

        ``VM``, ``VM:VMWare`` and ``Node:VM:VMWare`` all resolve (the paper:
        "if the name of the subclass is unique, the inheritance chain can be
        discarded").
        """
        if name in self._classes:
            return self._classes[name]
        if ":" in name:
            leaf = name.rsplit(":", 1)[1]
            cls = self._classes.get(leaf)
            if cls is not None and cls.path.endswith(name):
                return cls
        raise SchemaError(f"unknown class {name!r} in schema {self.name!r}")

    def node_class(self, name: str) -> NodeClass:
        cls = self.resolve(name)
        if not isinstance(cls, NodeClass):
            raise SchemaError(f"{name!r} is an edge class, expected a node class")
        return cls

    def edge_class(self, name: str) -> EdgeClass:
        cls = self.resolve(name)
        if not isinstance(cls, EdgeClass):
            raise SchemaError(f"{name!r} is a node class, expected an edge class")
        return cls

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except SchemaError:
            return False
        return True

    def classes(self) -> list[ElementClass]:
        """Every class, roots included."""
        return list(self._classes.values())

    def node_classes(self) -> list[NodeClass]:
        return [cls for cls in self._classes.values() if isinstance(cls, NodeClass)]

    def edge_classes(self) -> list[EdgeClass]:
        return [cls for cls in self._classes.values() if isinstance(cls, EdgeClass)]

    def least_common_ancestor(self, names: Iterable[str]) -> ElementClass | None:
        return least_common_ancestor(self.resolve(name) for name in names)

    def concrete_names(self, cls: ElementClass) -> tuple[str, ...]:
        """The concrete subtree of *cls* as a name tuple, memoized.

        ``scan_atom`` and adjacency expansion need this on every call;
        classes are immutable after registration, so the expansion can only
        change when a *new* class is defined — which bumps :attr:`version`
        and flushes the memo wholesale.
        """
        if self._concrete_names_version != self.version:
            self._concrete_names_cache.clear()
            self._concrete_names_version = self.version
        names = self._concrete_names_cache.get(cls.name)
        if names is None:
            names = tuple(concrete.name for concrete in cls.concrete_subtree())
            self._concrete_names_cache[cls.name] = names
        return names

    # -- graph-schema reasoning ---------------------------------------------

    def edge_classes_between(
        self, source: NodeClass, target: NodeClass
    ) -> list[EdgeClass]:
        """Concrete edge classes the schema permits from *source* to *target*."""
        return [
            edge
            for edge in self.edge_root.concrete_subtree()
            if isinstance(edge, EdgeClass) and edge.admits(source, target)
        ]

    def outgoing_edge_classes(self, source: NodeClass) -> list[EdgeClass]:
        """Concrete edge classes that may leave a *source* node.

        Drives model-driven pruning during traversal: when extending a
        pathway from a node, only these edge classes need be considered.
        """
        permitted = []
        for edge in self.edge_root.concrete_subtree():
            if not isinstance(edge, EdgeClass):
                continue
            rules = edge.endpoint_rules
            if not rules:
                permitted.append(edge)
                continue
            if any(
                source.is_subclass_of(rule.source) or rule.source.is_subclass_of(source)
                for rule in rules
            ):
                permitted.append(edge)
        return permitted

    def validate(self) -> None:
        """Whole-schema sanity checks, raising :class:`SchemaError` on failure.

        Checks: every class reachable from a root, endpoint rules reference
        node classes of this schema, and at least one concrete class exists
        per hierarchy (an all-abstract schema cannot store anything).
        """
        for cls in self._classes.values():
            root = cls.ancestors()[-1]
            if root not in (self.node_root, self.edge_root):
                raise SchemaError(f"class {cls.path} is not attached to a schema root")
        for edge in self.edge_classes():
            for rule in edge.endpoint_rules:
                for endpoint in (rule.source, rule.target):
                    if self._classes.get(endpoint.name) is not endpoint:
                        raise SchemaError(
                            f"edge class {edge.name} endpoint {endpoint.name} "
                            f"is not part of schema {self.name!r}"
                        )
        if not self.node_root.concrete_subtree():
            raise SchemaError(f"schema {self.name!r} defines no concrete node class")

    def describe(self) -> str:
        """A human-readable rendering of the class hierarchies."""
        lines: list[str] = [f"schema {self.name}"]

        def walk(cls: ElementClass, depth: int) -> None:
            fields = ", ".join(
                f"{f.name}:{f.type.name}" for f in cls.own_fields.values()
            )
            marker = " (abstract)" if cls.abstract else ""
            suffix = f" [{fields}]" if fields else ""
            lines.append("  " * depth + f"- {cls.name}{marker}{suffix}")
            for child in cls.children:
                walk(child, depth + 1)

        walk(self.node_root, 1)
        walk(self.edge_root, 1)
        return "\n".join(lines)
