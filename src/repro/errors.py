"""Exception hierarchy for the Nepal reproduction.

Every error raised by the library derives from :class:`NepalError` so callers
can catch library failures with a single except clause.  The hierarchy mirrors
the subsystems: schema definition and validation, query parsing and
compilation, planning, storage, and temporal processing.
"""

from __future__ import annotations


class NepalError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(NepalError):
    """Invalid schema definition (bad inheritance, duplicate class, ...)."""


class DataTypeError(SchemaError):
    """Invalid data-type definition or cyclic type composition."""


class ValidationError(NepalError):
    """A record violates the schema (unknown field, wrong type, bad edge)."""


class UniquenessError(ValidationError):
    """An element id is reused across the database."""


class ParseError(NepalError):
    """Syntactic error in an RPE or NPQL query text."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}, near {snippet!r})"
        super().__init__(message)


class TypeCheckError(NepalError):
    """Semantic error in a query (unknown class, unknown field, bad join)."""


class PlanningError(NepalError):
    """The planner cannot produce a plan (unanchored or unbounded RPE)."""


class UnanchoredQueryError(PlanningError):
    """The RPE has no usable anchor atom (e.g. only ``{0,m}`` repetitions)."""


class UnboundedQueryError(PlanningError):
    """The RPE admits pathways of unbounded length."""


class StorageError(NepalError):
    """Backend-level failure."""


class UnknownElementError(StorageError):
    """An element id was referenced that the store does not contain."""


class TemporalError(NepalError):
    """Invalid temporal specification (bad interval, time travel misuse)."""


class FederationError(NepalError):
    """Misconfigured multi-backend catalog or cross-backend operation."""
