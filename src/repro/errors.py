"""Exception hierarchy for the Nepal reproduction.

Every error raised by the library derives from :class:`NepalError` so callers
can catch library failures with a single except clause.  The hierarchy mirrors
the subsystems: schema definition and validation, query parsing and
compilation, planning, storage, and temporal processing.
"""

from __future__ import annotations


class NepalError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(NepalError):
    """Invalid schema definition (bad inheritance, duplicate class, ...)."""


class DataTypeError(SchemaError):
    """Invalid data-type definition or cyclic type composition."""


class ValidationError(NepalError):
    """A record violates the schema (unknown field, wrong type, bad edge)."""


class UniquenessError(ValidationError):
    """An element id is reused across the database."""


class ParseError(NepalError):
    """Syntactic error in an RPE or NPQL query text."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}, near {snippet!r})"
        super().__init__(message)


class TypeCheckError(NepalError):
    """Semantic error in a query (unknown class, unknown field, bad join)."""


class PlanningError(NepalError):
    """The planner cannot produce a plan (unanchored or unbounded RPE)."""


class UnanchoredQueryError(PlanningError):
    """The RPE has no usable anchor atom (e.g. only ``{0,m}`` repetitions)."""


class UnboundedQueryError(PlanningError):
    """The RPE admits pathways of unbounded length."""


class StorageError(NepalError):
    """Backend-level failure."""


class UnknownElementError(StorageError):
    """An element id was referenced that the store does not contain."""


class BackendUnavailable(StorageError):
    """A backend call failed for operational (usually transient) reasons.

    Raised by fault injection (:mod:`repro.storage.chaos`) and by the
    resilience layer when a backend stays down past its retry budget.
    ``store`` names the backend when known.
    """

    def __init__(self, message: str, store: str | None = None):
        self.store = store
        super().__init__(message)


class DeadlineExceededError(BackendUnavailable):
    """Retrying would overrun the per-call deadline; the call is abandoned."""


class CircuitOpenError(BackendUnavailable):
    """The backend's circuit breaker is open; calls fail fast without I/O."""


class QueryDeadlineExceeded(NepalError):
    """A served request overran its per-request deadline and was cancelled.

    Deliberately *not* a :class:`StorageError`: the backend is healthy, the
    request simply took too long.  Keeping it outside the
    :class:`BackendUnavailable` family means the resilience layer does not
    retry it and the executor does not degrade it into partial results —
    the server maps it straight to HTTP 504.
    """


class TemporalError(NepalError):
    """Invalid temporal specification (bad interval, time travel misuse)."""


class ReplicationError(NepalError):
    """Replication-protocol failure (see :mod:`repro.replication`)."""


class NotPrimaryError(ReplicationError):
    """A write reached a replica; ``primary`` names where to retry it.

    The HTTP layer maps this to ``307 Temporary Redirect`` with a
    ``Location`` header so any client can follow it; the cluster-aware
    client uses it to re-discover the primary.
    """

    def __init__(self, message: str, primary: str | None = None):
        self.primary = primary
        super().__init__(message)


class FencedError(ReplicationError):
    """A write reached a node fenced by a higher replication epoch.

    Raised by a revived stale primary: some replica was promoted while it
    was down (stamping a higher epoch into the WAL), so accepting the
    write would diverge the histories.  ``epoch`` is the higher epoch that
    fenced the node.  The HTTP layer maps this to ``409 Conflict``.
    """

    def __init__(self, message: str, epoch: int | None = None):
        self.epoch = epoch
        super().__init__(message)


class FederationError(NepalError):
    """Misconfigured multi-backend catalog or cross-backend operation.

    When raised because a member backend stayed unavailable through the
    resilience budget, ``variable`` names the range variable that lost its
    backend and ``store`` the catalog name of that backend.
    """

    def __init__(
        self, message: str, variable: str | None = None, store: str | None = None
    ):
        self.variable = variable
        self.store = store
        super().__init__(message)
