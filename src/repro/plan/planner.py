"""The RPE planner (Section 5.1).

Pipeline: parse (if text) → bind to schema → normalize → reject unanchored
or unbounded expressions → enumerate and cost anchors → split the RPE around
the chosen anchor → compile forward/backward automata.

Two hooks exist for the ablation benchmarks: ``forced_anchor`` overrides
anchor selection (bench A1 measures how much a bad anchor costs) and
``max_pathway_elements`` applies the alternative length limit of §3.3 (a
constraint on the maximum pathway length instead of finite repetition
bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError, UnanchoredQueryError, UnboundedQueryError
from repro.plan.cache import LruCache
from repro.plan.program import CompiledSplit, MatchProgram
from repro.rpe.anchors import AnchorPlan, enumerate_anchor_plans
from repro.rpe.ast import RpeNode
from repro.rpe.match import compile_matcher
from repro.rpe.nfa import PathwayNfa, build_nfa, reverse_rpe
from repro.rpe.normalize import admits_empty, length_bounds, normalize
from repro.rpe.parser import parse_rpe
from repro.schema.registry import Schema
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope

#: Anchors costlier than this are considered "not small" (§3.3); queries whose
#: best anchor exceeds it are still executed, but explain() flags them.
DEFAULT_ANCHOR_BUDGET = 10_000.0


@dataclass(frozen=True)
class PlannerOptions:
    """Knobs for planning; defaults reproduce the paper's behaviour."""

    max_pathway_elements: int | None = None
    forced_anchor: str | None = None
    """Class name whose atom must be used as the anchor (ablation A1)."""

    anchor_budget: float = DEFAULT_ANCHOR_BUDGET
    import_threshold: float = 200.0
    """Anchor cardinality above which the executor prefers importing the
    anchor from an equality join with an already-evaluated variable (§3.3:
    "In join queries, an anchor can be imported from a joined path")."""

    batch_enabled: bool = True
    """Ablation switch for the vectorized execution layer.  ``NepalDB``
    propagates it onto every attached store that has a batch engine; with
    it off, operators run their row-at-a-time twins.  Stores expose the
    same flag for per-test toggling (mirroring ``temporal_index_enabled``)."""


class Planner:
    """Compiles RPEs into :class:`MatchProgram` objects."""

    def __init__(
        self,
        schema: Schema,
        estimator: CardinalityEstimator | None = None,
        options: PlannerOptions | None = None,
        nfa_memo: "LruCache | None" = None,
    ):
        self.schema = schema
        self.estimator = estimator or CardinalityEstimator()
        self.options = options or PlannerOptions()
        self._nfa_memo = nfa_memo

    def compile(
        self,
        rpe: RpeNode | str,
        bound: bool = False,
        scope: "TimeScope | None" = None,
    ) -> MatchProgram:
        """Plan the RPE; raises on unanchored/unbounded expressions.

        *scope* is the time scope the program will run under; historical
        scopes cost anchors with what existed *then* (when the backend
        keeps temporal statistics), which can flip the anchor choice.
        """
        if isinstance(rpe, str):
            rpe = parse_rpe(rpe)
        if not bound:
            rpe = rpe.bind(self.schema)
        rpe = normalize(rpe)

        low, high = length_bounds(rpe)
        limit = self.options.max_pathway_elements
        if limit is not None and low > limit:
            raise UnboundedQueryError(
                f"RPE requires at least {low} elements, above the limit of {limit}"
            )
        max_elements = min(high + 2, limit) if limit is not None else high + 2

        if admits_empty(rpe):
            raise UnanchoredQueryError(
                f"the empty pathway satisfies {rpe.render()}; such RPEs have no "
                "anchor and are likely malformed (§3.3)"
            )

        plan = self._select_anchor(rpe, scope)
        splits = []
        for split in plan.splits:
            anchor_kind = "node" if split.anchor.is_node_atom else "edge"
            forward_nfa = self._affix_nfa(split.suffix, "forward", anchor_kind)
            backward_nfa = self._affix_nfa(
                reverse_rpe(split.prefix) if split.prefix is not None else None,
                "backward",
                anchor_kind,
            )
            splits.append(
                CompiledSplit(
                    split=split, forward_nfa=forward_nfa, backward_nfa=backward_nfa
                )
            )
        splits = tuple(splits)
        return MatchProgram(
            rpe=rpe,
            anchor_plan=plan,
            splits=splits,
            matcher=compile_matcher(rpe),
            reversed_matcher=compile_matcher(reverse_rpe(rpe)),
            max_elements=max_elements,
            anchor_cost=plan.cost,
        )

    def _affix_nfa(
        self, affix: RpeNode | None, direction: str, anchor_kind: str
    ) -> "PathwayNfa":
        """Build (or reuse) the kind-refined automaton for one split affix.

        Automata depend only on the affix expression and the schema its
        atoms are bound to — not on statistics — so the memo keys on the
        schema object, its version and the rendered affix.  It survives
        stats-epoch drift, which is where replanning under churn recovers
        most of its cost.
        """

        def build() -> "PathwayNfa":
            return build_nfa(
                affix,
                leading="glue" if affix is not None else "none",
                trailing="pad",
            ).kind_refined(start_kind=anchor_kind, start_consumer="atom")

        if self._nfa_memo is None:
            return build()
        key = (
            self.schema,
            self.schema.version,
            direction,
            anchor_kind,
            affix.render() if affix is not None else None,
        )
        return self._nfa_memo.get_or_create(key, build)

    def _select_anchor(
        self, rpe: RpeNode, scope: "TimeScope | None" = None
    ) -> AnchorPlan:
        candidates = enumerate_anchor_plans(
            rpe, lambda atom: self.estimator.estimate(atom, scope)
        )
        if not candidates:
            raise UnanchoredQueryError(
                f"no anchor found for {rpe.render()}: every atom sits inside an "
                "optional repetition block"
            )
        forced = self.options.forced_anchor
        if forced is not None:
            forced_cls = self.schema.resolve(forced)
            matching = [
                plan
                for plan in candidates
                if all(split.anchor.cls is forced_cls for split in plan.splits)
            ]
            if not matching:
                raise PlanningError(
                    f"forced anchor {forced!r} does not occur in {rpe.render()}"
                )
            return min(matching, key=lambda plan: plan.cost)
        return min(candidates, key=lambda plan: plan.cost)
