"""Query execution across range variables, stores and time (Sections 3–5).

The executor is the Python program the paper's code generator emits: it
"issues queries to one or more target databases ... primarily performing
query sequence management", performs processing not available in the target
databases, and ships partial results between backends for federated joins.

Execution outline:

1. typecheck, resolve each range variable to its store and time scope;
2. compile a match program per variable and order variables by anchor cost;
3. evaluate each variable — importing the anchor from an equality join when
   the variable's own anchor is too expensive (the ``Phys`` variable of the
   paper's physical-communication-path example);
4. nested-loop join with early predicate application, temporal semantics per
   §4 (joint validity under a query-level AT range, independent validities
   under per-variable timestamps);
5. apply [NOT] EXISTS subqueries per joined binding;
6. project (Retrieve pathways / Select expressions) and apply temporal
   aggregates (FIRST/LAST TIME WHEN EXISTS, WHEN EXISTS).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import (
    BackendUnavailable,
    FederationError,
    TemporalError,
    TypeCheckError,
)
from repro.model.elements import NodeRecord
from repro.model.pathway import Pathway
from repro.plan.cache import LruCache, PlanCache
from repro.plan.planner import Planner, PlannerOptions
from repro.plan.program import MatchProgram
from repro.plan.traverse import evaluate_from_endpoints
from repro.query.ast import (
    FIRST_TIME,
    LAST_TIME,
    RETRIEVE,
    WHEN_EXISTS,
    AggregateCall,
    ComparePredicate,
    ExistsPredicate,
    FunctionCall,
    Query,
    RangeVariable,
    TemporalSpec,
    VariableRef,
)
from repro.query.functions import compare_values, evaluate_expression
from repro.query.parser import parse_query
from repro.query.results import QueryResult, ResultRow
from repro.query.typecheck import CheckedQuery, typecheck_query
from repro.stats.cardinality import CardinalityEstimator
from repro.stats.metrics import MetricsRegistry
from repro.stats.tracing import TraceContext, current_trace, maybe_span
from repro.storage.base import GraphStore, TimeScope
from repro.temporal.interval import FOREVER, Interval, IntervalSet
from repro.temporal.validity import pathway_validity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.concurrency import SnapshotView
    from repro.core.resilience import ResiliencePolicy
    from repro.plan.explain import ExplainAnalysis

DEFAULT_STORE = "default"

#: Sentinel for join keys whose hashing would not agree with the `=`
#: semantics of :func:`compare_values`; forces the nested-loop fallback.
_UNHASHABLE = object()


def _join_key(value: object) -> object:
    """A hash-table key matching ``compare_values(a, "=", b)`` equality.

    Nodes equate by uid (also against bare uid literals, which
    ``compare_values`` normalizes the same way); the built-in scalars hash
    consistently with ``==`` across their numeric kinds.  Anything else —
    edges, collections, foreign objects — answers :data:`_UNHASHABLE`.
    """
    if isinstance(value, NodeRecord):
        return value.uid
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return _UNHASHABLE


@dataclass
class _EvaluatedVariable:
    variable: RangeVariable
    store: GraphStore
    scope: TimeScope
    program: MatchProgram | None
    extra_matcher: "object | None" = None
    pathways: list[Pathway] | None = None
    validities: list[IntervalSet] | None = None
    failed: bool = False
    failure: str = ""
    #: The store evaluation reads flow through: the catalog store under
    #: the resilience guard, additionally pinned to a snapshot when the
    #: query executes under one.  Planning always uses the live ``store``.
    eval_store: GraphStore | None = None

    @property
    def name(self) -> str:
        """The range-variable name."""
        return self.variable.name


class QueryExecutor:
    """Executes NPQL queries over a catalog of named stores."""

    def __init__(
        self,
        stores: Mapping[str, GraphStore],
        default_store: str = DEFAULT_STORE,
        planner_options: PlannerOptions | None = None,
        plan_cache: PlanCache | None = None,
        metrics: MetricsRegistry | None = None,
        resilience: "ResiliencePolicy | None" = None,
        allow_partial: bool = False,
    ):
        if default_store not in stores:
            raise FederationError(
                f"default store {default_store!r} is not in the catalog "
                f"({sorted(stores)})"
            )
        self._stores = dict(stores)
        self._default = default_store
        self._planner_options = planner_options or PlannerOptions()
        self._estimators: dict[int, CardinalityEstimator] = {}
        self._views: dict[str, str] = {}
        self._views_version = 0
        self._resilience = resilience
        self._allow_partial = allow_partial
        self._guarded: dict[int, GraphStore] = {}
        # Concurrent queries share the executor; the wrapper/estimator
        # memos below are get-or-create dicts and need exclusion.
        self._memo_lock = threading.Lock()
        if metrics is None:
            metrics = plan_cache.metrics if plan_cache is not None else MetricsRegistry()
        self.metrics = metrics
        # Careful: an empty PlanCache is falsy (it has __len__), so test
        # against None rather than truthiness.
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache(metrics=metrics)
        self._parse_cache = LruCache(256, self.metrics.counters("parse"))
        self._typecheck_cache = LruCache(256, self.metrics.counters("typecheck"))

    # ------------------------------------------------------------------

    def store_for(self, variable: RangeVariable) -> GraphStore:
        """Resolve a range variable's target store from the catalog."""
        name = variable.store or self._default
        try:
            return self._stores[name]
        except KeyError:
            raise FederationError(
                f"range variable {variable.name!r} targets unknown store {name!r}"
            ) from None

    def guarded(self, store: GraphStore) -> GraphStore:
        """*store* wrapped with the configured resilience policy (memoized).

        Without a policy the raw store is returned.  Wrapping is one layer
        per store, so the circuit breaker state inside the wrapper persists
        across queries — a backend that tripped its breaker stays tripped
        until the reset window elapses, whichever query touches it next.
        """
        if self._resilience is None:
            return store
        with self._memo_lock:
            wrapper = self._guarded.get(id(store))
            if wrapper is None:
                from repro.core.resilience import ResilientStore

                wrapper = ResilientStore(
                    store,
                    self._resilience,
                    metrics=self.metrics,
                    label=self._store_label(store),
                )
                self._guarded[id(store)] = wrapper
            return wrapper

    def evaluation_store(
        self, store: GraphStore, snapshot: "SnapshotView | None" = None
    ) -> GraphStore:
        """The store evaluation reads should flow through.

        Without a snapshot this is exactly :meth:`guarded`.  Under a
        snapshot, the pin wraps *around* the memoized resilience guard:
        the pinned wrapper evaluates pathways by generic traversal, so
        every individual read it issues must pass through the guard to be
        retried on transient faults (guarding outside the pin would make
        the whole traversal one retry unit and multiply the effective
        fault rate by its read count).  Reusing the memoized guard keeps
        circuit-breaker state per-backend, not per-snapshot.
        """
        guarded = self.guarded(store)
        if snapshot is None:
            return guarded
        pin = snapshot.pin_for(store)
        if pin is None:
            # Store doesn't support snapshots (e.g. relational): read live.
            return guarded
        from repro.core.concurrency import SnapshotStore

        return SnapshotStore(
            guarded,
            pin.as_of,
            pin.data_version,
            deadline_at=snapshot.arm_deadline(),
            monotonic=snapshot.monotonic,
        )

    def _store_label(self, store: GraphStore) -> str:
        """The catalog name of *store* (for metrics), or its display name."""
        for name, candidate in sorted(self._stores.items()):
            if candidate is store:
                return name
        return store.name

    def estimator_for(self, store: GraphStore) -> CardinalityEstimator:
        """The (memoized) cardinality estimator for *store*.

        Keyed on store identity, not display name: two attached stores may
        legitimately share a name, and their statistics must not mix.
        Estimators sample counts through the resilience guard, so planning
        against a flaky backend retries rather than erroring out.
        """
        guarded = self.guarded(store)
        with self._memo_lock:
            estimator = self._estimators.get(id(store))
            if estimator is None:
                estimator = CardinalityEstimator(guarded)
                self._estimators[id(store)] = estimator
            return estimator

    def define_view(self, name: str, rpe_text: str) -> None:
        """Register a named pathway view (§3.4's non-PATHS sources).

        The RPE text is validated lazily, against the schema of whichever
        store a query's variable targets.  (Re)defining a view changes what
        typechecking produces, so cached checked queries are retired.
        """
        self._views[name.upper()] = rpe_text
        self._views_version += 1

    def view_rpe(self, name: str) -> str | None:
        """The defining RPE text of a view, or None when undefined."""
        return self._views.get(name.upper())

    def invalidate_statistics(self) -> None:
        """Drop cached cardinalities (call after bulk loads).

        Bumping every estimator's epoch retires this executor's cached
        plans lazily: their keys embed the old epoch, so the next lookup
        misses and replans.  Estimators also self-refresh against their
        store's ``data_version``, which covers writes that bypass this
        executor entirely.
        """
        for estimator in self._estimators.values():
            estimator.invalidate()

    # ------------------------------------------------------------------
    # parse & typecheck memoization
    # ------------------------------------------------------------------

    def _parse(self, text: str) -> Query:
        """Parse query text, memoized (the AST is immutable and shareable)."""
        trace = current_trace()
        cached = self._parse_cache.get(text)
        if cached is None:
            with maybe_span(trace, "parse", kind="stage") as span:
                with self.metrics.timings.measure("parse"):
                    cached = parse_query(text)
                span.set("source", "fresh")
            self._parse_cache.put(text, cached)
        else:
            with maybe_span(trace, "parse", kind="stage") as span:
                span.set("source", "memo")
        return cached

    def _catalog_state(self) -> tuple:
        """What typechecking depends on besides the query text itself:
        each store's schema (by identity and version) and the view set."""
        return (
            tuple(
                (name, id(store.schema), store.schema.version)
                for name, store in sorted(self._stores.items())
            ),
            self._views_version,
        )

    def _checked(self, query: Query | str) -> CheckedQuery:
        """Typecheck *query*, memoized on (normalized text, catalog state)."""
        if isinstance(query, str):
            query = self._parse(query)
        trace = current_trace()
        key = (query.render(), self._catalog_state())
        cached = self._typecheck_cache.get(key)
        if cached is None:
            with maybe_span(trace, "typecheck", kind="stage") as span:
                with self.metrics.timings.measure("typecheck"):
                    cached = typecheck_query(
                        query,
                        lambda var: self.store_for(var).schema,
                        view_rpe=self.view_rpe,
                    )
                span.set("source", "fresh")
            self._typecheck_cache.put(key, cached)
        else:
            with maybe_span(trace, "typecheck", kind="stage") as span:
                span.set("source", "memo")
        return cached

    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query | str,
        snapshot: "SnapshotView | None" = None,
        trace: TraceContext | None = None,
    ) -> QueryResult:
        """Parse (if text), typecheck, plan, evaluate and project *query*.

        Every stage ahead of evaluation is served from caches when the
        same query template was seen before: parse and typecheck memoize
        on the query text, compiled per-variable programs come from the
        plan cache (``metrics.timings`` separates ``plan`` time from the
        enclosing ``execute`` total).

        With *snapshot*, evaluation reads are pinned to the view's
        (as-of, data-version) pair while planning still runs against the
        live catalog stores — plan-cache keys embed live store identity,
        so snapshot queries share cached plans with live queries.

        With *trace* (a fresh, unused :class:`TraceContext`), every stage
        records a span: the returned result is byte-identical to an
        untraced run, but the context afterwards carries the full span
        tree (see :mod:`repro.stats.tracing`).
        """
        if trace is None:
            return self._execute(query, snapshot)
        with trace.activate():
            with trace.span("query", kind="query") as root:
                result = self._execute(query, snapshot)
                root.set(
                    "query", query if isinstance(query, str) else query.render()
                )
                root.set("rows_out", len(result.rows))
                if result.warnings:
                    root.set("warnings", len(result.warnings))
        return result

    def _execute(
        self, query: Query | str, snapshot: "SnapshotView | None" = None
    ) -> QueryResult:
        checked = self._checked(query)
        trace = current_trace()
        with self.metrics.timings.measure("execute"):
            cache: dict = {}
            bindings = self._solve(
                checked, outer_bindings={}, cache=cache, snapshot=snapshot
            )
            dropped = [
                item
                for prepared in cache.values()
                for item in prepared
                if item.failed
            ]
            with maybe_span(trace, "project", kind="operator") as span:
                result = self._project(
                    checked, bindings, failed_names={item.name for item in dropped}
                )
                span.count("rows_in", len(bindings))
                span.count("rows_out", len(result.rows))
            if dropped:
                result.warnings = result.warnings + tuple(
                    f"variable {item.name!r} dropped: {item.failure}"
                    for item in dropped
                )
            return result

    def translate(self, query: Query | str) -> str:
        """Generate the Python program for *query* (§3.1's code generation).

        The returned source defines ``run(stores)``; executing it against
        the same stores reproduces :meth:`execute`'s rows for the covered
        query subset (see :mod:`repro.plan.codegen`).
        """
        from repro.plan.codegen import translate_query

        if isinstance(query, str):
            query = self._parse(query)
        checked = self._checked(query)
        store_names = {
            variable.name: variable.store or self._default
            for variable in query.variables
        }
        return translate_query(checked, store_names)

    def _plan_sections(self, query: Query) -> "list[tuple[RangeVariable, _EvaluatedVariable]]":
        """(variable, planned-but-not-evaluated) pairs for *query*."""
        checked = self._checked(query)
        return [
            (variable, self._prepare_variable(checked, variable))
            for variable in query.variables
        ]

    def explain(self, query: Query | str) -> str:
        """Render the per-variable plans without executing."""
        from repro.plan.explain import explain_program

        if isinstance(query, str):
            query = self._parse(query)
        sections = []
        for variable, evaluated in self._plan_sections(query):
            sections.append(
                f"variable {variable.name} on store "
                f"{evaluated.store.name} ({evaluated.scope}):\n"
                + explain_program(evaluated.program)
            )
        return "\n\n".join(sections)

    def explain_analyze(
        self,
        query: Query | str,
        snapshot: "SnapshotView | None" = None,
        trace: TraceContext | None = None,
    ) -> "ExplainAnalysis":
        """Execute *query* under tracing and pair plans with actuals.

        The result carries the estimated-vs-actual cardinality comparison
        the paper's operators only promise implicitly: each variable's
        compiled plan (with the planner's estimate) next to the rows its
        evaluation really produced, plus join strategies, cache outcomes
        and per-stage timings from the trace.
        """
        from repro.plan.explain import ExplainAnalysis

        if isinstance(query, str):
            query = self._parse(query)
        if trace is None:
            trace = TraceContext(label=query.render())
        result = self.execute(query, snapshot=snapshot, trace=trace)
        sections = [
            (
                variable.name,
                evaluated.store.name,
                str(evaluated.scope),
                evaluated.program,
            )
            for variable, evaluated in self._plan_sections(query)
        ]
        return ExplainAnalysis(
            query_text=query.render(),
            sections=sections,
            trace=trace,
            result=result,
        )

    # ------------------------------------------------------------------
    # variable evaluation
    # ------------------------------------------------------------------

    def _scope_for(self, query: Query, variable: RangeVariable) -> TimeScope:
        spec = variable.at or query.at
        return _scope_from_spec(spec)

    def _prepare_variable(
        self,
        checked: CheckedQuery,
        variable: RangeVariable,
        snapshot: "SnapshotView | None" = None,
    ) -> _EvaluatedVariable:
        store = self.store_for(variable)
        scope = self._scope_for(checked.query, variable)
        estimator = self.estimator_for(store)
        rpe = checked.bound_matches[variable.name]
        # The rendered RPE text was interned at typecheck time: reusing the
        # same str object means CPython's cached string hash makes every
        # warm key construction a lookup, not a re-hash of the source.
        rpe_text = checked.rendered_matches.get(variable.name)
        if rpe_text is None:
            rpe_text = rpe.render()
        with self.metrics.timings.measure("cache.key"):
            key = PlanCache.key_for(
                rpe_text,
                variable.store or self._default,
                store,
                estimator,
                self._planner_options,
                scope=scope,
            )
        compiled_fresh = False

        def _compile() -> MatchProgram:
            nonlocal compiled_fresh
            compiled_fresh = True
            return Planner(
                store.schema,
                estimator,
                self._planner_options,
                nfa_memo=self.plan_cache.nfa_memo,
            ).compile(rpe, bound=True, scope=scope)

        with maybe_span(current_trace(), "plan", kind="stage") as span:
            with self.metrics.timings.measure("plan"):
                program = self.plan_cache.get_or_compile(key, _compile)
            span.set("variable", variable.name)
            span.set("store", variable.store or self._default)
            span.set("cache", "miss" if compiled_fresh else "hit")
            span.set("estimated_rows", program.anchor_cost)
        extra_matcher = None
        extra = checked.extra_matches.get(variable.name)
        if extra is not None:
            from repro.rpe.match import compile_matcher

            extra_matcher = compile_matcher(extra)
        return _EvaluatedVariable(
            variable,
            store,
            scope,
            program,
            extra_matcher=extra_matcher,
            eval_store=self.evaluation_store(store, snapshot),
        )

    def _prepared_variables(
        self,
        checked: CheckedQuery,
        cache: dict,
        snapshot: "SnapshotView | None" = None,
    ) -> list[_EvaluatedVariable]:
        """Plan and evaluate every range variable of *checked*, cached.

        Variable evaluation never depends on outer bindings (anchor imports
        draw on sibling variables only), so a correlated subquery evaluates
        its MATCHES predicates once and re-joins per outer binding — the
        "query sequence management" a generated program performs.
        """
        key = id(checked)
        prepared = cache.get(key)
        if prepared is not None:
            return prepared
        query = checked.query
        prepared = []
        for variable in query.variables:
            try:
                prepared.append(
                    self._prepare_variable(checked, variable, snapshot=snapshot)
                )
            except BackendUnavailable as error:
                prepared.append(self._degraded_variable(variable, error))
        live = [item for item in prepared if not item.failed]
        # Cheap anchors first; expensive ones may import anchors from joins.
        live.sort(key=lambda item: item.program.anchor_cost)
        compare_predicates = [
            p for p in query.predicates if isinstance(p, ComparePredicate)
        ]
        evaluated_names: set[str] = set()
        for item in live:
            try:
                self._evaluate_variable(item, live, compare_predicates, evaluated_names)
            except BackendUnavailable as error:
                self._mark_failed(item, error)
            evaluated_names.add(item.name)
        prepared = live + [item for item in prepared if item.failed]
        cache[key] = prepared
        return prepared

    def _degraded_variable(
        self, variable: RangeVariable, error: BackendUnavailable
    ) -> _EvaluatedVariable:
        """Handle a backend lost before planning: degrade or raise."""
        store_name = variable.store or self._default
        if not self._allow_partial:
            raise FederationError(
                f"range variable {variable.name!r} lost backend {store_name!r}: {error}",
                variable=variable.name,
                store=store_name,
            ) from error
        self.metrics.event(f"resilience.degraded.{store_name}")
        return _EvaluatedVariable(
            variable,
            self._stores[store_name],
            TimeScope.current(),
            program=None,
            pathways=[],
            failed=True,
            failure=f"backend {store_name!r} unavailable: {error}",
        )

    def _mark_failed(
        self, item: _EvaluatedVariable, error: BackendUnavailable
    ) -> None:
        """Handle a backend lost during evaluation: degrade or raise."""
        store_name = item.variable.store or self._default
        if not self._allow_partial:
            raise FederationError(
                f"range variable {item.name!r} lost backend {store_name!r}: {error}",
                variable=item.name,
                store=store_name,
            ) from error
        self.metrics.event(f"resilience.degraded.{store_name}")
        item.failed = True
        item.failure = f"backend {store_name!r} unavailable: {error}"
        item.pathways = []

    def _solve(
        self,
        checked: CheckedQuery,
        outer_bindings: Mapping[str, Pathway],
        cache: dict,
        snapshot: "SnapshotView | None" = None,
    ) -> list[dict[str, Pathway]]:
        """Evaluate and join every range variable; returns joined bindings.

        Joint time-range validity is attached afterwards by the projector;
        here each binding dict may also carry per-pathway validity through
        the Pathway objects themselves.
        """
        query = checked.query
        prepared = self._prepared_variables(checked, cache, snapshot=snapshot)

        compare_predicates = [
            p for p in query.predicates if isinstance(p, ComparePredicate)
        ]
        exists_predicates = [
            (index, p)
            for index, p in enumerate(query.predicates)
            if isinstance(p, ExistsPredicate)
        ]

        partial: list[dict[str, Pathway]] = [dict(outer_bindings)]
        applied: set[int] = set()
        bound_names: set[str] = set(outer_bindings)

        for item in prepared:
            if item.failed:
                # Dropped variable (allow_partial): it joins nothing and
                # predicates over it are skipped below.
                continue
            assert item.pathways is not None
            bound_names.add(item.name)
            ready = [
                (index, predicate)
                for index, predicate in enumerate(compare_predicates)
                if index not in applied and predicate.variables() <= bound_names
            ]
            applied.update(index for index, _ in ready)
            partial = self._join(item, partial, ready)
            if not partial:
                break

        # Comparisons referencing only outer variables (fully correlated).
        # A predicate naming a dropped variable is unknowable; under
        # allow_partial it passes through rather than silently filtering.
        for index, predicate in enumerate(compare_predicates):
            if index in applied:
                continue
            needed = predicate.variables()
            partial = [
                b for b in partial
                if not needed <= set(b) or self._compare(predicate, b)
            ]

        for index, predicate in exists_predicates:
            sub_checked = checked.subqueries[index]
            with maybe_span(current_trace(), "exists_filter", kind="operator") as span:
                span.set("negated", predicate.negated)
                span.set("rows_in", len(partial))
                partial = [
                    binding
                    for binding in partial
                    if self._exists(sub_checked, predicate, binding, cache, snapshot)
                ]
                span.set("rows_out", len(partial))
        return partial

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------

    def _join(
        self,
        item: _EvaluatedVariable,
        partial: list[dict[str, Pathway]],
        ready: list[tuple[int, ComparePredicate]],
    ) -> list[dict[str, Pathway]]:
        """Join *item*'s pathways onto the partial bindings.

        When one of the newly-ready predicates is an equality whose sides
        split cleanly across the join — one side over *item* only, the
        other over already-bound variables — the already-bound side is
        hashed and probed once per pathway instead of once per (binding,
        pathway) pair.  Keys that cannot be hashed consistently with
        :func:`compare_values` fall back to the nested loop; either way the
        output is byte-identical to the nested loop, including order.
        """
        assert item.pathways is not None
        with maybe_span(current_trace(), "join", kind="operator") as span:
            rows_in = len(partial) * len(item.pathways)
            joined: list[dict[str, Pathway]] | None = None
            if rows_in:
                equi = self._equi_join_predicate(item, ready)
                if equi is not None:
                    joined = self._hash_join(item, partial, ready, equi)
            if joined is None:
                self.metrics.event("executor.join.nested_loop")
                strategy = "nested_loop"
                joined = []
                for binding in partial:
                    for pathway in item.pathways:
                        candidate = dict(binding)
                        candidate[item.name] = pathway
                        if all(
                            self._compare(predicate, candidate)
                            for _, predicate in ready
                        ):
                            joined.append(candidate)
            else:
                self.metrics.event("executor.join.hash")
                strategy = "hash"
            self.metrics.event("executor.join.rows_in", rows_in)
            self.metrics.event("executor.join.rows_out", len(joined))
            span.set("variable", item.name)
            span.set("strategy", strategy)
            span.set("predicates", len(ready))
            span.set("rows_in", rows_in)
            span.set("rows_out", len(joined))
        return joined

    def _equi_join_predicate(
        self,
        item: _EvaluatedVariable,
        ready: list[tuple[int, ComparePredicate]],
    ) -> tuple[object, object] | None:
        """A ``probe = build`` split of one ready equality, if any exists.

        Returns ``(probe_expr, build_expr)`` where the probe expression
        ranges over *item* alone (``source(V)``, ``id(V)``, ``V.field``)
        and the build expression over already-bound variables only.
        """
        for _, predicate in ready:
            if predicate.op != "=":
                continue
            left_vars = predicate.left.variables()
            right_vars = predicate.right.variables()
            if left_vars == {item.name} and right_vars and item.name not in right_vars:
                return predicate.left, predicate.right
            if right_vars == {item.name} and left_vars and item.name not in left_vars:
                return predicate.right, predicate.left
        return None

    def _hash_join(
        self,
        item: _EvaluatedVariable,
        partial: list[dict[str, Pathway]],
        ready: list[tuple[int, ComparePredicate]],
        equi: tuple[object, object],
    ) -> list[dict[str, Pathway]] | None:
        """Hash the bound side of *equi*, probe with *item*'s pathways.

        Returns None (caller falls back to the nested loop) as soon as any
        join key is outside the types whose hashing agrees with
        ``compare_values`` equality.  Probed candidates re-verify **all**
        ready predicates — the hash table only prunes, never decides — and
        matches are re-sorted into nested-loop order (binding position
        first, pathway index second).
        """
        probe_expr, build_expr = equi
        assert item.pathways is not None
        table: dict[object, list[tuple[int, dict[str, Pathway]]]] = {}
        for position, binding in enumerate(partial):
            key = _join_key(evaluate_expression(build_expr, binding))
            if key is _UNHASHABLE:
                return None
            table.setdefault(key, []).append((position, binding))
        matches: list[tuple[int, int, dict[str, Pathway]]] = []
        for pathway_index, pathway in enumerate(item.pathways):
            key = _join_key(evaluate_expression(probe_expr, {item.name: pathway}))
            if key is _UNHASHABLE:
                return None
            for position, binding in table.get(key, ()):
                candidate = dict(binding)
                candidate[item.name] = pathway
                if all(
                    self._compare(predicate, candidate)
                    for _, predicate in ready
                ):
                    matches.append((position, pathway_index, candidate))
        matches.sort(key=lambda entry: (entry[0], entry[1]))
        return [candidate for _, _, candidate in matches]

    def _evaluate_variable(
        self,
        item: _EvaluatedVariable,
        prepared: list[_EvaluatedVariable],
        compare_predicates: list[ComparePredicate],
        bound_names: set[str],
    ) -> None:
        store = item.eval_store if item.eval_store is not None else self.guarded(item.store)
        with maybe_span(current_trace(), "evaluate", kind="operator") as span:
            span.set("variable", item.name)
            span.set("store", item.store.name)
            span.set("scope", str(item.scope))
            # Read the ablation switch from the raw catalog store: wrappers
            # without attribute fallthrough would hide it, and backends
            # without a batch engine report "row".
            span.set(
                "execution",
                "batch" if getattr(item.store, "batch_enabled", False) else "row",
            )
            imported = None
            if item.program.anchor_cost > self._planner_options.import_threshold:
                imported = self._imported_anchor(
                    item, prepared, compare_predicates, bound_names
                )
            if imported is not None:
                end, uids = imported
                span.set("anchor", f"imported:{end}")
                span.count("anchor_seeds", len(uids))
                pathways = evaluate_from_endpoints(
                    store, item.program, item.scope, uids, end
                )
            else:
                span.set("anchor", "scan")
                pathways = store.find_pathways(item.program, item.scope)
            if item.extra_matcher is not None:
                from repro.rpe.match import matches_pathway

                pathways = [
                    p for p in pathways if matches_pathway(item.extra_matcher, p)
                ]
            if item.scope.is_range:
                window = IntervalSet([item.scope.window()])
                kept: list[Pathway] = []
                for pathway in pathways:
                    validity = pathway_validity(store, pathway, item.program.matcher)
                    # The window decides qualification; the attached range stays
                    # maximal over the whole timeline (§4's 06:30 example).
                    if not validity.intersect(window).is_empty():
                        kept.append(pathway.with_validity(validity))
                pathways = kept
            span.set("estimated_rows", item.program.anchor_cost)
            span.set("rows_out", len(pathways))
        item.pathways = pathways

    def _imported_anchor(
        self,
        item: _EvaluatedVariable,
        prepared: list[_EvaluatedVariable],
        compare_predicates: list[ComparePredicate],
        bound_names: set[str],
    ) -> tuple[str, list[int]] | None:
        """Find ``source(V)=target(U)``-style joins providing anchor seeds."""
        evaluated = {
            p.name: p for p in prepared if p.pathways is not None and not p.failed
        }
        for predicate in compare_predicates:
            if predicate.op != "=":
                continue
            sides = (predicate.left, predicate.right)
            if not all(isinstance(side, FunctionCall) for side in sides):
                continue
            left, right = sides  # type: ignore[assignment]
            pair = None
            if left.variable == item.name and right.variable in evaluated:
                pair = (left, right)
            elif right.variable == item.name and left.variable in evaluated:
                pair = (right, left)
            if pair is None:
                continue
            mine, theirs = pair
            if mine.function not in ("source", "target"):
                continue
            if theirs.function not in ("source", "target"):
                continue
            other = evaluated[theirs.variable]
            assert other.pathways is not None
            uids = sorted(
                {
                    (pathway.source if theirs.function == "source" else pathway.target).uid
                    for pathway in other.pathways
                }
            )
            return mine.function, uids
        return None

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------

    def _compare(self, predicate: ComparePredicate, bindings: Mapping[str, Pathway]) -> bool:
        left = evaluate_expression(predicate.left, bindings)
        right = evaluate_expression(predicate.right, bindings)
        return compare_values(left, predicate.op, right)

    def _exists(
        self,
        sub_checked: CheckedQuery,
        predicate: ExistsPredicate,
        outer_bindings: Mapping[str, Pathway],
        cache: dict,
        snapshot: "SnapshotView | None" = None,
    ) -> bool:
        rows = self._solve(sub_checked, outer_bindings, cache, snapshot=snapshot)
        found = bool(rows)
        return (not found) if predicate.negated else found

    # ------------------------------------------------------------------
    # projection & temporal post-processing
    # ------------------------------------------------------------------

    def _project(
        self,
        checked: CheckedQuery,
        bindings: list[dict[str, Pathway]],
        failed_names: "set[str] | frozenset[str]" = frozenset(),
    ) -> QueryResult:
        query = checked.query
        declared = query.declared_variables()
        query_range = query.at is not None and query.at.is_range

        rows: list[ResultRow] = []
        for binding in bindings:
            own_binding = {
                name: pathway for name, pathway in binding.items() if name in declared
            }
            validity: IntervalSet | None = None
            variable_validity: dict[str, IntervalSet] | None = None
            if query_range:
                assert query.at is not None and query.at.end is not None
                window = IntervalSet.of(query.at.start, query.at.end)
                joint = IntervalSet.always()
                for variable in query.variables:
                    if variable.at is not None:
                        continue
                    bound = own_binding.get(variable.name)
                    if bound is None:  # dropped under allow_partial
                        continue
                    pathway_val = bound.validity
                    if pathway_val is not None:
                        joint = joint.intersect(pathway_val)
                validity = joint
                # Under a joint AT all pathways must coexist at some instant
                # inside the window; the reported range stays maximal.
                if validity.intersect(window).is_empty():
                    continue
            per_var = {
                variable.name: own_binding[variable.name].validity
                for variable in query.variables
                if variable.at is not None
                and variable.at.is_range
                and variable.name in own_binding
                and own_binding[variable.name].validity is not None
            }
            if per_var:
                variable_validity = per_var  # type: ignore[assignment]
            if any(isinstance(p, AggregateCall) for p in query.projections):
                # Inner expressions are evaluated per row; the aggregation
                # itself happens after all rows are collected.
                values = tuple(
                    None
                    if isinstance(p, AggregateCall) and isinstance(p.argument, VariableRef)
                    else _maybe_evaluate(
                        p.argument if isinstance(p, AggregateCall) else p, binding
                    )
                    for p in query.projections
                )
            else:
                values = tuple(
                    _maybe_evaluate(projection, binding)
                    for projection in query.projections
                )
            rows.append(
                ResultRow(
                    values=values,
                    bindings=own_binding,
                    validity=validity,
                    variable_validity=variable_validity,
                )
            )

        rows = _dedup_rows(rows, query)
        columns = tuple(projection.render() for projection in query.projections)

        if query.temporal_op is not None:
            return _apply_temporal_aggregate(query, rows, columns)
        if any(isinstance(p, AggregateCall) for p in query.projections):
            return _apply_set_aggregates(query, rows, columns)
        rows = _order_and_limit(query, rows)
        return QueryResult(columns, rows)


def _maybe_evaluate(expression, bindings: Mapping[str, Pathway]):
    """Evaluate *expression*, or None when it names an unbound variable.

    A variable can be unbound only for degraded executions
    (``allow_partial=True``) where a backend was dropped; everywhere else
    this is exactly ``evaluate_expression``.
    """
    if not expression.variables() <= set(bindings):
        return None
    return evaluate_expression(expression, bindings)


def _order_value(value):
    """A total-order key over heterogeneous result values."""
    from repro.model.elements import ElementRecord

    if value is None:
        return (0, 0)
    if isinstance(value, ElementRecord):
        return (1, value.uid)
    if isinstance(value, bool):
        return (2, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


def _order_and_limit(query: Query, rows: list[ResultRow]) -> list[ResultRow]:
    """Apply ``Order By`` keys (stable, per direction) and ``Limit``."""
    if query.order_by:
        for key in reversed(query.order_by):
            rows = sorted(
                rows,
                key=lambda row: _order_value(
                    _maybe_evaluate(key.expression, row.bindings)
                ),
                reverse=key.descending,
            )
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def _apply_set_aggregates(
    query: Query, rows: list[ResultRow], columns: tuple[str, ...]
) -> QueryResult:
    """Collapse the result set into one aggregate row (§8 future work)."""
    import statistics

    values = []
    for index, projection in enumerate(query.projections):
        assert isinstance(projection, AggregateCall)
        if projection.function == "count":
            values.append(len(rows))
            continue
        samples = [
            row.values[index] for row in rows if row.values[index] is not None
        ]
        if not samples:
            values.append(None)
        elif projection.function == "min":
            values.append(min(samples))
        elif projection.function == "max":
            values.append(max(samples))
        elif projection.function == "sum":
            values.append(sum(samples))
        else:  # avg
            values.append(statistics.mean(samples))
    return QueryResult(columns, [ResultRow(values=tuple(values))])


def _dedup_rows(rows: list[ResultRow], query: Query) -> list[ResultRow]:
    """Retrieve results are pathway sets — drop duplicate bindings."""
    if query.mode != RETRIEVE:
        return rows
    seen: set[tuple] = set()
    deduped: list[ResultRow] = []
    for row in rows:
        key = tuple(
            (name, row.bindings[name].key()) for name in sorted(row.bindings)
        )
        if key not in seen:
            seen.add(key)
            deduped.append(row)
    return deduped


def _scope_from_spec(spec: TemporalSpec | None) -> TimeScope:
    if spec is None:
        return TimeScope.current()
    if spec.is_range:
        assert spec.end is not None
        return TimeScope.between(spec.start, spec.end)
    return TimeScope.at(spec.start)


def _apply_temporal_aggregate(
    query: Query, rows: list[ResultRow], columns: tuple[str, ...]
) -> QueryResult:
    """FIRST/LAST TIME WHEN EXISTS and WHEN EXISTS (§4 / [18])."""
    if query.at is None or not query.at.is_range:
        raise TemporalError(
            "temporal aggregates require a query-level AT '<t1>' : '<t2>' range"
        )
    union = IntervalSet.empty()
    for row in rows:
        if row.validity is not None:
            union = union.union(row.validity)
    # Aggregates ask about instants *during* the window.
    assert query.at.end is not None
    union = union.clip(Interval(query.at.start, query.at.end))
    if query.temporal_op == WHEN_EXISTS:
        value_rows = [
            ResultRow(values=((interval.start, None if interval.is_current else interval.end),))
            for interval in union
        ]
        return QueryResult(("when_exists",), value_rows)
    if query.temporal_op == FIRST_TIME:
        instant = union.first_instant()
    elif query.temporal_op == LAST_TIME:
        last = union.last_instant()
        instant = None if last is None else (None if last == FOREVER else last)
        if last == FOREVER:
            # Still satisfied at the end of the window: report the window end.
            instant = query.at.end
    else:  # pragma: no cover - parser restricts the values
        raise TypeCheckError(f"unknown temporal aggregate {query.temporal_op!r}")
    column = "first_time" if query.temporal_op == FIRST_TIME else "last_time"
    if instant is None:
        return QueryResult((column,), [])
    return QueryResult((column,), [ResultRow(values=(instant,))])
