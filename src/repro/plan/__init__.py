"""Query planning and execution (Section 5).

The planner normalizes an RPE, selects the cheapest anchor, splits the RPE
around it and compiles forward/backward automata; the result is a
:class:`~repro.plan.program.MatchProgram` every backend can evaluate.  The
generic evaluator (:mod:`repro.plan.traverse`) drives frontier expansion
against any store; the relational backend substitutes set-at-a-time SQL.
The query-level executor (:mod:`repro.plan.executor`) handles joins across
range variables, subqueries and temporal post-processing.
"""

from repro.plan.planner import Planner, PlannerOptions
from repro.plan.program import CompiledSplit, MatchProgram

__all__ = ["CompiledSplit", "MatchProgram", "Planner", "PlannerOptions"]
