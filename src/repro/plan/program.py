"""Compiled match programs — the planner's output, the backends' input."""

from __future__ import annotations

from dataclasses import dataclass

from repro.rpe.anchors import AnchorPlan, Split
from repro.rpe.ast import RpeNode
from repro.rpe.nfa import PathwayNfa


@dataclass(frozen=True)
class CompiledSplit:
    """One anchor atom with executable affix automata.

    ``forward_nfa`` consumes pathway elements after the anchor (the suffix
    side); ``backward_nfa`` consumes elements before it, in reverse order
    (it is built from the mirrored prefix).  Both embed the concatenation
    seam toward the anchor and the implicit endpoint-node padding at the
    pathway boundary.
    """

    split: Split
    forward_nfa: PathwayNfa
    backward_nfa: PathwayNfa


@dataclass(frozen=True)
class MatchProgram:
    """Everything a backend needs to find the pathways matching one RPE."""

    rpe: RpeNode
    """The bound, normalized RPE."""

    anchor_plan: AnchorPlan
    splits: tuple[CompiledSplit, ...]

    matcher: PathwayNfa
    """Whole-pathway acceptance automaton (verification, temporal validity)."""

    reversed_matcher: PathwayNfa
    """Acceptance automaton of the mirrored RPE — consumes pathways from the
    target end, used when a join imports the anchor at the target (§3.3:
    "In join queries, an anchor can be imported from a joined path")."""

    max_elements: int
    """Upper bound on elements per pathway (finite by construction)."""

    anchor_cost: float = 0.0
    seeds: tuple[int, ...] | None = None
    """Optional pre-resolved anchor uids (anchors imported from a join)."""

    def describe(self) -> str:
        lines = [f"match {self.rpe.render()}"]
        lines.append(f"  anchor {self.anchor_plan.render()}")
        for compiled in self.splits:
            lines.append(f"  split {compiled.split.render()}")
        lines.append(f"  max elements {self.max_elements}")
        return "\n".join(lines)
