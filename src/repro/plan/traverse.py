"""Generic pathway traversal: evaluate a match program against any store.

This is the tuple-at-a-time realization of the paper's operator DAG:

* the anchor scan is the **Select** operator;
* each automaton step over the graph is an **Extend** operator, following
  edges forwards or backwards from the anchor (§5.1: "If the selected
  anchor is in the middle of the RPE, the query plan will have both
  forwards and backwards Extend operators");
* results from the several splits of an alternation anchor are **Union**-ed
  with pathway-level deduplication.

Expansion is pruned with the automaton's outgoing labels: when every next
label names edge classes, only the adjacency lists of those class subtrees
are touched — the model-driven pruning whose effect §6 measures.

Traversal proceeds in *waves*: all partial pathways of the same length
form one frontier, and every node awaiting expansion in that frontier is
expanded through a single batched adjacency call per distinct class
filter (``out_edges_many`` / ``in_edges_many``) instead of one store call
per partial pathway.  Backends amortize filter resolution and index work
across the whole frontier; the set of pathways produced is identical to
the former depth-first order, since results are deduplicated by key.

Concurrency: traversal keeps no state outside its local frontier and
issues *every* read through the ``store`` argument.  Snapshot-isolated
execution therefore needs no cooperation here — the executor passes a
pinned :class:`~repro.core.concurrency.SnapshotStore` wrapper and every
anchor scan, adjacency expansion and validity probe observes the same
(as-of, data-version) view, no matter which thread runs the traversal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.model.elements import EdgeRecord, ElementRecord, NodeRecord
from repro.model.pathway import Pathway
from repro.rpe.nfa import PathwayNfa
from repro.stats.tracing import current_trace, maybe_span
from repro.storage.base import GraphStore, TimeScope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.program import CompiledSplit, MatchProgram

FORWARD = "forward"
BACKWARD = "backward"


def evaluate_program(
    store: GraphStore, program: "MatchProgram", scope: TimeScope
) -> list[Pathway]:
    """All distinct pathways of *store* under *scope* matching the program."""
    results: dict[tuple[int, ...], Pathway] = {}
    for compiled in program.splits:
        for pathway in _evaluate_split(store, program, compiled, scope):
            results.setdefault(pathway.key(), pathway)
    return list(results.values())


def _evaluate_split(
    store: GraphStore,
    program: "MatchProgram",
    compiled: "CompiledSplit",
    scope: TimeScope,
):
    seeds = _anchor_seeds(store, program, compiled, scope)
    for seed in seeds:
        forwards = _extensions(store, seed, compiled.forward_nfa, FORWARD, scope, program)
        if not forwards:
            continue
        backwards = _extensions(store, seed, compiled.backward_nfa, BACKWARD, scope, program)
        for backward in backwards:
            backward_uids = {element.uid for element in backward}
            for forward in forwards:
                if backward_uids and not backward_uids.isdisjoint(
                    element.uid for element in forward
                ):
                    continue
                elements = [*reversed(backward), seed, *forward]
                if len(elements) > program.max_elements:
                    continue
                if not isinstance(elements[0], NodeRecord):
                    continue
                if not isinstance(elements[-1], NodeRecord):
                    continue
                yield Pathway(elements)


def evaluate_from_endpoints(
    store: GraphStore,
    program: "MatchProgram",
    scope: TimeScope,
    endpoint_uids: list[int],
    end: str,
) -> list[Pathway]:
    """Evaluate a match with the anchor *imported from a join* (§3.3).

    Instead of scanning the RPE's own anchor atom — which may be hopeless,
    like ``ConnectsTo(){1,8}`` over the whole graph — traversal starts at
    the given node uids, which a previously evaluated joined variable pinned
    as the pathway's ``source`` or ``target``.  All endpoints traverse as
    one shared frontier, so each wave is a handful of batched adjacency
    calls regardless of how many seeds the join supplied.
    """
    matcher = program.matcher if end == "source" else program.reversed_matcher
    direction = FORWARD if end == "source" else BACKWARD
    results: dict[tuple[int, ...], Pathway] = {}
    frontier: list[tuple[list[ElementRecord], frozenset[int], frozenset[int]]] = []
    endpoints = store.get_many(endpoint_uids, scope)
    for uid in endpoint_uids:
        node = endpoints.get(uid)
        if not isinstance(node, NodeRecord):
            continue
        initial = matcher.step(matcher.initial_states(), node)
        if initial:
            frontier.append(([node], initial, frozenset((uid,))))
    while frontier:
        expandable: list[tuple[list[ElementRecord], frozenset[int], frozenset[int]]] = []
        for entry in frontier:
            consumed, states, used = entry
            if matcher.is_accepting(states) and isinstance(consumed[-1], NodeRecord):
                elements = consumed if end == "source" else list(reversed(consumed))
                pathway = Pathway(elements)
                results.setdefault(pathway.key(), pathway)
            if len(consumed) >= program.max_elements or matcher.is_dead(states):
                continue
            expandable.append(entry)
        frontier = _advance_frontier(store, expandable, direction, scope, matcher)
    return list(results.values())


def _anchor_seeds(
    store: GraphStore,
    program: "MatchProgram",
    compiled: "CompiledSplit",
    scope: TimeScope,
) -> list[ElementRecord]:
    """The Select operator, honouring anchors imported from a join."""
    with maybe_span(current_trace(), "anchor_scan", kind="storage") as span:
        span.set("anchor", compiled.split.anchor.render())
        if program.seeds is not None:
            span.set("mode", "pinned_seeds")
            records = []
            seeded = store.get_many(list(program.seeds), scope)
            for uid in program.seeds:
                record = seeded.get(uid)
                if record is not None and compiled.split.anchor.matches(record):
                    records.append(record)
            span.set("rows_out", len(records))
            return records
        span.set("mode", "scan")
        records = store.scan_atom(compiled.split.anchor, scope)
        span.set("rows_out", len(records))
        return records


def _extensions(
    store: GraphStore,
    seed: ElementRecord,
    nfa: PathwayNfa,
    direction: str,
    scope: TimeScope,
    program: "MatchProgram",
) -> list[list[ElementRecord]]:
    """All element sequences by which *seed* can be extended per *nfa*.

    Returned sequences are in traversal order (away from the anchor); the
    empty sequence appears when the automaton accepts immediately.
    """
    completions: list[list[ElementRecord]] = []
    seen_completions: set[tuple[int, ...]] = set()
    initial = nfa.initial_states()
    if not initial:
        return completions
    # Breadth-first waves over (consumed elements, automaton states, used
    # uids); each wave expands its whole node frontier in batched calls.
    frontier: list[tuple[list[ElementRecord], frozenset[int], frozenset[int]]] = [
        ([], initial, frozenset((seed.uid,)))
    ]
    budget = program.max_elements
    while frontier:
        expandable: list[tuple[list[ElementRecord], frozenset[int], frozenset[int]]] = []
        for entry in frontier:
            consumed, states, used = entry
            if nfa.is_accepting(states):
                key = tuple(element.uid for element in consumed)
                if key not in seen_completions:
                    seen_completions.add(key)
                    completions.append(consumed)
            if len(consumed) >= budget or nfa.is_dead(states):
                continue
            expandable.append(entry)
        frontier = _advance_frontier(
            store, expandable, direction, scope, nfa, seed=seed
        )
    return completions


def _advance_frontier(
    store: GraphStore,
    expandable: list[tuple[list[ElementRecord], frozenset[int], frozenset[int]]],
    direction: str,
    scope: TimeScope,
    nfa: PathwayNfa,
    seed: ElementRecord | None = None,
) -> list[tuple[list[ElementRecord], frozenset[int], frozenset[int]]]:
    """One traversal wave: batch-expand every entry, step the automaton.

    Entries whose tip is a node are grouped by their automaton class
    filter; each group becomes a single ``out_edges_many``/``in_edges_many``
    call — the Extend operator applied set-at-a-time instead of per
    pathway.  Edge tips just hop to their far node.
    """
    neighbor_lists: list[list[ElementRecord] | None] = [None] * len(expandable)
    #: filter key -> (classes object, [(entry index, node uid), ...])
    groups: dict[object, tuple[object, list[tuple[int, int]]]] = {}
    #: [(entry index, far-node uid), ...] for entries whose tip is an edge.
    edge_tips: list[tuple[int, int]] = []
    for index, (consumed, states, _) in enumerate(expandable):
        last = consumed[-1] if consumed else seed
        assert last is not None
        if isinstance(last, NodeRecord):
            classes = nfa.edge_class_filter(states)
            key = (
                None
                if classes is None
                else tuple(sorted(cls.name for cls in classes))
            )
            entry = groups.get(key)
            if entry is None:
                entry = groups[key] = (classes, [])
            entry[1].append((index, last.uid))
        else:
            assert isinstance(last, EdgeRecord)
            next_uid = last.target_uid if direction == FORWARD else last.source_uid
            edge_tips.append((index, next_uid))
    if edge_tips:
        # All edge tips of the wave hop to their far node in one batch.
        hopped = store.get_many([uid for _, uid in edge_tips], scope)
        for index, uid in edge_tips:
            node = hopped.get(uid)
            neighbor_lists[index] = [node] if node is not None else []
    fetch = store.out_edges_many if direction == FORWARD else store.in_edges_many
    trace = current_trace()
    if trace is not None and expandable:
        trace.count("traverse.waves")
        trace.count("traverse.frontier", len(expandable))
    for classes, members in groups.values():
        unique_uids = list(dict.fromkeys(uid for _, uid in members))
        if trace is not None:
            trace.count("traverse.batched_expansions")
            trace.count("traverse.expanded_nodes", len(unique_uids))
        batched = fetch(unique_uids, scope, classes)
        for index, uid in members:
            neighbor_lists[index] = list(batched.get(uid, ()))
    next_frontier: list[tuple[list[ElementRecord], frozenset[int], frozenset[int]]] = []
    for (consumed, states, used), candidates in zip(expandable, neighbor_lists):
        for candidate in candidates or ():
            if candidate.uid in used:
                continue
            next_states = nfa.step(states, candidate)
            if next_states:
                next_frontier.append(
                    ([*consumed, candidate], next_states, used | {candidate.uid})
                )
    return next_frontier
