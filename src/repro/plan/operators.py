"""The database-operator DAG (Section 5.1).

"The normalized RPE and the selected best anchor are then converted into a
collection of database operators ... The basic operators are Select, Extend
and Union.  Select operators evaluate the anchor atom(s).  Extend operators
evaluate the non-anchor atoms.  Union operators collect results where
multiple paths are possible (Alternation and Repetition) — replacing epsilon
transitions."

This module lowers a compiled affix automaton into that operator list: one
Extend per consuming transition, one Union per epsilon transition, in
topological order.  The generic executor does not need this form (it drives
the automaton directly), but the relational backend executes exactly this
list as TEMP-table SQL, and ``explain()`` renders it.

The Extend operator "can be subclassed along three dimensions: does it
extend a node or an edge?  does it extend from a node or an edge?  does it
extend a path forwards or backwards?" — captured by :class:`ExtendOp`'s
``consumes`` field and the direction of the owning program.  ExtendBlock
(§5.2) fuses a linear edge+node chain into one operator to avoid
materializing the intermediate state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rpe.ast import Atom
from repro.rpe.nfa import ANY, ANY_EDGE, ANY_NODE, PAD_NODE, AtomLabel, PathwayNfa


@dataclass(frozen=True)
class SelectOp:
    """Evaluate an anchor atom — the seed scan."""

    atom: Atom

    def render(self) -> str:
        return f"Select[{self.atom.render()}]"


@dataclass(frozen=True)
class ExtendOp:
    """Extend partial paths in *from_state* by one element into *to_state*.

    ``consumes`` is ``"node"``, ``"edge"`` or ``"any"``; ``atom`` constrains
    the consumed element (``None`` for wildcards).
    """

    from_state: int
    to_state: int
    consumes: str
    atom: Atom | None = None

    def render(self) -> str:
        constraint = self.atom.render() if self.atom else f"<{self.consumes}>"
        return f"Extend[s{self.from_state} -> s{self.to_state} by {constraint}]"


@dataclass(frozen=True)
class UnionOp:
    """Copy partial paths between states — a reified epsilon transition."""

    from_state: int
    to_state: int

    def render(self) -> str:
        return f"Union[s{self.from_state} -> s{self.to_state}]"


@dataclass(frozen=True)
class ExtendBlockOp:
    """A fused chain of Extend operators (§5.2's loop-unrolling operator).

    The payload is restricted exactly as the paper restricts it: "it must be
    a sequence of atoms or alternations of atoms" — here, a linear chain of
    consuming transitions with no branching in between.
    """

    steps: tuple[ExtendOp, ...]

    @property
    def from_state(self) -> int:
        return self.steps[0].from_state

    @property
    def to_state(self) -> int:
        return self.steps[-1].to_state

    def render(self) -> str:
        inner = "; ".join(step.render() for step in self.steps)
        return f"ExtendBlock[{inner}]"


Operator = SelectOp | ExtendOp | UnionOp | ExtendBlockOp


def lower_affix(nfa: PathwayNfa) -> list[ExtendOp | UnionOp]:
    """Lower an affix automaton to Extend/Union operators in topological order."""
    operators: list[ExtendOp | UnionOp] = []
    for state in nfa.topological_states():
        for label, target in nfa.transitions.get(state, ()):
            if label == ANY:
                consumes, atom = "any", None
            elif label in (ANY_NODE, PAD_NODE):
                consumes, atom = "node", None
            elif label == ANY_EDGE:
                consumes, atom = "edge", None
            else:
                assert isinstance(label, AtomLabel)
                consumes = "node" if label.atom.is_node_atom else "edge"
                atom = label.atom
            operators.append(ExtendOp(state, target, consumes, atom))
        for target in nfa.epsilon_transitions.get(state, ()):
            operators.append(UnionOp(state, target))
    return operators


def contract_pass_through_unions(
    operators: list[ExtendOp | UnionOp],
    protect: frozenset[int] = frozenset(),
) -> list[ExtendOp | UnionOp]:
    """Eliminate unions that merely rename a state.

    A Union ``A -> B`` whose source has no other outgoing operator and
    whose target has no other incoming operator copies a table verbatim;
    aliasing ``B := A`` removes it.  States in *protect* (the seed and
    accept states, whose tables the runner touches by name) are never
    aliased away.
    """
    incoming: dict[int, int] = {}
    outgoing: dict[int, int] = {}
    for op in operators:
        outgoing[op.from_state] = outgoing.get(op.from_state, 0) + 1
        incoming[op.to_state] = incoming.get(op.to_state, 0) + 1

    alias: dict[int, int] = {}

    def resolve(state: int) -> int:
        while state in alias:
            state = alias[state]
        return state

    remaining: list[ExtendOp | UnionOp] = []
    for op in operators:
        if (
            isinstance(op, UnionOp)
            and op.to_state not in protect
            and outgoing.get(op.from_state, 0) == 1
            and incoming.get(op.to_state, 0) == 1
        ):
            alias[op.to_state] = op.from_state
        else:
            remaining.append(op)

    remapped: list[ExtendOp | UnionOp] = []
    for op in remaining:
        source, target = resolve(op.from_state), resolve(op.to_state)
        if isinstance(op, UnionOp):
            remapped.append(UnionOp(source, target))
        else:
            remapped.append(ExtendOp(source, target, op.consumes, op.atom))
    return remapped


def fuse_extend_blocks(
    operators: list[ExtendOp | UnionOp],
    protect: frozenset[int] = frozenset(),
) -> list[ExtendOp | UnionOp | ExtendBlockOp]:
    """Fuse maximal linear Extend chains into ExtendBlock operators.

    Pass-through unions are contracted first; a chain ``s1 -e-> s2 -n-> s3``
    is then fusable when the intermediate states have exactly one incoming
    and one outgoing operator, so the intermediate table would never be
    read by anyone else.  *protect* lists states whose tables the runner
    reads by name (seed/accept); they are never fused away.
    """
    operators = contract_pass_through_unions(operators, protect)
    incoming: dict[int, int] = {}
    outgoing: dict[int, int] = {}
    for op in operators:
        outgoing[op.from_state] = outgoing.get(op.from_state, 0) + 1
        incoming[op.to_state] = incoming.get(op.to_state, 0) + 1

    by_source: dict[int, ExtendOp] = {
        op.from_state: op
        for op in operators
        if isinstance(op, ExtendOp)
        and outgoing.get(op.from_state, 0) == 1
    }

    fused: list[ExtendOp | UnionOp | ExtendBlockOp] = []
    consumed: set[int] = set()  # from_states already folded into a block
    for op in operators:
        if isinstance(op, UnionOp):
            fused.append(op)
            continue
        if op.from_state in consumed:
            continue
        chain = [op]
        cursor = op
        while True:
            candidate = cursor.to_state
            nxt = by_source.get(candidate)
            if (
                nxt is None
                or candidate in protect
                or incoming.get(candidate, 0) != 1
            ):
                break
            chain.append(nxt)
            consumed.add(nxt.from_state)
            cursor = nxt
        if len(chain) > 1:
            fused.append(ExtendBlockOp(tuple(chain)))
        else:
            fused.append(op)
    return fused
