"""The compiled-plan cache (ROADMAP: caching & hot-path speedups).

Planning an NPQL query repeats the whole §5 pipeline — normalization,
anchor enumeration and costing, RPE splitting, NFA construction and kind
refinement — on every call, even though production workloads (and the
paper's Table 1/2 sweeps) sample many instances of a few query templates.
Compiled :class:`~repro.plan.program.MatchProgram` objects are immutable
and contain no data, only plan shape, so they are safe to reuse as long as
the inputs that shaped them are unchanged.

A :class:`PlanCache` is a bounded LRU of compiled programs keyed on:

* the RPE text (bound-and-normalized render for query variables, the raw
  expression text for :meth:`NepalDB.find_paths`);
* the catalog store name **and** the store object itself (federated
  queries over distinct stores never share entries, even when two attached
  stores carry the same display name);
* the store's schema object and its monotonic ``version`` counter
  (schema changes and schema reloads drop plans);
* the statistics epoch of the store's
  :class:`~repro.stats.cardinality.CardinalityEstimator` (stats drift may
  change plan *choice*, so stale-stats plans are replaced — correctness
  never depends on it, because programs carry no data);
* the :class:`~repro.plan.planner.PlannerOptions` in effect.

Entries whose key went stale (same RPE/store, newer schema version or
stats epoch) are purged when the replacement is stored and counted as
invalidations; capacity overflow evicts in LRU order.  All counters feed a
:class:`~repro.stats.metrics.MetricsRegistry` so ``NepalDB.cache_stats()``
and the CLI's ``.stats`` command can show hit rates.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.stats.metrics import CacheCounters, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.planner import PlannerOptions
    from repro.plan.program import MatchProgram
    from repro.schema.registry import Schema
    from repro.stats.cardinality import CardinalityEstimator
    from repro.storage.base import GraphStore, TimeScope

DEFAULT_PLAN_CACHE_SIZE = 256
DEFAULT_MEMO_SIZE = 512


class LruCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` counts a hit or miss and refreshes recency; ``put`` evicts the
    oldest entry once ``max_size`` is exceeded (counted as an eviction).

    Thread-safe: ``get`` mutates the recency order (``move_to_end``), so
    even two concurrent *readers* race without exclusion.  A per-cache lock
    serializes every mapping operation; ``get_or_create`` runs the factory
    outside the lock, so two threads may build the same entry concurrently
    (last write wins — entries are immutable plan/parse artefacts, so a
    duplicate build wastes work but never corrupts state).
    """

    def __init__(self, max_size: int, counters: CacheCounters | None = None):
        if max_size < 1:
            raise ValueError(f"cache size must be positive, got {max_size}")
        self.max_size = max_size
        self.counters = counters or CacheCounters()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        with self._lock:
            return list(self._entries)

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.counters.miss()
            return None
        self.counters.hit()
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self.counters.eviction(evicted)

    def remove(self, key: Hashable) -> bool:
        """Drop *key* without touching the eviction counter."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        """Drop everything; returns (and counts) the entries invalidated."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        self.counters.invalidation(dropped)
        return dropped

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        entry = self.get(key)
        if entry is None:
            entry = factory()
            self.put(key, entry)
        return entry


@dataclass(frozen=True)
class PlanCacheKey:
    """Identity of one compiled program (see the module docstring).

    ``schema`` and ``store_ref`` compare by object identity — two schemas
    or stores are never "equal enough" to share a compiled plan unless
    they are the same object at the same version/epoch.
    """

    rpe_text: str
    store: str
    store_ref: "GraphStore | None"
    schema: "Schema | None"
    schema_version: int
    stats_epoch: int
    options: "PlannerOptions | None"
    scope_key: object | None = None
    """The *kind* of time scope planned for (``None`` for the current
    snapshot, ``"at"``/``"range"`` for historical reads).  Historical
    cardinalities can pick a different anchor than current ones, so the
    scopes must not share a compiled plan — but only the kind is keyed,
    never the timestamps, so a Table-2 style sweep over a thousand time
    points still hits one cache entry."""

    def template(self) -> tuple:
        """The version-free part: what identifies a *query template*."""
        return (
            self.rpe_text,
            self.store,
            id(self.store_ref),
            self.options,
            self.scope_key,
        )


class PlanCache:
    """Bounded LRU of compiled match programs with versioned invalidation."""

    def __init__(
        self,
        max_size: int = DEFAULT_PLAN_CACHE_SIZE,
        metrics: MetricsRegistry | None = None,
    ):
        self.metrics = metrics or MetricsRegistry()
        self._programs = LruCache(max_size, self.metrics.counters("plan"))
        #: guards the _latest template index, whose purge logic spans
        #: several _programs operations that must appear atomic.
        self._lock = threading.Lock()
        #: template -> the full key last stored for it (stale-entry purging).
        self._latest: dict[tuple, PlanCacheKey] = {}
        #: shared memo for affix-NFA construction; survives stats-epoch
        #: drift because automata depend only on the RPE and the schema.
        self.nfa_memo = LruCache(DEFAULT_MEMO_SIZE, self.metrics.counters("nfa"))

    # ------------------------------------------------------------------

    @staticmethod
    def key_for(
        rpe_text: str,
        store_name: str,
        store: "GraphStore",
        estimator: "CardinalityEstimator",
        options: "PlannerOptions",
        scope: "TimeScope | None" = None,
    ) -> PlanCacheKey:
        """Build the cache key for *rpe_text* planned against *store*."""
        scope_key = None if scope is None or scope.is_current else scope.kind
        return PlanCacheKey(
            rpe_text=rpe_text,
            store=store_name,
            store_ref=store,
            schema=store.schema,
            schema_version=store.schema.version,
            stats_epoch=estimator.stats_epoch,
            options=options,
            scope_key=scope_key,
        )

    def lookup(self, key: PlanCacheKey) -> "MatchProgram | None":
        return self._programs.get(key)

    def store(self, key: PlanCacheKey, program: "MatchProgram") -> None:
        """Insert *program*, purging any stale entry for the same template."""
        template = key.template()
        with self._lock:
            previous = self._latest.get(template)
            if previous is not None and previous != key:
                if self._programs.remove(previous):
                    self._programs.counters.invalidation()
            self._latest[template] = key
            self._programs.put(key, program)
            if len(self._latest) > 4 * self._programs.max_size:
                # The template index only exists for purging; keep it bounded.
                live = set(self._programs.keys())
                self._latest = {
                    tpl: full for tpl, full in self._latest.items() if full in live
                }

    def get_or_compile(
        self, key: PlanCacheKey, factory: Callable[[], "MatchProgram"]
    ) -> "MatchProgram":
        program = self.lookup(key)
        if program is None:
            program = factory()
            self.store(key, program)
        return program

    # ------------------------------------------------------------------

    def invalidate(self, store_name: str | None = None) -> int:
        """Drop every entry (or only *store_name*'s); returns the count."""
        with self._lock:
            if store_name is None:
                self._latest.clear()
                return self._programs.clear()
            dropped = 0
            for key in self._programs.keys():
                if isinstance(key, PlanCacheKey) and key.store == store_name:
                    self._programs.remove(key)
                    self._latest.pop(key.template(), None)
                    dropped += 1
        if dropped:
            self._programs.counters.invalidation(dropped)
        return dropped

    def __len__(self) -> int:
        return len(self._programs)

    @property
    def max_size(self) -> int:
        return self._programs.max_size

    def stats(self) -> dict[str, object]:
        """Counter snapshot plus occupancy, for ``cache_stats()``."""
        snapshot = self._programs.counters.snapshot()
        snapshot["entries"] = len(self._programs)
        snapshot["max_size"] = self._programs.max_size
        return snapshot
