"""Human-readable plan explanation.

Renders the compiled program the way the paper narrates its plans: the
chosen anchor with its estimated cardinality, then the forwards/backwards
Extend/Union operator lists derived from the affix automata, e.g. for
``VNF(id=55)->[Connects(){1,5}]->VM(id=66)``:

    Compute VM(id=55)|Docker(id=66)
    Extend forwards by ...
    Extend backwards by ...
"""

from __future__ import annotations

from repro.plan.operators import fuse_extend_blocks, lower_affix
from repro.plan.program import MatchProgram
from repro.util.text import indent_block


def explain_program(program: MatchProgram, fuse_blocks: bool = True) -> str:
    """Render the operator DAG of a compiled match program."""
    lines: list[str] = [f"MATCHES {program.rpe.render()}"]
    lines.append(
        f"anchor plan ({len(program.splits)} split"
        f"{'s' if len(program.splits) != 1 else ''}, "
        f"estimated cardinality {program.anchor_cost:g})"
    )
    for index, compiled in enumerate(program.splits):
        lines.append(f"split {index}: Select[{compiled.split.anchor.render()}]")
        for direction, nfa, affix in (
            ("forwards", compiled.forward_nfa, compiled.split.suffix),
            ("backwards", compiled.backward_nfa, compiled.split.prefix),
        ):
            rendered = affix.render() if affix is not None else "ε"
            operators = lower_affix(nfa)
            if fuse_blocks:
                operators = fuse_extend_blocks(operators)
            body = "\n".join(op.render() for op in operators) or "(nothing to do)"
            lines.append(f"  extend {direction} by {rendered}:")
            lines.append(indent_block(body, "    "))
    lines.append(f"pathway length limit: {program.max_elements} elements")
    return "\n".join(lines)
