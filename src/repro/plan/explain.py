"""Human-readable plan explanation, plain and ANALYZE-d.

:func:`explain_program` renders the compiled program the way the paper
narrates its plans: the chosen anchor with its estimated cardinality, then
the forwards/backwards Extend/Union operator lists derived from the affix
automata, e.g. for ``VNF(id=55)->[Connects(){1,5}]->VM(id=66)``:

    Compute VM(id=55)|Docker(id=66)
    Extend forwards by ...
    Extend backwards by ...

:class:`ExplainAnalysis` is the ``EXPLAIN ANALYZE`` counterpart: the same
plan rendering, interleaved with what one traced execution *actually did*
— rows produced per operator next to the planner's estimate, plan-cache
and memo outcomes, join strategies and per-operator wall-clock.  Rendering
with ``mask_timings=True`` replaces every volatile timing with ``?`` so
the output is byte-stable for golden-file tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.plan.operators import fuse_extend_blocks, lower_affix
from repro.plan.program import MatchProgram
from repro.util.text import indent_block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.results import QueryResult
    from repro.stats.tracing import TraceContext, TraceSpan


def explain_program(program: MatchProgram, fuse_blocks: bool = True) -> str:
    """Render the operator DAG of a compiled match program."""
    lines: list[str] = [f"MATCHES {program.rpe.render()}"]
    lines.append(
        f"anchor plan ({len(program.splits)} split"
        f"{'s' if len(program.splits) != 1 else ''}, "
        f"estimated cardinality {program.anchor_cost:g})"
    )
    for index, compiled in enumerate(program.splits):
        lines.append(f"split {index}: Select[{compiled.split.anchor.render()}]")
        for direction, nfa, affix in (
            ("forwards", compiled.forward_nfa, compiled.split.suffix),
            ("backwards", compiled.backward_nfa, compiled.split.prefix),
        ):
            rendered = affix.render() if affix is not None else "ε"
            operators = lower_affix(nfa)
            if fuse_blocks:
                operators = fuse_extend_blocks(operators)
            body = "\n".join(op.render() for op in operators) or "(nothing to do)"
            lines.append(f"  extend {direction} by {rendered}:")
            lines.append(indent_block(body, "    "))
    lines.append(f"pathway length limit: {program.max_elements} elements")
    return "\n".join(lines)


#: Trace counters worth surfacing per operator in the ANALYZE rendering
#: (storage/index decisions and resilience events; prefix-matched).
_INTERESTING_COUNTERS = (
    "index.temporal.",
    "index.field",
    "index.class",
    "index.expand.",
    "executor.batch.",
    "resilience.",
)


@dataclass
class ExplainAnalysis:
    """One traced execution paired with its compiled per-variable plans.

    ``sections`` holds ``(variable name, store name, scope, program)``
    tuples in declaration order; ``trace`` the span tree the execution
    recorded; ``result`` the rows it returned (identical to an untraced
    run).  :meth:`actual_rows` and :meth:`estimated_rows` expose the
    cardinality pair the differential tests compare.
    """

    query_text: str
    sections: list[tuple[str, str, str, MatchProgram]]
    trace: "TraceContext"
    result: "QueryResult"

    def _variable_span(self, name: str, variable: str) -> "TraceSpan | None":
        root = self.trace.root
        return None if root is None else root.find(name, variable=variable)

    def actual_rows(self, variable: str) -> int | None:
        """Pathways the traced evaluation produced for *variable*."""
        span = self._variable_span("evaluate", variable)
        return None if span is None else span.attrs.get("rows_out")

    def estimated_rows(self, variable: str) -> float | None:
        """The planner's anchor-cardinality estimate for *variable*."""
        for name, _store, _scope, program in self.sections:
            if name == variable:
                return program.anchor_cost
        return None

    @property
    def root_rows(self) -> int | None:
        """``rows_out`` recorded on the root span (== len(result.rows))."""
        root = self.trace.root
        return None if root is None else root.attrs.get("rows_out")

    def render(self, mask_timings: bool = False) -> str:
        """The combined EXPLAIN ANALYZE report.

        Stable keys and orderings throughout; timings (and the trace id)
        are the only volatile parts and ``mask_timings`` hides them.
        """

        def ms(span: "TraceSpan | None") -> str:
            if span is None:
                return "?"
            return "?" if mask_timings else f"{span.elapsed * 1000:.3f}"

        lines = [f"EXPLAIN ANALYZE {self.query_text}"]
        root = self.trace.root
        for name, store_name, scope, program in self.sections:
            lines.append("")
            lines.append(f"variable {name} on store {store_name} ({scope}):")
            lines.append(explain_program(program))
            plan_span = self._variable_span("plan", name)
            if plan_span is not None:
                lines.append(
                    f"  plan: cache {plan_span.attrs.get('cache', '?')} "
                    f"[{ms(plan_span)} ms]"
                )
            evaluate_span = self._variable_span("evaluate", name)
            if evaluate_span is not None:
                attrs = evaluate_span.attrs
                estimated = attrs.get("estimated_rows", program.anchor_cost)
                execution = attrs.get("execution", "row")
                lines.append(
                    f"  actual: {attrs.get('rows_out', '?')} pathways "
                    f"(estimated {estimated:g}) via anchor "
                    f"{attrs.get('anchor', '?')} "
                    f"({execution} execution) [{ms(evaluate_span)} ms]"
                )
                for key in sorted(evaluate_span.counters):
                    if key.startswith(_INTERESTING_COUNTERS):
                        lines.append(f"    {key}: {evaluate_span.counters[key]}")
            join_span = self._variable_span("join", name)
            if join_span is not None:
                attrs = join_span.attrs
                lines.append(
                    f"  join: {attrs.get('strategy', '?')}, "
                    f"rows in {attrs.get('rows_in', '?')} -> "
                    f"out {attrs.get('rows_out', '?')} "
                    f"({attrs.get('predicates', 0)} predicates) "
                    f"[{ms(join_span)} ms]"
                )
        lines.append("")
        if root is not None:
            for stage in ("parse", "typecheck"):
                span = root.find(stage)
                if span is not None:
                    lines.append(
                        f"{stage}: {span.attrs.get('source', '?')} [{ms(span)} ms]"
                    )
            for span in root.find_all("exists_filter"):
                lines.append(
                    f"exists filter{' (negated)' if span.attrs.get('negated') else ''}: "
                    f"rows in {span.attrs.get('rows_in', '?')} -> "
                    f"out {span.attrs.get('rows_out', '?')} [{ms(span)} ms]"
                )
            project = root.find("project")
            if project is not None:
                lines.append(
                    f"project: {project.counters.get('rows_in', 0)} bindings -> "
                    f"{project.counters.get('rows_out', 0)} rows [{ms(project)} ms]"
                )
            lines.append(
                f"result: {root.attrs.get('rows_out', '?')} rows [{ms(root)} ms total]"
            )
        return "\n".join(lines)
