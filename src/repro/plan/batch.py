"""Column-batch operators over :class:`~repro.storage.memgraph.csr.CsrSnapshot`.

These replace the row-at-a-time inner loops of the read hot path:

* :func:`batch_scan_atom` — anchor scans that sweep the per-class
  columns of a CSR snapshot.  Current-scope scans walk the uid-sorted
  member columns directly (no set copies, no sort); historical scans run
  the vectorized temporal-visibility filter — two bisects per column
  instead of an ``Interval`` call per version — then pick each element's
  representative with late materialization: records are only touched for
  versions that survived the visibility filter, and predicates only run
  on the newest-first candidates per uid.
* :func:`batch_expand_many` — wave-at-a-time frontier expansion walking
  CSR ``(lo, hi)`` offset ranges per (node, edge class) instead of
  re-resolving adjacency dicts per element.
* :func:`batch_get_many` — batched point reads answering a whole
  frontier of uids with one chain bisect each.

Every operator is a drop-in for its row twin and must return *identical*
results (same records, same order) — the Hypothesis differential in
``tests/plan/test_batch_execution.py`` holds them to that.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Sequence

from repro.model.elements import EdgeRecord, ElementRecord
from repro.storage.base import TimeScope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rpe.ast import Atom
    from repro.storage.memgraph.csr import CsrSnapshot
    from repro.storage.memgraph.store import MemGraphStore


def _window(scope: TimeScope) -> tuple[float, float]:
    window = scope.window()
    return window.start, window.end


def _current_representatives(
    csr: "CsrSnapshot", uids: Sequence[int], atom: "Atom"
) -> list[ElementRecord]:
    """Row-identical representatives for a sorted current-scope uid batch."""
    dense_of = csr.dense_of
    current = csr.current_records
    results: list[ElementRecord] = []
    for uid in uids:
        dense = dense_of.get(uid)
        if dense is None:
            continue
        record = current[dense]
        if record is not None and atom.matches(record):
            results.append(record)
    return results


def _chain_representatives(
    csr: "CsrSnapshot", uids: Sequence[int], atom: "Atom", a: float, b: float
) -> list[ElementRecord]:
    """Representatives for a sorted historical uid batch via chain bisects."""
    dense_of = csr.dense_of
    records = csr.chain_records
    results: list[ElementRecord] = []
    for uid in uids:
        dense = dense_of.get(uid)
        if dense is None:
            continue
        lo, hi = csr.chain_run(dense, a, b)
        for i in range(hi - 1, lo - 1, -1):
            record = records[i]
            if atom.matches(record):
                results.append(record)
                break
    return results


def batch_scan_atom(
    store: "MemGraphStore",
    csr: "CsrSnapshot",
    atom: "Atom",
    class_names: Sequence[str],
    scope: TimeScope,
) -> list[ElementRecord] | None:
    """Columnar ``scan_atom``; ``None`` defers to the row path.

    Fires the same ``index.*`` events as the row path so EXPLAIN ANALYZE
    counters and index-usage tests read identically under the ablation
    switch.  Uid-equality atoms stay on the row path — a single point
    lookup has nothing to batch.
    """
    if atom.equality_value("id") is not None:
        return None

    # Columns are already restricted to the atom's concrete class subtree,
    # so a predicate-free atom matches every record they hold: the batch
    # can skip the per-record ``atom.matches`` call entirely.
    trivial = not atom.predicates

    if scope.is_current:
        candidates = store._indexed_equalities(atom, class_names, scope, temporal=False)
        if candidates is not None:
            store._event("index.field.hit")
            return _current_representatives(csr, sorted(candidates), atom)
        store._event("index.class.hit")
        columns = csr.class_columns
        present = [
            cols
            for cols in (columns.get(name) for name in class_names)
            if cols is not None and cols.current_uids
        ]
        if len(present) == 1:
            # A single member column is already uid-ascending.
            if trivial:
                return list(present[0].current_records)
            return [r for r in present[0].current_records if atom.matches(r)]
        pairs: list[tuple[int, ElementRecord]] = []
        for cols in present:
            pairs.extend(zip(cols.current_uids, cols.current_records))
        pairs.sort(key=lambda pair: pair[0])
        if trivial:
            return [record for _, record in pairs]
        return [record for _, record in pairs if atom.matches(record)]

    a, b = _window(scope)
    candidates = store._indexed_equalities(atom, class_names, scope, temporal=True)
    if candidates is not None:
        store._event("index.temporal.field_hit")
        store._event("index.temporal.candidates", len(candidates))
        return _chain_representatives(csr, sorted(candidates), atom, a, b)

    store._event("index.temporal.class_hit")
    rows: list[tuple[int, float, ElementRecord]] = []
    for name in class_names:
        cols = csr.class_columns.get(name)
        if cols is not None:
            cols.visible_rows(a, b, rows)
    if trivial:
        # Newest visible version per uid, one dict pass — no sort needed
        # (starts never repeat within a chain, so "max start" is exact).
        best: dict[int, tuple[float, ElementRecord]] = {}
        for uid, start, record in rows:
            prev = best.get(uid)
            if prev is None or start > prev[0]:
                best[uid] = (start, record)
        store._event("index.temporal.candidates", len(best))
        return [best[uid][1] for uid in sorted(best)]
    store._event("index.temporal.candidates", len({row[0] for row in rows}))
    # Chains never repeat a start, so (uid, start) orders each element's
    # visible versions chronologically; the representative is the newest
    # version in its group that satisfies the atom.
    rows.sort(key=lambda row: (row[0], row[1]))
    results = []
    i = 0
    n = len(rows)
    while i < n:
        uid = rows[i][0]
        j = i
        while j < n and rows[j][0] == uid:
            j += 1
        for k in range(j - 1, i - 1, -1):
            record = rows[k][2]
            if atom.matches(record):
                results.append(record)
                break
        i = j
    return results


def _segment_ranges(
    segments: dict[str, tuple[int, int]], class_names: Sequence[str] | None
) -> list[tuple[int, int]]:
    if class_names is None:
        return list(segments.values())
    ranges = []
    for name in class_names:
        rng = segments.get(name)
        if rng is not None:
            ranges.append(rng)
    return ranges


def batch_expand_many(
    csr: "CsrSnapshot",
    forward: bool,
    node_uids: Sequence[int],
    scope: TimeScope,
    class_names: Sequence[str] | None,
) -> dict[int, list[EdgeRecord]]:
    """Wave-at-a-time frontier expansion over the adjacency CSR.

    The unfiltered case never touches the segment dicts: a node's whole
    adjacency is one precomputed ``[lo, hi)`` range, and current-scope
    waves slice the materialized edge-record column directly.
    """
    if forward:
        segments = csr.out_segments
        flat = csr.out_edge_dense
        edge_current = csr.out_edge_current
        node_lo, node_hi = csr.out_node_lo, csr.out_node_hi
    else:
        segments = csr.in_segments
        flat = csr.in_edge_dense
        edge_current = csr.in_edge_current
        node_lo, node_hi = csr.in_node_lo, csr.in_node_hi
    dense_get = csr.dense_of.get
    current = scope.is_current
    result: dict[int, list[EdgeRecord]] = {}

    if current and class_names is None:
        for uid in node_uids:
            dense = dense_get(uid)
            result[uid] = (
                []
                if dense is None
                else [
                    r  # type: ignore[misc]
                    for r in edge_current[node_lo[dense] : node_hi[dense]]
                    if r is not None
                ]
            )
        return result

    a, b = (0.0, 0.0) if current else _window(scope)
    chain_offsets = csr.chain_offsets
    chain_starts = csr.chain_starts
    chain_ends = csr.chain_ends
    chain_records = csr.chain_records
    for uid in node_uids:
        records: list[EdgeRecord] = []
        dense = dense_get(uid)
        if dense is not None:
            if class_names is None:
                ranges: Sequence[tuple[int, int]] = ((node_lo[dense], node_hi[dense]),)
            else:
                segs = segments[dense]
                ranges = _segment_ranges(segs, class_names) if segs else ()
            for lo, hi in ranges:
                if current:
                    for i in range(lo, hi):
                        record = edge_current[i]
                        if record is not None:
                            records.append(record)  # type: ignore[arg-type]
                else:
                    for i in range(lo, hi):
                        # latest_visible_dense, inlined for the hot loop
                        d = flat[i]
                        clo = chain_offsets[d]
                        chi = bisect_left(
                            chain_starts, b, clo, chain_offsets[d + 1]
                        )
                        if chi > clo and chain_ends[chi - 1] > a:
                            records.append(chain_records[chi - 1])  # type: ignore[arg-type]
        result[uid] = records
    return result


def batch_get_many(
    csr: "CsrSnapshot", uids: Sequence[int], scope: TimeScope
) -> dict[int, ElementRecord]:
    """Batched ``get_element``: latest visible version per uid."""
    result: dict[int, ElementRecord] = {}
    dense_get = csr.dense_of.get
    if scope.is_current:
        current_records = csr.current_records
        for uid in uids:
            dense = dense_get(uid)
            if dense is not None:
                record = current_records[dense]
                if record is not None:
                    result[uid] = record
        return result
    a, b = _window(scope)
    chain_offsets = csr.chain_offsets
    chain_starts = csr.chain_starts
    chain_ends = csr.chain_ends
    chain_records = csr.chain_records
    for uid in uids:
        dense = dense_get(uid)
        if dense is None:
            continue
        lo = chain_offsets[dense]
        hi = bisect_left(chain_starts, b, lo, chain_offsets[dense + 1])
        if hi > lo and chain_ends[hi - 1] > a:
            result[uid] = chain_records[hi - 1]
    return result
