"""RPE normalization (Section 5.1).

Nepal first transforms an RPE into a normalized form of the four block
types: Atom, Sequence, Alternation, Repetition.  The parser already produces
that shape; normalization here flattens directly nested sequences and
alternations, unwraps singletons, deduplicates identical alternation
branches, and computes element-count bounds used to enforce the
length-limited requirement of §3.3.

Nested repetitions are deliberately *not* collapsed: ``[[r]{3,3}]{1,2}``
admits 3 or 6 copies of ``r`` but not 4 — a single ``{3,6}`` block would be
wrong.
"""

from __future__ import annotations

from repro.rpe.ast import Alternation, Atom, Repetition, RpeNode, Sequence


def normalize(rpe: RpeNode) -> RpeNode:
    """Return the normalized equivalent of *rpe*."""
    if isinstance(rpe, Atom):
        return rpe
    if isinstance(rpe, Sequence):
        parts: list[RpeNode] = []
        for part in rpe.parts:
            normalized = normalize(part)
            if isinstance(normalized, Sequence):
                parts.extend(normalized.parts)
            else:
                parts.append(normalized)
        if len(parts) == 1:
            return parts[0]
        return Sequence(tuple(parts))
    if isinstance(rpe, Alternation):
        alternatives: list[RpeNode] = []
        for alternative in rpe.alternatives:
            normalized = normalize(alternative)
            if isinstance(normalized, Alternation):
                candidates = normalized.alternatives
            else:
                candidates = (normalized,)
            for candidate in candidates:
                if candidate not in alternatives:
                    alternatives.append(candidate)
        if len(alternatives) == 1:
            return alternatives[0]
        return Alternation(tuple(alternatives))
    if isinstance(rpe, Repetition):
        body = normalize(rpe.body)
        if rpe.low == 1 and rpe.high == 1:
            return body
        return Repetition(body, rpe.low, rpe.high)
    raise TypeError(f"not an RPE node: {rpe!r}")


def length_bounds(rpe: RpeNode) -> tuple[int, int]:
    """(min, max) number of elements a match of *rpe* can consume.

    The maximum accounts for the optional one-element glue at every
    concatenation seam (the four-way split rule of §3.3).  Both bounds are
    always finite because repetition bounds are finite by construction; the
    planner still asserts this before traversal.
    """
    if isinstance(rpe, Atom):
        return (1, 1)
    if isinstance(rpe, Sequence):
        bounds = [length_bounds(part) for part in rpe.parts]
        low = sum(b[0] for b in bounds)
        high = sum(b[1] for b in bounds) + (len(bounds) - 1)
        return (low, high)
    if isinstance(rpe, Alternation):
        bounds = [length_bounds(alt) for alt in rpe.alternatives]
        return (min(b[0] for b in bounds), max(b[1] for b in bounds))
    if isinstance(rpe, Repetition):
        body_low, body_high = length_bounds(rpe.body)
        low = rpe.low * body_low
        high = rpe.high * body_high + max(0, rpe.high - 1)
        return (low, high)
    raise TypeError(f"not an RPE node: {rpe!r}")


def admits_empty(rpe: RpeNode) -> bool:
    """True when the empty pathway satisfies *rpe* (a malformed query, §3.3)."""
    return length_bounds(rpe)[0] == 0
