"""NFA construction for RPE matching (the automaton of Section 5.1).

The paper converts a normalized RPE "into a collection of database operators
with a conversion technique based on implementing a nondeterministic finite
automaton".  This module builds that automaton.  The alphabet is pathway
*elements* (node and edge versions); transition labels are:

* ``AtomLabel`` — consume one element satisfying an atom;
* ``ANY`` — consume any single element: the optional glue at a concatenation
  seam, implementing the four-way split rule of §3.3 (between two matched
  segments, at most one unconstrained element may be skipped);
* ``ANY_NODE`` — consume any single *node*: the implicit endpoint nodes of
  edge atoms ("e1 is shorthand for n, e1, n'"), applied as optional padding
  at the start and end of a whole-pathway match.

Because repetition bounds are finite the automaton is acyclic, so traversal
over the graph always terminates.  The same NFA drives three consumers: the
reference matcher over explicit pathways, forward graph extension from an
anchor, and (built from the reversed RPE) backward extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.model.elements import ElementRecord, NodeRecord
from repro.rpe.ast import Alternation, Atom, Repetition, RpeNode, Sequence

ANY = "ANY"
ANY_NODE = "ANY_NODE"
ANY_EDGE = "ANY_EDGE"
PAD_NODE = "PAD_NODE"


@dataclass(frozen=True)
class AtomLabel:
    """A transition that consumes one element satisfying *atom*."""

    atom: Atom

    def admits(self, element: ElementRecord) -> bool:
        return self.atom.matches(element)


Label = AtomLabel | str  # AtomLabel, ANY, ANY_NODE or ANY_EDGE


def reverse_rpe(rpe: RpeNode) -> RpeNode:
    """The mirror image of an RPE (matches exactly the reversed sequences)."""
    if isinstance(rpe, Atom):
        return rpe
    if isinstance(rpe, Sequence):
        return Sequence(tuple(reverse_rpe(part) for part in reversed(rpe.parts)))
    if isinstance(rpe, Alternation):
        return Alternation(tuple(reverse_rpe(alt) for alt in rpe.alternatives))
    if isinstance(rpe, Repetition):
        return Repetition(reverse_rpe(rpe.body), rpe.low, rpe.high)
    raise TypeError(f"not an RPE node: {rpe!r}")


class _Builder:
    """Allocates states and records transitions during construction."""

    def __init__(self) -> None:
        self.transitions: dict[int, list[tuple[Label, int]]] = {}
        self.epsilon: dict[int, list[int]] = {}
        self.pending_glues: list[tuple[int, int]] = []
        self._next_state = 0

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def add(self, source: int, label: Label, target: int) -> None:
        self.transitions.setdefault(source, []).append((label, target))

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon.setdefault(source, []).append(target)

    def glue(self, source: int, target: int) -> None:
        """Concatenation seam: continue directly, or skip one element.

        The four-way split rule of §3.3 only permits *same-kind* skips — a
        node is skipped between two edge-matching segments and an edge
        between two node-matching segments — so the skip is recorded as
        provisional and specialized by :meth:`resolve_glues` to the kind
        opposite to whatever the following fragment consumes first.  This
        is semantically exact (a general wildcard would die one step later
        anyway) and it lets the executor keep pruning expansion by edge
        class across concatenation seams.
        """
        self.add_epsilon(source, target)
        self.pending_glues.append((source, target))

    def resolve_glues(self) -> None:
        """Replace provisional glues with kind-specialized skip transitions.

        Must run *before* endpoint padding is added: the skipped element
        sits strictly between the two concatenated segment matches, so only
        real atom consumption (or a later glue's skip, for empty-matching
        ``{0,m}`` blocks that collapse the seam) may follow it.  A fixpoint
        iteration handles chains of glues across empty-matching fragments.
        """
        glue_kinds: dict[int, set[str]] = {
            index: {"node", "edge"} for index in range(len(self.pending_glues))
        }
        glues_at_source: dict[int, list[int]] = {}
        for index, (source, _) in enumerate(self.pending_glues):
            glues_at_source.setdefault(source, []).append(index)

        def consumable_from(state: int, kinds: dict[int, set[str]]) -> set[str]:
            result: set[str] = set()
            seen = {state}
            stack = [state]
            while stack:
                current = stack.pop()
                for label, _ in self.transitions.get(current, ()):
                    if isinstance(label, AtomLabel):
                        result.add("node" if label.atom.is_node_atom else "edge")
                    elif label == ANY:
                        result.update(("node", "edge"))
                    elif label == ANY_NODE:
                        result.add("node")
                    elif label == ANY_EDGE:
                        result.add("edge")
                for glue_index in glues_at_source.get(current, ()):
                    result |= kinds[glue_index]
                for nxt in self.epsilon.get(current, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return result

        changed = True
        while changed:
            changed = False
            for index, (_, target) in enumerate(self.pending_glues):
                following = consumable_from(target, glue_kinds)
                # A skip of kind K is useful only when the next consumed
                # element — necessarily of the opposite kind — is possible.
                allowed = set()
                if "edge" in following:
                    allowed.add("node")
                if "node" in following:
                    allowed.add("edge")
                if allowed != glue_kinds[index]:
                    glue_kinds[index] = allowed
                    changed = True

        for index, (source, target) in enumerate(self.pending_glues):
            allowed = glue_kinds[index]
            if allowed == {"node", "edge"}:
                self.add(source, ANY, target)
            elif allowed == {"node"}:
                self.add(source, ANY_NODE, target)
            elif allowed == {"edge"}:
                self.add(source, ANY_EDGE, target)
            # Empty: the seam collapses, the epsilon alone suffices.
        self.pending_glues.clear()

    def fragment(self, rpe: RpeNode) -> tuple[int, int]:
        """Build a fragment for *rpe*; returns (start, accept) states."""
        if isinstance(rpe, Atom):
            start, accept = self.new_state(), self.new_state()
            self.add(start, AtomLabel(rpe), accept)
            return start, accept
        if isinstance(rpe, Sequence):
            start, accept = self.fragment(rpe.parts[0])
            for part in rpe.parts[1:]:
                part_start, part_accept = self.fragment(part)
                self.glue(accept, part_start)
                accept = part_accept
            return start, accept
        if isinstance(rpe, Alternation):
            start, accept = self.new_state(), self.new_state()
            for alternative in rpe.alternatives:
                alt_start, alt_accept = self.fragment(alternative)
                self.add_epsilon(start, alt_start)
                self.add_epsilon(alt_accept, accept)
            return start, accept
        if isinstance(rpe, Repetition):
            start = self.new_state()
            accept = self.new_state()
            if rpe.low == 0:
                self.add_epsilon(start, accept)
            current = start
            for copy_index in range(rpe.high):
                body_start, body_accept = self.fragment(rpe.body)
                if copy_index == 0:
                    self.add_epsilon(current, body_start)
                else:
                    self.glue(current, body_start)
                current = body_accept
                if copy_index + 1 >= rpe.low:
                    self.add_epsilon(current, accept)
            return start, accept
        raise TypeError(f"not an RPE node: {rpe!r}")


class PathwayNfa:
    """An executable NFA over pathway elements."""

    def __init__(
        self,
        transitions: dict[int, list[tuple[Label, int]]],
        epsilon: dict[int, list[int]],
        start: int,
        accept: int,
    ):
        self._transitions = transitions
        self._epsilon = epsilon
        self._start = start
        self._accept = accept
        self._closure_cache: dict[int, frozenset[int]] = {}

    # -- kind refinement ----------------------------------------------------

    def kind_refined(
        self, start_kind: str | None = None, start_consumer: str = "none"
    ) -> "PathwayNfa":
        """An equivalent automaton with kind- and consumer-aware states.

        Two facts about §3.3's satisfaction rules cannot be expressed by
        plain transitions:

        * pathways alternate nodes and edges, so from a state whose last
          consumed element was an edge, only node consumption can fire;
        * every fragment match begins and ends with an *atom* consumption —
          a glue skip must sit between two atom consumptions, an endpoint
          pad must sit at the pathway boundary next to an edge-atom match,
          and acceptance never directly follows a skip.

        Splitting states by ``(last kind, last consumer)`` enforces both,
        then pruning states that cannot reach acceptance removes every dead
        arc.  The result accepts exactly the matching element sequences,
        exposes linear operator chains (enabling the ExtendBlock fusion of
        §5.2) and keeps live state sets small during traversal.

        For affix automata the planner passes the anchor's kind as
        ``start_kind`` and ``start_consumer="atom"`` (the anchor is an atom
        match the affix continues from); whole-pathway matchers start with
        ``(None, "none")``.
        """
        mapping: dict[tuple[int, str | None, str], int] = {}

        def sid(state: int, kind: str | None, consumer: str) -> int:
            key = (state, kind, consumer)
            if key not in mapping:
                mapping[key] = len(mapping)
            return mapping[key]

        transitions: dict[int, list[tuple[Label, int]]] = {}
        epsilon: dict[int, list[int]] = {}
        initial = (self._start, start_kind, start_consumer)
        start = sid(*initial)
        queue = [initial]
        seen = {initial}
        while queue:
            state, kind, consumer = queue.pop()
            source = sid(state, kind, consumer)
            for target in self._epsilon.get(state, ()):
                key = (target, kind, consumer)
                epsilon.setdefault(source, []).append(sid(*key))
                if key not in seen:
                    seen.add(key)
                    queue.append(key)
            allowed = {"node", "edge"} if kind is None else (
                {"edge"} if kind == "node" else {"node"}
            )
            for label, target in self._transitions.get(state, ()):
                if isinstance(label, AtomLabel):
                    label_kinds = {"node"} if label.atom.is_node_atom else {"edge"}
                    next_consumer = "atom"
                elif label == PAD_NODE:
                    # Leading pad before anything, or trailing pad right
                    # after an edge-atom match ("implicit endpoint nodes").
                    if not (
                        consumer == "none"
                        or (consumer == "atom" and kind == "edge")
                    ):
                        continue
                    label_kinds = {"node"}
                    next_consumer = "pad"
                else:
                    # A glue skip: strictly between two atom consumptions.
                    if consumer != "atom":
                        continue
                    if label == ANY_NODE:
                        label_kinds = {"node"}
                    elif label == ANY_EDGE:
                        label_kinds = {"edge"}
                    else:
                        label_kinds = {"node", "edge"}
                    next_consumer = "skip"
                for consumed in label_kinds & allowed:
                    if isinstance(label, AtomLabel):
                        refined_label: Label = label
                    elif label == PAD_NODE:
                        refined_label = PAD_NODE
                    else:
                        refined_label = ANY_NODE if consumed == "node" else ANY_EDGE
                    key = (target, consumed, next_consumer)
                    transitions.setdefault(source, []).append(
                        (refined_label, sid(*key))
                    )
                    if key not in seen:
                        seen.add(key)
                        queue.append(key)

        final = len(mapping)
        for (state, _kind, consumer), refined in list(mapping.items()):
            # A match ends with an atom or a pad, never with a bare skip.
            if state == self._accept and consumer != "skip":
                epsilon.setdefault(refined, []).append(final)

        return _prune_dead_states(transitions, epsilon, start, final)

    # -- structure (read-only, used by plan lowering and explain) ----------

    @property
    def transitions(self) -> dict[int, list[tuple[Label, int]]]:
        return self._transitions

    @property
    def epsilon_transitions(self) -> dict[int, list[int]]:
        return self._epsilon

    @property
    def start_state(self) -> int:
        return self._start

    @property
    def accept_state(self) -> int:
        return self._accept

    def states(self) -> list[int]:
        """All states in a deterministic order."""
        found = {self._start, self._accept}
        for source, arcs in self._transitions.items():
            found.add(source)
            found.update(target for _, target in arcs)
        for source, targets in self._epsilon.items():
            found.add(source)
            found.update(targets)
        return sorted(found)

    def topological_states(self) -> list[int]:
        """States ordered so every arc goes forward (the NFA is acyclic)."""
        order: list[int] = []
        visited: set[int] = set()

        def visit(state: int, trail: frozenset[int]) -> None:
            if state in visited:
                return
            if state in trail:  # pragma: no cover - bounded RPEs are acyclic
                raise ValueError("cycle in pathway automaton")
            successors = [target for _, target in self._transitions.get(state, ())]
            successors.extend(self._epsilon.get(state, ()))
            for successor in successors:
                visit(successor, trail | {state})
            visited.add(state)
            order.append(state)

        for state in self.states():
            visit(state, frozenset())
        order.reverse()
        return order

    # -- state-set machinery ----------------------------------------------

    def _closure_of(self, state: int) -> frozenset[int]:
        cached = self._closure_cache.get(state)
        if cached is not None:
            return cached
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for nxt in self._epsilon.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        result = frozenset(seen)
        self._closure_cache[state] = result
        return result

    def closure(self, states: Iterable[int]) -> frozenset[int]:
        result: set[int] = set()
        for state in states:
            result |= self._closure_of(state)
        return frozenset(result)

    def initial_states(self) -> frozenset[int]:
        return self._closure_of(self._start)

    def step(self, states: frozenset[int], element: ElementRecord) -> frozenset[int]:
        """Consume *element* from every state in *states*."""
        is_node = isinstance(element, NodeRecord)
        reached: set[int] = set()
        for state in states:
            for label, target in self._transitions.get(state, ()):
                if label == ANY:
                    reached.add(target)
                elif label in (ANY_NODE, PAD_NODE):
                    if is_node:
                        reached.add(target)
                elif label == ANY_EDGE:
                    if not is_node:
                        reached.add(target)
                elif isinstance(label, AtomLabel) and label.admits(element):
                    reached.add(target)
        return self.closure(reached)

    def is_accepting(self, states: frozenset[int]) -> bool:
        return self._accept in states

    def is_dead(self, states: frozenset[int]) -> bool:
        """No transitions can ever leave this state set."""
        return all(not self._transitions.get(state) for state in states)

    # -- interval-weighted execution (exact time-range validity, §4) -------

    def interval_initial(self, always: "object") -> dict[int, object]:
        """Initial state→IntervalSet map for :meth:`interval_step`."""
        return {state: always for state in self.initial_states()}

    def interval_step(
        self,
        state_intervals: dict[int, object],
        versions: list[tuple[ElementRecord, object]],
    ) -> dict[int, object]:
        """Advance an interval-weighted run by one pathway element.

        *versions* lists every stored version of the element together with
        the interval set during which that version was asserted.  A target
        state accumulates the union over (state, transition, version)
        triples of ``intervals(state) ∩ intervals(version)``, so predicates
        that only held during part of the window clip the result — this is
        how a field change invalidates a pathway in the paper's time-range
        example.  Epsilon closure then propagates the accumulated sets.
        """
        reached: dict[int, object] = {}
        for state, intervals in state_intervals.items():
            for label, target in self._transitions.get(state, ()):
                for version, version_intervals in versions:
                    if label == ANY:
                        admitted = True
                    elif label in (ANY_NODE, PAD_NODE):
                        admitted = isinstance(version, NodeRecord)
                    elif label == ANY_EDGE:
                        admitted = not isinstance(version, NodeRecord)
                    else:
                        assert isinstance(label, AtomLabel)
                        admitted = label.admits(version)
                    if not admitted:
                        continue
                    overlap = intervals.intersect(version_intervals)  # type: ignore[attr-defined]
                    if overlap.is_empty():
                        continue
                    if target in reached:
                        reached[target] = reached[target].union(overlap)  # type: ignore[attr-defined]
                    else:
                        reached[target] = overlap
        # Propagate through epsilon closure.
        closed: dict[int, object] = {}
        for state, intervals in reached.items():
            for member in self._closure_of(state):
                if member in closed:
                    closed[member] = closed[member].union(intervals)  # type: ignore[attr-defined]
                else:
                    closed[member] = intervals
        return closed

    def accepting_intervals(self, state_intervals: dict[int, object]) -> object | None:
        return state_intervals.get(self._accept)

    # -- planner support -----------------------------------------------------

    def outgoing_labels(self, states: frozenset[int]) -> list[Label]:
        """All labels leaving *states* — used for traversal pruning.

        When every outgoing label is an edge atom, the executor restricts
        graph expansion to the named edge-class subtrees; this is the
        model-driven pruning that the per-class partitioning of §6 rewards.
        """
        labels: list[Label] = []
        for state in states:
            labels.extend(label for label, _ in self._transitions.get(state, ()))
        return labels

    def edge_class_filter(self, states: frozenset[int]) -> tuple | None:
        """Edge classes admissible as the next consumed *edge*, or ``None``.

        Used when expanding a pathway from a node, where the next element is
        necessarily an edge: node-consuming labels cannot fire and are
        ignored, edge atoms contribute their class subtrees, and an
        unconstrained edge wildcard disables pruning (``None``).  An empty
        tuple means no edge can be consumed at all.
        """
        classes = []
        for label in self.outgoing_labels(states):
            if label in (ANY, ANY_EDGE):
                return None
            if label in (ANY_NODE, PAD_NODE):
                continue
            assert isinstance(label, AtomLabel)
            if label.atom.is_node_atom:
                continue
            classes.append(label.atom.cls)
        return tuple(classes)


def _prune_dead_states(
    transitions: dict[int, list[tuple[Label, int]]],
    epsilon: dict[int, list[int]],
    start: int,
    accept: int,
) -> PathwayNfa:
    """Drop states that cannot reach acceptance (and their arcs)."""
    reverse: dict[int, set[int]] = {}
    for source, arcs in transitions.items():
        for _, target in arcs:
            reverse.setdefault(target, set()).add(source)
    for source, targets in epsilon.items():
        for target in targets:
            reverse.setdefault(target, set()).add(source)
    live = {accept}
    stack = [accept]
    while stack:
        current = stack.pop()
        for predecessor in reverse.get(current, ()):
            if predecessor not in live:
                live.add(predecessor)
                stack.append(predecessor)
    live.add(start)  # keep the start even when the language is empty
    pruned_transitions = {
        source: [(label, target) for label, target in arcs if target in live]
        for source, arcs in transitions.items()
        if source in live
    }
    pruned_transitions = {s: arcs for s, arcs in pruned_transitions.items() if arcs}
    pruned_epsilon = {
        source: [target for target in targets if target in live]
        for source, targets in epsilon.items()
        if source in live
    }
    pruned_epsilon = {s: targets for s, targets in pruned_epsilon.items() if targets}
    return PathwayNfa(pruned_transitions, pruned_epsilon, start, accept)


def build_nfa(
    rpe: RpeNode | None,
    leading: str = "pad",
    trailing: str = "pad",
) -> PathwayNfa:
    """Build an executable NFA.

    *leading* controls what precedes the expression:

    * ``"pad"`` — an optional implicit endpoint node (whole-pathway matching,
      where an RPE that begins with an edge atom still matches a pathway
      that begins with a node);
    * ``"glue"`` — the concatenation seam used when the automaton continues
      a pathway from an anchor element (the anchor→affix seam of §3.3's
      four-way split rule);
    * ``"none"`` — nothing (the anchor sits at the very start of the RPE).

    *trailing* is ``"pad"`` or ``"none"`` with the same meanings at the end.

    ``rpe=None`` builds the empty expression: it accepts zero elements, with
    the requested padding still applied — the automaton used when an anchor
    sits at the very start or end of the RPE.
    """
    builder = _Builder()
    if rpe is None:
        core_start = builder.new_state()
        core_accept = core_start
    else:
        core_start, core_accept = builder.fragment(rpe)

    if leading not in ("glue", "pad", "none"):
        raise ValueError(f"unknown leading mode {leading!r}")
    if trailing not in ("pad", "none"):
        raise ValueError(f"unknown trailing mode {trailing!r}")

    start = builder.new_state()
    accept = builder.new_state()
    builder.add_epsilon(start, core_start)
    builder.add_epsilon(core_accept, accept)
    if leading == "glue":
        builder.pending_glues.append((start, core_start))

    # Glue skips must be specialized before padding exists: the skipped
    # element sits between real segment matches, never next to a pad.
    builder.resolve_glues()

    if leading == "pad":
        builder.add(start, PAD_NODE, core_start)
    if trailing == "pad":
        builder.add(core_accept, PAD_NODE, accept)

    return PathwayNfa(builder.transitions, builder.epsilon, start, accept)
