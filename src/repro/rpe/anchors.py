"""Anchor enumeration, costing and RPE splitting (Section 5.1).

An *anchor* is an atom expected to have few satisfying records — evaluation
starts there and extends outwards, which is what makes anchored RPEs cheap
on large graphs.  The rules implemented verbatim from the paper:

* **Atom**: the atom itself is a candidate anchor.
* **Sequence**: candidates from every part.
* **Alternation**: an anchor must *split* the RPE, so it needs one atom per
  branch; to avoid the cross-product blowup the implementation costs each
  branch independently and unions each branch's best anchor.
* **Repetition** ``[r]{n,m}`` with ``n >= 1``: rewrite as
  ``Sequence(r, [r]{n-1,m-1})`` and anchor in the first copy.  ``{0,m}``
  blocks cannot be anchored (the empty pathway satisfies them).

Each chosen anchor atom comes with the *split* of the RPE around it — the
prefix to evaluate backwards and the suffix to evaluate forwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.rpe.ast import (
    Alternation,
    Atom,
    Repetition,
    RpeNode,
    Sequence,
    sequence_of,
)

#: Maps an atom to its estimated cardinality (see repro.stats.cardinality).
CostFunction = Callable[[Atom], float]


@dataclass(frozen=True)
class Split:
    """One anchor atom with the RPE parts on either side of it."""

    anchor: Atom
    prefix: RpeNode | None
    suffix: RpeNode | None

    def render(self) -> str:
        prefix = self.prefix.render() if self.prefix else "ε"
        suffix = self.suffix.render() if self.suffix else "ε"
        return f"{prefix} <|{self.anchor.render()}|> {suffix}"


@dataclass(frozen=True)
class AnchorPlan:
    """A complete anchor: one split per alternation branch it must cover."""

    splits: tuple[Split, ...]
    cost: float

    def render(self) -> str:
        return f"cost={self.cost:g}: " + " ∪ ".join(s.anchor.render() for s in self.splits)


def enumerate_anchor_plans(rpe: RpeNode, cost: CostFunction) -> list[AnchorPlan]:
    """All candidate anchor plans for *rpe*, each with its estimated cost.

    Returns an empty list when the RPE cannot be anchored (only optional
    blocks); the planner turns that into :class:`UnanchoredQueryError`.
    """
    if isinstance(rpe, Atom):
        return [AnchorPlan((Split(rpe, None, None),), cost(rpe))]

    if isinstance(rpe, Sequence):
        plans: list[AnchorPlan] = []
        for index, part in enumerate(rpe.parts):
            before = list(rpe.parts[:index])
            after = list(rpe.parts[index + 1:])
            for inner in enumerate_anchor_plans(part, cost):
                wrapped = tuple(
                    Split(
                        split.anchor,
                        sequence_of(before + ([split.prefix] if split.prefix else [])),
                        sequence_of(([split.suffix] if split.suffix else []) + after),
                    )
                    for split in inner.splits
                )
                plans.append(AnchorPlan(wrapped, inner.cost))
        return plans

    if isinstance(rpe, Alternation):
        branch_best: list[AnchorPlan] = []
        for alternative in rpe.alternatives:
            candidates = enumerate_anchor_plans(alternative, cost)
            if not candidates:
                # One unanchorable branch sinks the whole alternation: an
                # anchor set must split *every* way the RPE can match.
                return []
            branch_best.append(min(candidates, key=lambda plan: plan.cost))
        splits = tuple(split for plan in branch_best for split in plan.splits)
        return [AnchorPlan(splits, sum(plan.cost for plan in branch_best))]

    if isinstance(rpe, Repetition):
        if rpe.low == 0:
            return []
        tail: RpeNode | None = None
        if rpe.high - 1 >= 1:
            tail = Repetition(rpe.body, rpe.low - 1, rpe.high - 1)
        plans = []
        for inner in enumerate_anchor_plans(rpe.body, cost):
            wrapped = tuple(
                Split(
                    split.anchor,
                    split.prefix,
                    sequence_of(
                        ([split.suffix] if split.suffix else [])
                        + ([tail] if tail is not None else [])
                    ),
                )
                for split in inner.splits
            )
            plans.append(AnchorPlan(wrapped, inner.cost))
        return plans

    raise TypeError(f"not an RPE node: {rpe!r}")


def select_anchor_plan(rpe: RpeNode, cost: CostFunction) -> AnchorPlan | None:
    """The lowest-cost anchor plan, or ``None`` when the RPE is unanchored."""
    plans = enumerate_anchor_plans(rpe, cost)
    if not plans:
        return None
    return min(plans, key=lambda plan: plan.cost)
