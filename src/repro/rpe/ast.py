"""RPE abstract syntax (Section 3.3 / normalized blocks of Section 5.1).

The normalized form has four block types:

* :class:`Atom` — a node or edge predicate, e.g. ``VM(status='Green')``;
* :class:`Sequence` — concatenation ``(R1)->(R2)->...->(Rn)``;
* :class:`Alternation` — disjunction ``(R1)|...|(Rn)``;
* :class:`Repetition` — ``[R]{i,j}`` with finite bounds.

Atoms are created *unbound* (class referenced by name) by the parser and
bound against a schema by :meth:`RpeNode.bind`, which resolves the class,
checks that predicate fields exist (atoms are strongly typed), and records
whether the atom is a node or an edge atom.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator

from repro.errors import TypeCheckError
from repro.model.elements import ElementRecord
from repro.schema.classes import EdgeClass, ElementClass, NodeClass
from repro.schema.registry import Schema

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class FieldPredicate:
    """A single comparison inside an atom, e.g. ``status='Green'``.

    The field name may be a dotted path into structured data, e.g.
    ``routing_table.address='10.1.2.0'`` on a Router whose routing table is
    a ``list[routingTableEntry]``.  Traversal is *existential*: stepping
    through a list or set tries every entry, stepping through a map tries
    the named key, and the predicate holds when any reached leaf satisfies
    the comparison — the natural reading of "the router has a route to X".
    (Query access to structured data is listed as still under development
    in §5 of the paper; this implements it.)
    """

    name: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise TypeCheckError(f"unsupported predicate operator {self.op!r}")

    @property
    def path(self) -> tuple[str, ...]:
        return tuple(self.name.split("."))

    def evaluate(self, record: ElementRecord) -> bool:
        """Apply the comparison to a record; absent fields never match."""
        segments = self.path
        leaves = _walk_path(record.get(segments[0]), segments[1:])
        compare = _OPERATORS[self.op]
        for leaf in leaves:
            if leaf is None:
                continue
            try:
                if compare(leaf, self.value):
                    return True
            except TypeError:
                continue
        return False

    def render(self) -> str:
        value = f"'{self.value}'" if isinstance(self.value, str) else repr(self.value)
        return f"{self.name}{self.op}{value}"


def _check_structured_path(
    field_type: Any, segments: tuple[str, ...], class_name: str
) -> None:
    """Validate a dotted predicate path against the schema's data types.

    Containers are stepped through implicitly (a path into a
    ``list[routingTableEntry]`` names the entry's fields directly); map
    entry types are descended without a key check (keys are data).
    """
    from repro.schema.datatypes import CompositeType, ContainerType

    current = field_type
    for segment in segments[1:]:
        while isinstance(current, ContainerType):
            current = current.entry_type
        if isinstance(current, CompositeType):
            if segment not in current.fields:
                raise TypeCheckError(
                    f"atom {class_name}(...): data type {current.name!r} has no "
                    f"field {segment!r} (known: {sorted(current.fields)})"
                )
            current = current.fields[segment].type
        else:
            raise TypeCheckError(
                f"atom {class_name}(...): cannot descend into primitive type "
                f"{current.name!r} with {segment!r}"
            )


def _walk_path(value: Any, segments: tuple[str, ...]) -> Iterator[Any]:
    """Yield every leaf reachable by *segments* from *value*."""
    if value is None:
        return
    if isinstance(value, (list, tuple, set)):
        for entry in value:
            yield from _walk_path(entry, segments)
        return
    if not segments:
        yield value
        return
    if isinstance(value, dict):
        yield from _walk_path(value.get(segments[0]), segments[1:])


class RpeNode:
    """Base class for RPE syntax nodes."""

    def bind(self, schema: Schema) -> "RpeNode":
        """Resolve class names and typecheck predicates against *schema*."""
        raise NotImplementedError

    def atoms(self) -> Iterator["Atom"]:
        """All atom occurrences, left to right."""
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Atom(RpeNode):
    """A node or edge predicate.

    The class name refers to a strongly typed concept: the atom is satisfied
    by every record whose class is the named class or a transitive subclass,
    provided all field predicates hold.
    """

    class_name: str
    predicates: tuple[FieldPredicate, ...] = ()
    cls: ElementClass | None = field(default=None, compare=False)

    @property
    def bound(self) -> bool:
        return self.cls is not None

    @property
    def is_node_atom(self) -> bool:
        self._require_bound()
        return isinstance(self.cls, NodeClass)

    @property
    def is_edge_atom(self) -> bool:
        self._require_bound()
        return isinstance(self.cls, EdgeClass)

    def _require_bound(self) -> None:
        if self.cls is None:
            raise TypeCheckError(f"atom {self.class_name}() has not been bound to a schema")

    def bind(self, schema: Schema) -> "Atom":
        cls = schema.resolve(self.class_name)
        for predicate in self.predicates:
            if predicate.name == "id":
                continue
            segments = predicate.path
            if not cls.has_field(segments[0]):
                raise TypeCheckError(
                    f"atom {self.class_name}(...) references unknown field "
                    f"{segments[0]!r}; fields of {cls.path}: {sorted(cls.fields)}"
                )
            _check_structured_path(cls.field(segments[0]).type, segments, self.class_name)
        return replace(self, cls=cls)

    def matches(self, record: ElementRecord) -> bool:
        """The subclassing-aware satisfaction test of §3.3."""
        self._require_bound()
        if record.is_node != isinstance(self.cls, NodeClass):
            return False
        if not record.instance_of(self.cls):
            return False
        return all(predicate.evaluate(record) for predicate in self.predicates)

    def equality_value(self, field_name: str) -> Any | None:
        """The value of an ``field = literal`` predicate, if present."""
        for predicate in self.predicates:
            if predicate.name == field_name and predicate.op == "=":
                return predicate.value
        return None

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def render(self) -> str:
        inner = ", ".join(p.render() for p in self.predicates)
        return f"{self.class_name}({inner})"


@dataclass(frozen=True)
class Sequence(RpeNode):
    """Concatenation ``r1->r2->...->rn``."""

    parts: tuple[RpeNode, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise TypeCheckError("a sequence needs at least one part")

    def bind(self, schema: Schema) -> "Sequence":
        return Sequence(tuple(part.bind(schema) for part in self.parts))

    def atoms(self) -> Iterator[Atom]:
        for part in self.parts:
            yield from part.atoms()

    def render(self) -> str:
        return "->".join(
            f"({part.render()})" if isinstance(part, Alternation) else part.render()
            for part in self.parts
        )


@dataclass(frozen=True)
class Alternation(RpeNode):
    """Disjunction ``(r1|r2|...|rn)``."""

    alternatives: tuple[RpeNode, ...]

    def __post_init__(self) -> None:
        if len(self.alternatives) < 1:
            raise TypeCheckError("an alternation needs at least one alternative")

    def bind(self, schema: Schema) -> "Alternation":
        return Alternation(tuple(alt.bind(schema) for alt in self.alternatives))

    def atoms(self) -> Iterator[Atom]:
        for alternative in self.alternatives:
            yield from alternative.atoms()

    def render(self) -> str:
        return "(" + "|".join(alt.render() for alt in self.alternatives) + ")"


@dataclass(frozen=True)
class Repetition(RpeNode):
    """Bounded repetition ``[r]{low,high}`` (both bounds inclusive)."""

    body: RpeNode
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise TypeCheckError(
                f"invalid repetition bounds {{{self.low},{self.high}}}"
            )
        if self.high == 0:
            raise TypeCheckError("repetition upper bound must be at least 1")

    def bind(self, schema: Schema) -> "Repetition":
        return Repetition(self.body.bind(schema), self.low, self.high)

    def atoms(self) -> Iterator[Atom]:
        yield from self.body.atoms()

    def render(self) -> str:
        return f"[{self.body.render()}]{{{self.low},{self.high}}}"


def sequence_of(parts: list[RpeNode]) -> RpeNode | None:
    """Build a Sequence, unwrapping singletons; ``None`` for an empty list."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return Sequence(tuple(parts))
