"""Reference matcher: does an explicit pathway satisfy an RPE?

This is the executable form of the satisfaction definition in §3.3 and the
oracle against which the planner/executor is property-tested: enumerating
all pathways of a small graph and filtering with this matcher must agree
with the anchored traversal engine.

It is also used at runtime by the executor to re-verify pathways shipped in
from another backend during federated joins.
"""

from __future__ import annotations

from repro.errors import TypeCheckError
from repro.model.pathway import Pathway
from repro.rpe.ast import RpeNode
from repro.rpe.nfa import PathwayNfa, build_nfa


def compile_matcher(rpe: RpeNode) -> PathwayNfa:
    """Compile a bound RPE into a whole-pathway acceptance automaton."""
    for atom in rpe.atoms():
        if not atom.bound:
            raise TypeCheckError(
                f"cannot match with unbound atom {atom.class_name}(); bind the RPE first"
            )
    return build_nfa(rpe, leading="pad", trailing="pad").kind_refined()


def matches_pathway(rpe: RpeNode | PathwayNfa, pathway: Pathway) -> bool:
    """True when *pathway* (all of it) satisfies *rpe*.

    Accepts either a bound RPE (compiled on the fly) or a pre-compiled
    automaton from :func:`compile_matcher` for repeated use.
    """
    nfa = rpe if isinstance(rpe, PathwayNfa) else compile_matcher(rpe)
    states = nfa.initial_states()
    for element in pathway.elements:
        states = nfa.step(states, element)
        if not states:
            return False
    return nfa.is_accepting(states)
