"""Text parser for regular pathway expressions.

Accepts the syntax of the paper's examples, including its notational
variants::

    VNF()->VFC()->VM()->Host(id=23245)
    VNF()->[Vertical()]{1,6}->Host(id=23245)
    VNF(id=55)->(VM(id=55)|Docker(id=66))->HostedOn(){1,2}->Host()
    Host(name='src')->[Connects()]{1,6}->Host(name='tgt')

Repetition bounds may follow a bracketed group (``[r]{i,j}``) or an atom
directly (``Vertical(){1,6}``); ``{n}`` abbreviates ``{n,n}``.  Alternation
binds loosest, then concatenation, then repetition.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.rpe.ast import (
    Alternation,
    Atom,
    FieldPredicate,
    Repetition,
    RpeNode,
    Sequence,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*(?::[A-Za-z_][A-Za-z_0-9]*)*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[()\[\]{},|.])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split RPE text into tokens, raising :class:`ParseError` on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", position=position, text=text)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, text: str, tokens: list[Token]):
        self.text = text
        self.tokens = tokens
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression", len(self.text), self.text)
        self.index += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.advance()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value or kind
            raise ParseError(
                f"expected {wanted!r}, got {token.value!r}", token.position, self.text
            )
        return token

    def at_punct(self, value: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == "punct" and token.value == value

    def eat_punct(self, value: str) -> bool:
        if self.at_punct(value):
            self.index += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------

    def parse(self) -> RpeNode:
        node = self.alternation()
        trailing = self.peek()
        if trailing is not None:
            raise ParseError(
                f"trailing input {trailing.value!r}", trailing.position, self.text
            )
        return node

    def alternation(self) -> RpeNode:
        alternatives = [self.concatenation()]
        while self.eat_punct("|"):
            alternatives.append(self.concatenation())
        if len(alternatives) == 1:
            return alternatives[0]
        return Alternation(tuple(alternatives))

    def concatenation(self) -> RpeNode:
        parts = [self.repeated()]
        while True:
            token = self.peek()
            if token is not None and token.kind == "arrow":
                self.index += 1
                parts.append(self.repeated())
            else:
                break
        if len(parts) == 1:
            return parts[0]
        return Sequence(tuple(parts))

    def repeated(self) -> RpeNode:
        node = self.primary()
        while self.at_punct("{"):
            node = self._repetition_bounds(node)
        return node

    def _repetition_bounds(self, body: RpeNode) -> Repetition:
        self.expect("punct", "{")
        low_token = self.expect("number")
        low = self._int(low_token)
        if self.eat_punct(","):
            high = self._int(self.expect("number"))
        else:
            high = low
        self.expect("punct", "}")
        return Repetition(body, low, high)

    def _int(self, token: Token) -> int:
        try:
            return int(token.value)
        except ValueError:
            raise ParseError(
                f"repetition bound must be an integer, got {token.value!r}",
                token.position,
                self.text,
            ) from None

    def primary(self) -> RpeNode:
        if self.eat_punct("("):
            node = self.alternation()
            self.expect("punct", ")")
            return node
        if self.eat_punct("["):
            node = self.alternation()
            self.expect("punct", "]")
            return node
        token = self.peek()
        if token is not None and token.kind == "name":
            return self.atom()
        position = token.position if token else len(self.text)
        raise ParseError("expected an atom, '(' or '['", position, self.text)

    def atom(self) -> Atom:
        name_token = self.expect("name")
        self.expect("punct", "(")
        predicates: list[FieldPredicate] = []
        if not self.at_punct(")"):
            predicates.append(self.predicate())
            while self.eat_punct(","):
                predicates.append(self.predicate())
        self.expect("punct", ")")
        return Atom(name_token.value, tuple(predicates))

    def predicate(self) -> FieldPredicate:
        field_token = self.expect("name")
        path = field_token.value
        # Dotted paths reach into structured data: routing_table.address.
        while self.eat_punct("."):
            path += "." + self.expect("name").value
        op_token = self.expect("op")
        value = self.literal()
        return FieldPredicate(path, op_token.value, value)

    def literal(self):
        token = self.advance()
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            body = token.value[1:-1]
            return re.sub(r"\\(.)", r"\1", body)
        if token.kind == "name" and token.value.lower() in ("true", "false"):
            return token.value.lower() == "true"
        raise ParseError(
            f"expected a literal, got {token.value!r}", token.position, self.text
        )


def parse_rpe(text: str) -> RpeNode:
    """Parse RPE *text* into an (unbound) AST."""
    tokens = tokenize(text)
    if not tokens:
        raise ParseError("empty pathway expression", 0, text)
    return _Parser(text, tokens).parse()
