"""Regular Pathway Expressions (Section 3.3).

RPEs are the pattern language of Nepal: atoms constrain single nodes or
edges (symmetrically — unlike RPQ languages that only label edges),
``->`` concatenates with the paper's four-way overlap rule, ``|`` alternates
and ``[r]{i,j}`` repeats with finite bounds.  This package provides the AST,
a text parser, normalization to the four-block form of §5.1, the NFA used
for graph traversal, anchor enumeration/costing, and a reference matcher
used as the test oracle.
"""

from repro.rpe.ast import Alternation, Atom, FieldPredicate, Repetition, RpeNode, Sequence
from repro.rpe.parser import parse_rpe
from repro.rpe.normalize import length_bounds, normalize
from repro.rpe.nfa import PathwayNfa, build_nfa
from repro.rpe.anchors import AnchorPlan, Split, enumerate_anchor_plans
from repro.rpe.match import matches_pathway

__all__ = [
    "Alternation",
    "AnchorPlan",
    "Atom",
    "FieldPredicate",
    "PathwayNfa",
    "Repetition",
    "RpeNode",
    "Sequence",
    "Split",
    "build_nfa",
    "enumerate_anchor_plans",
    "length_bounds",
    "matches_pathway",
    "normalize",
    "parse_rpe",
]
