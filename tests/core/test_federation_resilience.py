"""Resilient federated execution: the ISSUE acceptance scenarios.

A federated query over two stores, one wrapped in a chaotic
:class:`FaultInjectingStore`:

* transient faults → the query completes with correct results and non-zero
  retry counters in the :class:`MetricsRegistry`;
* a hard-down backend → a typed :class:`FederationError` naming the range
  variable and store by default;
* ``allow_partial=True`` → warned partial results instead.
"""

from __future__ import annotations

import pytest

from repro.core.database import NepalDB
from repro.core.federation import Federation
from repro.core.resilience import ResiliencePolicy
from repro.errors import FederationError
from repro.inventory.legacy import build_legacy_schema
from repro.storage.chaos import FaultPlan
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory

JOIN_QUERY = (
    "Select source(P).name, source(Q).kind "
    "From PATHS P, PATHS@legacy Q "
    "Where P MATCHES Host() And Q MATCHES Entity() "
    "And source(P).name = source(Q).name"
)


def quiet_policy(**overrides) -> ResiliencePolicy:
    """A policy that never really sleeps (tests stay fast)."""
    defaults = dict(
        max_attempts=6,
        base_delay=0.001,
        jitter=0.0,
        deadline=None,
        breaker_threshold=100,
        seed=0,
        sleep=lambda seconds: None,
    )
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


@pytest.fixture
def federated_db():
    """A NepalDB whose default (memory) store holds the cloud inventory and
    whose attached ``legacy`` store (relational) is wrapped in chaos."""
    db = NepalDB(clock=TransactionClock(start=T0))
    SmallInventory(db.store)
    legacy = RelationalStore(
        build_legacy_schema(False), clock=TransactionClock(start=T0), name="legacy"
    )
    site = legacy.insert_node("Entity", {"name": "site-9", "kind": "site"})
    h1 = legacy.insert_node("Entity", {"name": "host-1", "kind": "server"})
    legacy.insert_edge(
        "GenericEdge", site, h1, {"category": "vertical", "kind": "vertical_00"}
    )
    db.attach_store("legacy", legacy)
    chaotic = db.inject_faults(FaultPlan(seed=1), store="legacy")
    return db, chaotic


class TestTransientFaults:
    def test_query_survives_with_retry_counters(self, federated_db):
        db, chaotic = federated_db
        # Every legacy method fails twice before succeeding — well inside
        # the 6-attempt budget, so the query must come back complete.
        chaotic.plan = FaultPlan(seed=1, fail_first=2)
        db.set_resilience(quiet_policy())

        result = db.query(JOIN_QUERY)

        assert result.value_rows() == [("host-1", "server")]
        assert result.warnings == ()
        assert chaotic.chaos.total_faults > 0
        retries = db.metrics.event_count("resilience.retry.legacy")
        assert retries >= chaotic.chaos.total_faults
        # Counters surface through the public stats API too.
        events = db.cache_stats()["events"]
        assert events["resilience.retry.legacy"] == retries

    def test_fault_free_rerun_matches_chaotic_run(self, federated_db):
        db, chaotic = federated_db
        chaotic.plan = FaultPlan(seed=1, fail_first=1, fail_every=5)
        db.set_resilience(quiet_policy())
        chaotic_rows = db.query(JOIN_QUERY).value_rows()

        chaotic.heal()
        assert db.query(JOIN_QUERY).value_rows() == chaotic_rows

    def test_default_store_is_untouched_by_legacy_chaos(self, federated_db):
        db, chaotic = federated_db
        chaotic.plan = FaultPlan(seed=1, fail_first=1)
        db.set_resilience(quiet_policy())
        db.query(JOIN_QUERY)
        assert db.metrics.event_count("resilience.retry.default") == 0


class TestHardDown:
    def test_raises_typed_federation_error(self, federated_db):
        db, chaotic = federated_db
        chaotic.set_hard_down()
        db.set_resilience(quiet_policy(max_attempts=3))

        with pytest.raises(FederationError) as excinfo:
            db.query(JOIN_QUERY)
        assert excinfo.value.variable == "Q"
        assert excinfo.value.store == "legacy"
        # The healthy default store keeps answering single-store queries.
        healthy = db.query("Retrieve P From PATHS P Where P MATCHES Host()")
        assert len(healthy) == 2

    def test_allow_partial_returns_warned_partial_results(self, federated_db):
        db, chaotic = federated_db
        chaotic.set_hard_down()
        db.set_resilience(quiet_policy(max_attempts=3), allow_partial=True)

        result = db.query(JOIN_QUERY)

        assert len(result.warnings) == 1
        assert "'Q'" in result.warnings[0]
        # P's bindings survive; projections over the dropped Q are None,
        # and the cross-store equality predicate cannot filter them.
        assert result.value_rows() == [("host-1", None), ("host-2", None)]
        assert db.metrics.event_count("resilience.degraded.legacy") == 1
        assert "resilience.degraded.legacy" in db.cache_stats()["events"]

    def test_allow_partial_recovers_after_heal(self, federated_db):
        db, chaotic = federated_db
        chaotic.set_hard_down()
        db.set_resilience(quiet_policy(max_attempts=2), allow_partial=True)
        assert db.query(JOIN_QUERY).warnings != ()

        chaotic.set_hard_down(False)
        result = db.query(JOIN_QUERY)
        assert result.warnings == ()
        assert result.value_rows() == [("host-1", "server")]


class TestFederationFacade:
    def test_federation_accepts_resilience_options(self):
        from repro.schema.builtin import build_network_schema
        from repro.storage.chaos import FaultInjectingStore
        from repro.storage.memgraph.store import MemGraphStore

        cloud = MemGraphStore(
            build_network_schema(), clock=TransactionClock(start=T0), name="cloud"
        )
        SmallInventory(cloud)
        chaotic = FaultInjectingStore(cloud, FaultPlan(seed=3, fail_first=1))
        fed = Federation(
            {"cloud": chaotic}, default="cloud", resilience=quiet_policy()
        )
        result = fed.query("Retrieve P From PATHS P Where P MATCHES VM()")
        assert len(result) == 2
        assert fed.metrics.event_count("resilience.retry.cloud") > 0
