"""The NepalDB facade."""

import pytest

from repro import NepalDB
from repro.errors import NepalError
from repro.plan.planner import PlannerOptions
from repro.temporal.clock import TransactionClock
from tests.conftest import T0


@pytest.fixture(params=["memory", "relational"])
def db(request):
    return NepalDB(backend=request.param, clock=TransactionClock(start=T0))


def populate(db):
    host = db.insert_node("Host", {"name": "h1"})
    vm = db.insert_node("VM", {"name": "v1", "status": "Green"})
    edge = db.insert_edge("OnServer", vm, host)
    return host, vm, edge


class TestLifecycle:
    def test_default_schema_is_network_schema(self):
        db = NepalDB()
        assert "VNF" in db.schema
        assert "ConnectedTo" in db.schema

    def test_unknown_backend(self):
        with pytest.raises(NepalError, match="unknown backend"):
            NepalDB(backend="paper-tape")

    def test_crud_and_query(self, db):
        host, vm, edge = populate(db)
        result = db.query("Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()")
        assert len(result) == 1
        db.clock.advance(10)
        db.update(vm, {"status": "Red"})
        result = db.query(
            "Retrieve P From PATHS P Where P MATCHES VM(status='Green')"
        )
        assert len(result) == 0

    def test_connect_inserts_reciprocal_for_symmetric(self, db):
        h1 = db.insert_node("Host", {"name": "h1"})
        tor = db.insert_node("TorSwitch", {"name": "t1"})
        uids = db.connect("ServerSwitch", h1, tor)
        assert len(uids) == 2
        # Directed classes get one edge.
        vm = db.insert_node("VM", {"name": "v"})
        uids = db.connect("OnServer", vm, h1)
        assert len(uids) == 1

    def test_delete(self, db):
        host, vm, edge = populate(db)
        db.clock.advance(10)
        db.delete(vm)
        assert len(db.query("Retrieve P From PATHS P Where P MATCHES VM()")) == 0


class TestFindPaths:
    def test_snapshot(self, db):
        populate(db)
        paths = db.find_paths("VM()->OnServer()->Host()")
        assert len(paths) == 1
        assert paths[0].validity is None

    def test_at(self, db):
        host, vm, edge = populate(db)
        db.clock.advance(100)
        db.delete(edge)
        assert db.find_paths("VM()->OnServer()->Host()") == []
        past = db.find_paths("VM()->OnServer()->Host()", at=T0 + 50)
        assert len(past) == 1

    def test_between_attaches_validity(self, db):
        host, vm, edge = populate(db)
        db.clock.advance(100)
        db.delete(edge)
        paths = db.find_paths("VM()->OnServer()->Host()", between=(T0, T0 + 1000))
        assert len(paths) == 1
        assert paths[0].validity.intervals[0].end == T0 + 100

    def test_at_and_between_mutually_exclusive(self, db):
        populate(db)
        with pytest.raises(NepalError):
            db.find_paths("VM()", at=T0, between=(T0, T0 + 1))


class TestPathEvolution:
    def test_facade_wiring(self, db):
        host, vm, edge = populate(db)
        db.clock.advance(100)
        db.update(vm, {"status": "Red"})
        path = db.find_paths("VM()->OnServer()->Host()")[0]
        evolution = db.path_evolution(path, between=(T0, T0 + 1000))
        assert any(c.field_name == "status" for c in evolution.changes)


class TestLoaderProtocol:
    def test_load_requires_apply(self, db):
        with pytest.raises(NepalError, match="apply"):
            db.load(object())

    def test_load_generator(self, db):
        from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology

        params = TopologyParams(
            services=2, vms=30, virtual_networks=8, virtual_routers=3,
            racks=2, hosts_per_rack=3, seed=20180610,
        )
        db.load(VirtualizedServiceTopology(params))
        assert len(db.query("Retrieve P From PATHS P Where P MATCHES Service()")) == 2

    def test_describe(self, db):
        populate(db)
        text = db.describe()
        assert "nodes" in text and "schema" in text


class TestOptionsPassThrough:
    def test_planner_options_flow_to_executor(self):
        db = NepalDB(planner_options=PlannerOptions(max_pathway_elements=3))
        populate(db)
        from repro.errors import UnboundedQueryError

        with pytest.raises(UnboundedQueryError):
            db.query(
                "Retrieve P From PATHS P "
                "Where P MATCHES VM()->OnServer()->Host()->ServerSwitch()->Switch()"
            )
