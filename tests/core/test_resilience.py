"""Unit tests for the resilience policy layer — all on a fake clock.

No test here ever sleeps for real: policies are built with a recording
``sleep`` and a :class:`TransactionClock`-backed ``monotonic``, so backoff
sequences, jitter bounds, deadlines and breaker state transitions are
asserted exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.resilience import CircuitBreaker, ResiliencePolicy, ResilientStore
from repro.errors import (
    BackendUnavailable,
    CircuitOpenError,
    DeadlineExceededError,
)
from repro.stats.metrics import MetricsRegistry
from repro.storage.chaos import FaultInjectingStore, FaultPlan
from repro.temporal.clock import TransactionClock


class FakeTime:
    """A sleep that advances a pinned clock instead of blocking."""

    def __init__(self, start: float = 0.0):
        self.clock = TransactionClock(start=start)
        self.sleeps: list[float] = []

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.clock.advance(seconds)

    def monotonic(self) -> float:
        return self.clock.now()


def make_policy(fake: FakeTime, **overrides) -> ResiliencePolicy:
    defaults = dict(
        max_attempts=5,
        base_delay=1.0,
        max_delay=8.0,
        multiplier=2.0,
        jitter=0.0,
        deadline=None,
        breaker_threshold=100,
        breaker_reset_after=30.0,
        seed=7,
        sleep=fake.sleep,
        monotonic=fake.monotonic,
    )
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


def resilient(mem_store, fake: FakeTime, plan: FaultPlan, **overrides):
    """A ResilientStore over a chaotic memory store, on fake time."""
    chaotic = FaultInjectingStore(mem_store, plan, sleeper=fake.sleep)
    metrics = MetricsRegistry()
    store = ResilientStore(
        chaotic, make_policy(fake, **overrides), metrics=metrics, label="unit"
    )
    return store, chaotic, metrics


# ----------------------------------------------------------------------
# backoff
# ----------------------------------------------------------------------


class TestBackoff:
    def test_exponential_sequence_without_jitter(self, mem_store):
        fake = FakeTime()
        store, chaotic, _ = resilient(
            mem_store, fake, FaultPlan(fail_first=4), max_attempts=5
        )
        uid = store.insert_node("Host", {"name": "h"})
        assert uid > 0
        # 4 failures then success: delays double and cap at max_delay.
        assert fake.sleeps == [1.0, 2.0, 4.0, 8.0]
        assert chaotic.chaos.faults["transient"] == 4

    def test_max_delay_caps_the_curve(self, mem_store):
        fake = FakeTime()
        store, _, _ = resilient(
            mem_store,
            fake,
            FaultPlan(fail_first=5),
            max_attempts=6,
            max_delay=3.0,
        )
        store.insert_node("Host", {"name": "h"})
        assert fake.sleeps == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_jitter_stays_within_bounds(self):
        policy = ResiliencePolicy(
            base_delay=1.0, multiplier=2.0, max_delay=64.0, jitter=0.25
        )
        rng = random.Random(42)
        for attempt in range(1, 7):
            nominal = min(64.0, 1.0 * 2.0 ** (attempt - 1))
            for _ in range(50):
                delay = policy.delay_for(attempt, rng)
                assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_jitter_is_deterministic_per_seed(self, mem_store):
        sequences = []
        for _ in range(2):
            fake = FakeTime()
            store, _, _ = resilient(
                mem_store, fake, FaultPlan(fail_first=3), jitter=0.3, seed=99
            )
            store.class_count("Host")
            sequences.append(tuple(fake.sleeps))
        assert sequences[0] == sequences[1]
        assert len(sequences[0]) == 3

    def test_retry_events_are_counted(self, mem_store):
        fake = FakeTime()
        store, _, metrics = resilient(mem_store, fake, FaultPlan(fail_first=2))
        store.insert_node("Host", {"name": "h"})
        assert metrics.event_count("resilience.retry.unit") == 2


# ----------------------------------------------------------------------
# attempt budget & deadline
# ----------------------------------------------------------------------


class TestBudgets:
    def test_exhausted_attempts_raise_backend_unavailable(self, mem_store):
        fake = FakeTime()
        store, chaotic, metrics = resilient(
            mem_store, fake, FaultPlan(fail_first=50), max_attempts=3
        )
        with pytest.raises(BackendUnavailable) as excinfo:
            store.counts()
        assert "3 attempts" in str(excinfo.value)
        assert excinfo.value.store == "unit"
        assert chaotic.chaos.calls["counts"] == 3
        assert metrics.event_count("resilience.exhausted.unit") == 1

    def test_deadline_preempts_a_hopeless_sleep(self, mem_store):
        fake = FakeTime()
        store, _, metrics = resilient(
            mem_store,
            fake,
            FaultPlan(fail_first=50),
            base_delay=10.0,
            deadline=1.0,
            max_attempts=10,
        )
        with pytest.raises(DeadlineExceededError):
            store.counts()
        # The 10s backoff would blow the 1s deadline, so we never sleep.
        assert fake.sleeps == []
        assert metrics.event_count("resilience.deadline.unit") == 1

    def test_deadline_counts_elapsed_time_across_retries(self, mem_store):
        fake = FakeTime()
        store, chaotic, _ = resilient(
            mem_store,
            fake,
            FaultPlan(fail_first=50),
            base_delay=1.0,
            deadline=3.5,
            max_attempts=10,
        )
        with pytest.raises(DeadlineExceededError):
            store.counts()
        # Sleeps 1 + 2 = 3s elapsed; the next 4s backoff exceeds 3.5s.
        assert fake.sleeps == [1.0, 2.0]
        assert chaotic.chaos.calls["counts"] == 3

    def test_success_before_deadline_is_untouched(self, mem_store):
        fake = FakeTime()
        store, _, _ = resilient(
            mem_store, fake, FaultPlan(fail_first=1), deadline=100.0
        )
        assert isinstance(store.counts(), dict)
        assert fake.sleeps == [1.0]

    def test_non_transient_errors_are_not_retried(self, mem_store):
        fake = FakeTime()
        store, chaotic, _ = resilient(mem_store, fake, FaultPlan())
        with pytest.raises(Exception) as excinfo:
            store.insert_node("NoSuchClass", {})
        assert not isinstance(excinfo.value, BackendUnavailable)
        assert fake.sleeps == []
        assert chaotic.chaos.calls["insert_node"] == 1


# ----------------------------------------------------------------------
# circuit breaker state machine
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = TransactionClock(start=0.0)
        breaker = CircuitBreaker(threshold=2, reset_after=30.0, clock=clock.now)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.record_failure() is False
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.record_failure() is True
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        clock = TransactionClock(start=0.0)
        breaker = CircuitBreaker(threshold=2, reset_after=30.0, clock=clock.now)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_reset_window(self):
        clock = TransactionClock(start=0.0)
        breaker = CircuitBreaker(threshold=1, reset_after=30.0, clock=clock.now)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(29.9)
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(0.2)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()

    def test_half_open_success_closes(self):
        clock = TransactionClock(start=0.0)
        breaker = CircuitBreaker(threshold=1, reset_after=30.0, clock=clock.now)
        breaker.record_failure()
        clock.advance(31.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_retrips_immediately(self):
        clock = TransactionClock(start=0.0)
        breaker = CircuitBreaker(threshold=5, reset_after=30.0, clock=clock.now)
        for _ in range(5):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(31.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # One failure in half-open re-opens regardless of the threshold.
        assert breaker.record_failure() is True
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


# ----------------------------------------------------------------------
# breaker integration with the store proxy
# ----------------------------------------------------------------------


class TestResilientStoreBreaker:
    def test_hard_down_trips_then_fails_fast(self, mem_store):
        fake = FakeTime()
        store, chaotic, metrics = resilient(
            mem_store,
            fake,
            FaultPlan(hard_down=True),
            max_attempts=10,
            breaker_threshold=2,
        )
        with pytest.raises(CircuitOpenError):
            store.counts()
        touched = chaotic.chaos.total_calls
        assert touched == 2  # threshold failures, then the breaker cut in
        assert metrics.event_count("resilience.breaker_trip.unit") == 1

        # Subsequent calls fail fast without touching the backend at all.
        before = metrics.event_count("resilience.fastfail.unit")
        with pytest.raises(CircuitOpenError):
            store.counts()
        assert chaotic.chaos.total_calls == touched
        assert metrics.event_count("resilience.fastfail.unit") == before + 1

    def test_recovery_through_half_open(self, mem_store):
        fake = FakeTime()
        store, chaotic, _ = resilient(
            mem_store,
            fake,
            FaultPlan(hard_down=True),
            max_attempts=10,
            breaker_threshold=2,
            breaker_reset_after=30.0,
        )
        with pytest.raises(CircuitOpenError):
            store.counts()
        chaotic.heal()
        fake.clock.advance(31.0)
        # Half-open admits the trial call; it succeeds and the breaker closes.
        assert isinstance(store.counts(), dict)
        assert store.breaker.state == CircuitBreaker.CLOSED

    def test_zero_fault_wrapper_never_retries(self, mem_store):
        fake = FakeTime()
        store, chaotic, metrics = resilient(mem_store, fake, FaultPlan())
        uid = store.insert_node("Host", {"name": "h"})
        assert uid > 0
        assert store.class_count("Host") == 1
        assert fake.sleeps == []
        assert metrics.events(prefix="resilience.") == {}
        assert chaotic.chaos.total_faults == 0
