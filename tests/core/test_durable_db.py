"""NepalDB durability lifecycle: data_dir, checkpoint, close, recovery."""

import pytest

from repro.core.database import NepalDB
from repro.errors import NepalError
from repro.storage.chaos import FaultInjectingStore, FaultPlan
from repro.storage.durable import DurableStore
from repro.storage.wal import history_digest
from repro.temporal.clock import TransactionClock


def open_db(tmp_path, **kw) -> NepalDB:
    kw.setdefault("clock", TransactionClock(start=100.0))
    return NepalDB(data_dir=str(tmp_path / "data"), **kw)


QUERY = "Select source(P).name From PATHS P Where P MATCHES VNF()"


def test_data_dir_requires_memory_backend(tmp_path):
    with pytest.raises(NepalError, match="relational"):
        NepalDB(backend="relational", data_dir=str(tmp_path / "data"))


def test_checkpoint_requires_data_dir():
    db = NepalDB(clock=TransactionClock(start=100.0))
    assert db.recovery_report is None
    with pytest.raises(NepalError, match="data_dir"):
        db.checkpoint()
    db.close()  # no-op without a durable store


def test_db_round_trip_answers_queries_after_recovery(tmp_path):
    db = open_db(tmp_path)
    vnf = db.store.insert_node("Firewall", {"name": "fw-a", "status": "Green"})
    db.clock.advance(5)
    db.store.update_element(vnf, {"status": "Amber"})
    expected = [row.values for row in db.query(QUERY).rows]
    digest = history_digest(db.store)
    version = db.store.data_version
    db.close()

    reopened = open_db(tmp_path)
    report = reopened.recovery_report
    assert report is not None and report.clean and report.replayed == 2
    assert history_digest(reopened.store) == digest
    assert reopened.store.data_version >= version
    assert [row.values for row in reopened.query(QUERY).rows] == expected
    reopened.close()


def test_db_checkpoint_compacts_and_recovers(tmp_path):
    db = open_db(tmp_path)
    db.store.insert_node("Firewall", {"name": "fw-a"})
    info = db.checkpoint()
    assert info.records == 1
    db.store.insert_node("Firewall", {"name": "fw-b"})
    digest = history_digest(db.store)
    db.close()

    reopened = open_db(tmp_path)
    report = reopened.recovery_report
    assert report.checkpoint_loaded and report.replayed == 1
    assert history_digest(reopened.store) == digest
    reopened.close()


def test_db_is_a_context_manager(tmp_path):
    with open_db(tmp_path) as db:
        db.store.insert_node("Firewall", {"name": "fw-a"})
    with open_db(tmp_path) as reopened:
        assert reopened.recovery_report.replayed == 1


def test_chaos_injection_wraps_but_keeps_durability_reachable(tmp_path):
    """inject_faults decorates the durable store; checkpoint still works."""
    db = open_db(tmp_path)
    db.inject_faults(FaultPlan(seed=3))
    assert isinstance(db.store, FaultInjectingStore)
    assert isinstance(db.store.inner, DurableStore)
    db.store.insert_node("Firewall", {"name": "fw-a"})
    assert db.checkpoint().records == 1
    assert db.recovery_report is not None
    db.close()


def test_plan_cache_invalidated_across_recovery(tmp_path):
    """A cached plan from before the crash must not serve stale results:
    the recovered data_version is at least the pre-crash one."""
    db = open_db(tmp_path)
    db.store.insert_node("Firewall", {"name": "fw-a"})
    db.query(QUERY)
    db.store.insert_node("Firewall", {"name": "fw-b"})
    version = db.store.data_version
    db.close()

    reopened = open_db(tmp_path)
    assert reopened.store.data_version >= version
    rows = reopened.query(QUERY).rows
    assert {row.values[0] for row in rows} == {"fw-a", "fw-b"}
    reopened.close()
