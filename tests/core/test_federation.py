"""Federated queries across heterogeneous stores (§1, §3.1)."""

import pytest

from repro.core.federation import Federation
from repro.errors import FederationError
from repro.inventory.legacy import build_legacy_schema
from repro.schema.builtin import build_network_schema
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory


@pytest.fixture
def federation():
    """A cloud inventory (memgraph) plus a legacy inventory (relational),
    with different schemas and different backends — the paper's fragmented
    sources scenario."""
    cloud = MemGraphStore(build_network_schema(), clock=TransactionClock(start=T0),
                          name="cloud")
    legacy = RelationalStore(build_legacy_schema(False),
                             clock=TransactionClock(start=T0), name="legacy")
    inv = SmallInventory(cloud)
    # Legacy records the same host-1 as an Entity plus a circuit.
    site = legacy.insert_node("Entity", {"name": "site-9", "kind": "site"})
    h1 = legacy.insert_node("Entity", {"name": "host-1", "kind": "server"})
    legacy.insert_edge(
        "GenericEdge", site, h1, {"category": "vertical", "kind": "vertical_00"}
    )
    return Federation({"cloud": cloud, "legacy": legacy}, default="cloud"), inv


def test_requires_stores():
    with pytest.raises(FederationError):
        Federation({})
    with pytest.raises(FederationError):
        Federation({"a": None}, default="b")  # type: ignore[dict-item]


def test_store_lookup(federation):
    fed, _ = federation
    assert fed.store("cloud").name == "cloud"
    assert fed.names() == ["cloud", "legacy"]
    with pytest.raises(FederationError):
        fed.store("missing")


def test_single_store_query_uses_default(federation):
    fed, inv = federation
    result = fed.query("Retrieve P From PATHS P Where P MATCHES VM()")
    assert len(result) == 2


def test_store_qualified_query(federation):
    fed, _ = federation
    result = fed.query(
        "Select source(P).name From PATHS@legacy P "
        "Where P MATCHES Entity(kind='site')"
    )
    assert result.scalars() == ["site-9"]


def test_cross_backend_join_ships_results(federation):
    # Join cloud hosts with legacy entities by name: the Python layer ships
    # partial results between a memgraph and a SQLite store.
    fed, inv = federation
    result = fed.query(
        "Select source(P).name, source(Q).kind "
        "From PATHS@cloud P, PATHS@legacy Q "
        "Where P MATCHES Host() And Q MATCHES Entity() "
        "And source(P).name = source(Q).name"
    )
    assert result.value_rows() == [("host-1", "server")]


def test_variables_bind_against_their_own_schema(federation):
    fed, _ = federation
    # Entity exists only in the legacy schema.
    from repro.errors import SchemaError

    with pytest.raises(SchemaError):
        fed.query("Retrieve P From PATHS@cloud P Where P MATCHES Entity()")


def test_describe(federation):
    fed, _ = federation
    text = fed.describe()
    assert "cloud" in text and "legacy" in text
