"""Property tests: chaos + retries never change answers or corrupt state.

Two invariants, explored by Hypothesis over random seeded fault schedules
(the CI workflow runs the ``ci`` profile — 200+ examples):

1. Any *recoverable* schedule (each method's failure streak is shorter than
   the retry budget) produces results identical to a fault-free run, with
   non-zero retry counters whenever faults actually fired.
2. ``data_version`` stays monotonic under injected write failures — a
   faulted insert (even mid-``bulk``) applies nothing, so the element count
   always equals the number of *successful* inserts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import NepalDB
from repro.core.resilience import ResiliencePolicy
from repro.errors import BackendUnavailable
from repro.storage.chaos import FaultPlan
from repro.temporal.clock import TransactionClock
from tests.conftest import T0, SmallInventory

QUERIES = (
    "Select source(P).name, target(P).name "
    "From PATHS P Where P MATCHES VM()->OnServer()->Host()",
    "Select count(P) From PATHS P Where P MATCHES Service()->ComposedOf()->VNF()",
    "Select source(P).name From PATHS P "
    "Where P MATCHES VNF()->ComposedOf()->VFC(status='Yellow')",
)

#: Retry budget used by every property; schedules are drawn so each
#: method's failure streak stays strictly below it.
MAX_ATTEMPTS = 8

recoverable_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    # fail_first < MAX_ATTEMPTS: the (fail_first+1)-th attempt succeeds.
    fail_first=st.integers(min_value=0, max_value=MAX_ATTEMPTS - 2),
    # Every Nth global call fails; the retry advances the counter, so at
    # most ceil(budget) consecutive attempts can fault — recoverable too.
    fail_every=st.sampled_from([None, 2, 3, 5]),
)


def quiet_policy() -> ResiliencePolicy:
    return ResiliencePolicy(
        max_attempts=MAX_ATTEMPTS,
        base_delay=0.0,
        jitter=0.0,
        deadline=None,
        breaker_threshold=10_000,
        seed=0,
        sleep=lambda seconds: None,
    )


def run_suite(plan: FaultPlan | None):
    """Answers to QUERIES on a fresh SmallInventory, optionally under chaos."""
    db = NepalDB(clock=TransactionClock(start=T0))
    SmallInventory(db.store)
    chaotic = None
    if plan is not None:
        chaotic = db.inject_faults(plan)
        db.set_resilience(quiet_policy())
    rows = tuple(tuple(db.query(q).value_rows()) for q in QUERIES)
    return rows, db, chaotic


BASELINE = run_suite(None)[0]


@given(plan=recoverable_plans)
def test_recoverable_faults_do_not_change_answers(plan):
    rows, db, chaotic = run_suite(plan)
    assert rows == BASELINE
    if chaotic.chaos.total_faults:
        assert db.metrics.event_count("resilience.retry.default") >= 1
    else:
        assert db.metrics.event_count("resilience.retry.default") == 0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    error_rate=st.floats(min_value=0.0, max_value=0.9),
    use_bulk=st.booleans(),
    backend=st.sampled_from(["memory", "relational"]),
)
@settings(max_examples=40, deadline=None)
def test_data_version_monotonic_under_write_faults(seed, error_rate, use_bulk, backend):
    db = NepalDB(backend=backend, clock=TransactionClock(start=T0))
    chaotic = db.inject_faults(FaultPlan(seed=seed, error_rate=error_rate))

    succeeded = 0
    versions = [chaotic.data_version]

    def load():
        nonlocal succeeded
        for index in range(25):
            try:
                chaotic.insert_node("Host", {"name": f"h-{index}"})
                succeeded += 1
            except BackendUnavailable:
                pass
            versions.append(chaotic.data_version)

    if use_bulk:
        with chaotic.bulk():
            load()
    else:
        load()
    versions.append(chaotic.data_version)

    assert all(a <= b for a, b in zip(versions, versions[1:]))
    # A faulted insert applied nothing: the surviving population is exactly
    # the successful inserts, even when faults hit mid-bulk.
    assert chaotic.inner.class_count("Host") == succeeded
    assert chaotic.chaos.calls.get("insert_node", 0) == 25
