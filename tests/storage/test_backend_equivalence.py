"""The cross-backend differential harness.

Two layers of evidence that every configuration computes the same answers:

* a property test replaying random write sequences on all four store
  configurations — memgraph, relational, and each wrapped in a zero-fault
  :class:`FaultInjectingStore` — and comparing every read surface (scans,
  adjacency, versions, counts) at every point of a shared timeline;
* a fixture matrix running the paper-query suite over the same seeded
  topology in all four configurations and asserting identical normalized
  result rows.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.inventory.virtualized import TopologyParams, VirtualizedServiceTopology
from repro.model.elements import ElementRecord
from repro.model.pathway import Pathway
from repro.rpe.parser import parse_rpe
from repro.schema.registry import Schema
from repro.storage.base import TimeScope
from repro.storage.chaos import FaultInjectingStore, FaultPlan
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock
from tests.conftest import BACKEND_MATRIX, build_matrix_db

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("equiv")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_node("BigBox", parent="Box")
    schema.define_edge("Link", fields={"weight": "integer"})
    schema.define_edge("FastLink", parent="Link")
    return schema


SCHEMA = build_schema()

# A write operation: (kind, argument tuple).
_ops = st.lists(
    st.sampled_from([
        ("node", "Box"), ("node", "BigBox"),
        ("edge", "Link"), ("edge", "FastLink"),
        ("update",), ("delete",), ("revive",), ("tick",),
    ]),
    min_size=3,
    max_size=25,
)


def apply_ops(store, ops, choices):
    """Replay an op sequence deterministically on a store."""
    nodes: list[int] = []
    edges: list[int] = []
    deleted: list[int] = []
    pick = iter(choices)

    def choose(population):
        if not population:
            return None
        return population[next(pick) % len(population)]

    for op in ops:
        if op[0] == "node":
            uid = store.insert_node(op[1], {"status": "up", "size": len(nodes)})
            nodes.append(uid)
        elif op[0] == "edge":
            source, target = choose(nodes), choose(nodes)
            if source is None or target is None:
                continue
            try:
                uid = store.insert_edge(op[1], source, target, {"weight": 1})
            except Exception:
                continue
            edges.append(uid)
        elif op[0] == "update":
            uid = choose(nodes + edges)
            if uid is None:
                continue
            try:
                store.update_element(uid, {"status": "changed"})
            except Exception:
                continue
        elif op[0] == "delete":
            uid = choose(nodes + edges)
            if uid is None:
                continue
            try:
                store.delete_element(uid)
                deleted.append(uid)
            except Exception:
                continue
        elif op[0] == "revive":
            uid = choose([d for d in deleted if d in nodes])
            if uid is None:
                continue
            try:
                store.insert_node("Box", {"status": "back"}, uid=uid)
            except Exception:
                continue
        elif op[0] == "tick":
            store.clock.advance(10)
    return nodes, edges


def snapshot_of(store, scope):
    """A comparable digest of everything a scope can see."""
    box = parse_rpe("Box()").bind(store.schema)
    link = parse_rpe("Link()").bind(store.schema)
    node_rows = {
        (r.uid, r.cls.name, tuple(sorted(r.fields.items())), r.period.start)
        for r in store.scan_atom(box, scope)
    }
    edge_rows = {
        (r.uid, r.cls.name, r.source_uid, r.target_uid, r.period.start)
        for r in store.scan_atom(link, scope)
    }
    adjacency = {
        (uid, tuple(sorted(e.uid for e in store.out_edges(uid, scope))),
         tuple(sorted(e.uid for e in store.in_edges(uid, scope))))
        for (uid, *_rest) in node_rows
    }
    return node_rows, edge_rows, adjacency


def matrix_stores():
    """One store per BACKEND_MATRIX configuration, on independent clocks."""
    stores = {}
    for config in BACKEND_MATRIX:
        backend, _, decorated = config.partition("-")
        cls = MemGraphStore if backend == "memory" else RelationalStore
        store = cls(SCHEMA, clock=TransactionClock(start=T0))
        if decorated == "chaos":
            store = FaultInjectingStore(store, FaultPlan(seed=0))
        stores[config] = store
    return stores


@settings(max_examples=40, deadline=None)
@given(_ops, st.lists(st.integers(min_value=0, max_value=997), min_size=60, max_size=60))
def test_backends_agree_under_random_writes(ops, choices):
    stores = matrix_stores()
    for store in stores.values():
        apply_ops(store, ops, choices)

    reference = stores[BACKEND_MATRIX[0]]
    final = reference.clock.now()
    scopes = [
        TimeScope.current(),
        TimeScope.at(T0),
        TimeScope.at((T0 + final) / 2),
        TimeScope.between(T0, final + 1),
    ]
    for scope in scopes:
        expected = snapshot_of(reference, scope)
        for config, store in stores.items():
            assert snapshot_of(store, scope) == expected, (config, scope)
    counts = reference.counts()
    for config, store in stores.items():
        assert store.counts() == counts, config


@pytest.mark.parametrize("ops", [
    [("node", "Box"), ("node", "BigBox"), ("edge", "Link"), ("tick",),
     ("update",), ("tick",), ("delete",), ("tick",), ("revive",)],
])
def test_versions_agree_example(ops):
    mem = MemGraphStore(SCHEMA, clock=TransactionClock(start=T0))
    rel = RelationalStore(SCHEMA, clock=TransactionClock(start=T0))
    choices = list(range(60))
    nodes_a, _ = apply_ops(mem, ops, choices)
    apply_ops(rel, ops, choices)
    from repro.temporal.interval import Interval

    window = Interval(0, float("inf"))
    for uid in nodes_a:
        mem_versions = [
            (v.period.start, v.period.end, dict(v.fields))
            for v in mem.versions(uid, window)
        ]
        rel_versions = [
            (v.period.start, v.period.end, dict(v.fields))
            for v in rel.versions(uid, window)
        ]
        assert mem_versions == rel_versions


# ----------------------------------------------------------------------
# paper-query differential matrix
# ----------------------------------------------------------------------

#: The query corpus every configuration must answer identically: explicit
#: chains, generic vertical traversals, physical-path joins, NOT EXISTS
#: subqueries, plain selects, anchor alternation and an AT timeslice.
PAPER_QUERY_CORPUS = (
    "Select source(P).name, target(P).name "
    "From PATHS P Where P MATCHES VNF()->VFC()->VM()->Host()",
    "Retrieve P From PATHS P "
    "Where P MATCHES VNF()->[Vertical()]{1,6}->Host()",
    "Select source(P).name, target(P).name "
    "From PATHS P Where P MATCHES Host()->[ConnectedTo()]{1,2}->Host()",
    "Select source(V).name, source(V).id From PATHS V "
    "Where V MATCHES VM() "
    "And NOT EXISTS( Retrieve P from PATHS P "
    "Where P MATCHES (VNF()|VFC())->[HostedOn()]{1,5}->VM() "
    "And target(V) = target(P) )",
    "Select source(V).name From PATHS V Where V MATCHES VM(status='Red')",
    "Retrieve P From PATHS P "
    "Where P MATCHES (VMWare()|Docker())->[HostedOn()]{1,2}->Host()",
    f"AT {T0 + 1} Select source(P).name From PATHS P Where P MATCHES VNF()",
)


def _norm_value(value):
    if isinstance(value, ElementRecord):
        return ("element", value.uid, value.cls.name)
    if isinstance(value, Pathway):
        return ("pathway", value.key())
    return value


def normalized_rows(result):
    """An order-insensitive, backend-independent digest of a result."""
    rows = []
    for row in result.rows:
        values = tuple(_norm_value(v) for v in row.values)
        bindings = tuple(
            sorted((name, p.key()) for name, p in row.bindings.items())
        )
        rows.append((values, bindings))
    return sorted(rows, key=repr)


@pytest.fixture(scope="module")
def query_matrix():
    """The same seeded topology loaded into every matrix configuration."""
    params = TopologyParams(
        services=2, vms=40, virtual_networks=10, virtual_routers=4,
        racks=3, hosts_per_rack=3, spine_switches=2, routers=2,
        seed=20180610,
    )
    dbs = {}
    for config in BACKEND_MATRIX:
        db = build_matrix_db(config, clock=TransactionClock(start=T0))
        VirtualizedServiceTopology(params).apply(db.store)
        dbs[config] = db
    return dbs


@pytest.mark.parametrize("query", PAPER_QUERY_CORPUS)
def test_paper_queries_agree_across_matrix(query_matrix, query):
    reference_config = BACKEND_MATRIX[0]
    expected = normalized_rows(query_matrix[reference_config].query(query))
    for config in BACKEND_MATRIX[1:]:
        assert normalized_rows(query_matrix[config].query(query)) == expected, config


def test_matrix_covers_chaos_decorated_backends(query_matrix):
    # The harness is only a differential test if the chaos wrappers really
    # decorate both backends and really injected nothing.
    wrapped = [
        db.store for config, db in query_matrix.items() if config.endswith("-chaos")
    ]
    assert len(wrapped) == 2
    for store in wrapped:
        assert isinstance(store, FaultInjectingStore)
        assert store.plan.injects_nothing()
        assert store.chaos.total_faults == 0
        assert store.chaos.total_calls > 0
