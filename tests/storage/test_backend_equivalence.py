"""Property test: both backends behave identically under random write
sequences — every read surface (scans, adjacency, versions, counts) agrees
at every point of a shared timeline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.rpe.parser import parse_rpe
from repro.schema.registry import Schema
from repro.storage.base import TimeScope
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.relational.store import RelationalStore
from repro.temporal.clock import TransactionClock

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("equiv")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_node("BigBox", parent="Box")
    schema.define_edge("Link", fields={"weight": "integer"})
    schema.define_edge("FastLink", parent="Link")
    return schema


SCHEMA = build_schema()

# A write operation: (kind, argument tuple).
_ops = st.lists(
    st.sampled_from([
        ("node", "Box"), ("node", "BigBox"),
        ("edge", "Link"), ("edge", "FastLink"),
        ("update",), ("delete",), ("revive",), ("tick",),
    ]),
    min_size=3,
    max_size=25,
)


def apply_ops(store, ops, choices):
    """Replay an op sequence deterministically on a store."""
    nodes: list[int] = []
    edges: list[int] = []
    deleted: list[int] = []
    pick = iter(choices)

    def choose(population):
        if not population:
            return None
        return population[next(pick) % len(population)]

    for op in ops:
        if op[0] == "node":
            uid = store.insert_node(op[1], {"status": "up", "size": len(nodes)})
            nodes.append(uid)
        elif op[0] == "edge":
            source, target = choose(nodes), choose(nodes)
            if source is None or target is None:
                continue
            try:
                uid = store.insert_edge(op[1], source, target, {"weight": 1})
            except Exception:
                continue
            edges.append(uid)
        elif op[0] == "update":
            uid = choose(nodes + edges)
            if uid is None:
                continue
            try:
                store.update_element(uid, {"status": "changed"})
            except Exception:
                continue
        elif op[0] == "delete":
            uid = choose(nodes + edges)
            if uid is None:
                continue
            try:
                store.delete_element(uid)
                deleted.append(uid)
            except Exception:
                continue
        elif op[0] == "revive":
            uid = choose([d for d in deleted if d in nodes])
            if uid is None:
                continue
            try:
                store.insert_node("Box", {"status": "back"}, uid=uid)
            except Exception:
                continue
        elif op[0] == "tick":
            store.clock.advance(10)
    return nodes, edges


def snapshot_of(store, scope):
    """A comparable digest of everything a scope can see."""
    box = parse_rpe("Box()").bind(store.schema)
    link = parse_rpe("Link()").bind(store.schema)
    node_rows = {
        (r.uid, r.cls.name, tuple(sorted(r.fields.items())), r.period.start)
        for r in store.scan_atom(box, scope)
    }
    edge_rows = {
        (r.uid, r.cls.name, r.source_uid, r.target_uid, r.period.start)
        for r in store.scan_atom(link, scope)
    }
    adjacency = {
        (uid, tuple(sorted(e.uid for e in store.out_edges(uid, scope))),
         tuple(sorted(e.uid for e in store.in_edges(uid, scope))))
        for (uid, *_rest) in node_rows
    }
    return node_rows, edge_rows, adjacency


@settings(max_examples=40, deadline=None)
@given(_ops, st.lists(st.integers(min_value=0, max_value=997), min_size=60, max_size=60))
def test_backends_agree_under_random_writes(ops, choices):
    mem = MemGraphStore(SCHEMA, clock=TransactionClock(start=T0))
    rel = RelationalStore(SCHEMA, clock=TransactionClock(start=T0))
    apply_ops(mem, ops, choices)
    apply_ops(rel, ops, choices)

    final = mem.clock.now()
    scopes = [
        TimeScope.current(),
        TimeScope.at(T0),
        TimeScope.at((T0 + final) / 2),
        TimeScope.between(T0, final + 1),
    ]
    for scope in scopes:
        assert snapshot_of(mem, scope) == snapshot_of(rel, scope), scope
    assert mem.counts() == rel.counts()


@pytest.mark.parametrize("ops", [
    [("node", "Box"), ("node", "BigBox"), ("edge", "Link"), ("tick",),
     ("update",), ("tick",), ("delete",), ("tick",), ("revive",)],
])
def test_versions_agree_example(ops):
    mem = MemGraphStore(SCHEMA, clock=TransactionClock(start=T0))
    rel = RelationalStore(SCHEMA, clock=TransactionClock(start=T0))
    choices = list(range(60))
    nodes_a, _ = apply_ops(mem, ops, choices)
    apply_ops(rel, ops, choices)
    from repro.temporal.interval import Interval

    window = Interval(0, float("inf"))
    for uid in nodes_a:
        mem_versions = [
            (v.period.start, v.period.end, dict(v.fields))
            for v in mem.versions(uid, window)
        ]
        rel_versions = [
            (v.period.start, v.period.end, dict(v.fields))
            for v in rel.versions(uid, window)
        ]
        assert mem_versions == rel_versions
