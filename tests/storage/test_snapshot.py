"""Update-by-snapshot diff service."""

import pytest

from repro.errors import ValidationError
from repro.storage.base import TimeScope
from repro.storage.snapshot import Snapshot, SnapshotLoader
from repro.temporal.interval import Interval

CURRENT = TimeScope.current()


def base_snapshot() -> Snapshot:
    snap = Snapshot()
    snap.add_node(1, "Host", name="host-1", cpu_cores=64)
    snap.add_node(2, "VM", name="vm-1", status="Green")
    snap.add_edge(3, "OnServer", 2, 1)
    return snap


@pytest.fixture
def loaded(any_store):
    loader = SnapshotLoader(any_store)
    stats = loader.apply(base_snapshot())
    return any_store, loader, stats


class TestInitialLoad:
    def test_everything_inserted(self, loaded):
        store, _, stats = loaded
        assert stats.inserted_nodes == 2
        assert stats.inserted_edges == 1
        assert stats.deleted == stats.updated == 0
        assert store.get_element(1, CURRENT).get("name") == "host-1"

    def test_duplicate_uid_rejected(self, any_store):
        snap = Snapshot()
        snap.add_node(1, "Host", name="a")
        snap.add_node(1, "VM", name="b")
        with pytest.raises(ValidationError, match="reuses a uid"):
            SnapshotLoader(any_store).apply(snap)


class TestIncremental:
    def test_idempotent_reapply(self, loaded):
        store, loader, _ = loaded
        stats = loader.apply(base_snapshot())
        assert stats.total_changes() == 0
        assert stats.unchanged == 3
        assert store.counts()["history_versions"] == 0

    def test_field_change_becomes_update(self, loaded, clock):
        store, loader, _ = loaded
        clock.advance(60)
        snap = base_snapshot()
        snap.nodes[1] = snap.nodes[1].__class__(
            2, "VM", {"name": "vm-1", "status": "Red"}
        )
        stats = loader.apply(snap)
        assert stats.updated == 1
        assert stats.unchanged == 2
        assert store.get_element(2, CURRENT).get("status") == "Red"
        assert store.counts()["history_versions"] == 1

    def test_missing_element_deleted(self, loaded, clock):
        store, loader, _ = loaded
        clock.advance(60)
        snap = Snapshot()
        snap.add_node(1, "Host", name="host-1", cpu_cores=64)
        stats = loader.apply(snap)
        # vm and its OnServer edge disappear (edge explicitly, by diff).
        assert stats.deleted == 2
        assert store.get_element(2, CURRENT) is None
        assert store.get_element(3, CURRENT) is None

    def test_flapping_element_revived(self, loaded, clock):
        store, loader, _ = loaded
        clock.advance(60)
        shrunk = Snapshot()
        shrunk.add_node(1, "Host", name="host-1", cpu_cores=64)
        loader.apply(shrunk)
        clock.advance(60)
        stats = loader.apply(base_snapshot())
        assert stats.inserted_nodes == 1
        assert stats.inserted_edges == 1
        versions = store.versions(2, Interval(0, float("inf")))
        assert len(versions) == 2  # original + revival

    def test_new_elements_added(self, loaded, clock):
        store, loader, _ = loaded
        clock.advance(60)
        snap = base_snapshot()
        snap.add_node(4, "VM", name="vm-2")
        snap.add_edge(5, "OnServer", 4, 1)
        stats = loader.apply(snap)
        assert stats.inserted_nodes == 1
        assert stats.inserted_edges == 1
        assert store.get_element(4, CURRENT) is not None

    def test_class_change_rejected(self, loaded, clock):
        store, loader, _ = loaded
        clock.advance(60)
        snap = Snapshot()
        snap.add_node(1, "Host", name="host-1", cpu_cores=64)
        snap.add_node(2, "Docker", name="vm-1")  # was a VM!
        snap.add_edge(3, "OnServer", 2, 1)
        with pytest.raises(ValidationError, match="classes are immutable"):
            loader.apply(snap)

    def test_history_overhead_stays_small(self, loaded, clock):
        # Sixty daily snapshots with one changing field: history grows by
        # one version per change, not one graph copy per day (§6.1).
        store, loader, _ = loaded
        for day in range(1, 61):
            clock.advance(86_400)
            snap = base_snapshot()
            if day % 10 == 0:  # occasional change
                snap.nodes[1] = snap.nodes[1].__class__(
                    2, "VM", {"name": "vm-1", "status": f"state-{day}"}
                )
            else:
                snap.nodes[1] = snap.nodes[1].__class__(
                    2, "VM", {"name": "vm-1", "status": "state-stable"}
                )
            loader.apply(snap)
        counts = store.counts()
        # 6 real changes (+1 for the first flip back) — far below 60 copies.
        assert counts["history_versions"] <= 13
