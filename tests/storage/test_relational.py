"""Relational backend: DDL shape, INHERITS views, SQL programs, temporal."""

import pytest

from repro.errors import UniquenessError, ValidationError
from repro.plan.planner import Planner
from repro.rpe.parser import parse_rpe
from repro.stats.cardinality import CardinalityEstimator
from repro.storage.base import TimeScope
from repro.temporal.interval import Interval
from tests.conftest import T0, SmallInventory

CURRENT = TimeScope.current()


class TestDdl:
    def test_one_table_per_concrete_class(self, rel_store):
        # "The Postgres implementation of Nepal uses one table for each
        # distinct Node and Edge class" (§5.2).
        conn = rel_store.connection()
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        assert "c_Host" in tables and "h_Host" in tables
        assert "c_VMWare" in tables
        assert "c_ServerSwitch" in tables
        # Abstract classes get no physical tables.
        assert "c_VNF" not in tables
        assert "c_Container" not in tables

    def test_inherits_views_union_subtrees(self, rel_store):
        # "Every VMWare node is also a VM node, and also a Node node."
        SmallInventory(rel_store)
        conn = rel_store.connection()
        assert conn.execute("SELECT COUNT(*) FROM v_VM").fetchone()[0] == 2
        assert conn.execute("SELECT COUNT(*) FROM v_Container").fetchone()[0] == 2
        assert conn.execute("SELECT COUNT(*) FROM v_Node").fetchone()[0] == 11
        names = {
            row[0]
            for row in conn.execute("SELECT f_name FROM v_VM")
        }
        assert names == {"vm-1", "vm-2"}

    def test_parent_view_projects_parent_columns_only(self, rel_store):
        SmallInventory(rel_store)
        conn = rel_store.connection()
        columns = [d[0] for d in conn.execute("SELECT * FROM v_VM LIMIT 1").description]
        assert "f_vcpus" in columns  # VM field
        assert "f_name" in columns   # inherited
        assert "class_" in columns   # concrete class marker
        parent_columns = [
            d[0] for d in conn.execute("SELECT * FROM v_Container LIMIT 1").description
        ]
        assert "f_vcpus" not in parent_columns

    def test_historical_view_unions_history(self, rel_store, clock):
        vm = rel_store.insert_node("VM", {"name": "v", "status": "Green"})
        clock.advance(10)
        rel_store.update_element(vm, {"status": "Red"})
        conn = rel_store.connection()
        assert conn.execute("SELECT COUNT(*) FROM v_VM").fetchone()[0] == 1
        assert conn.execute("SELECT COUNT(*) FROM vh_VM").fetchone()[0] == 2


class TestWritesAndReads:
    def test_round_trip_structured_fields(self, rel_store):
        table = [{"address": "10.0.0.0", "mask": 8, "interface": "ge0"}]
        router = rel_store.insert_node(
            "Router", {"name": "r1", "routing_table": table}
        )
        record = rel_store.get_element(router, CURRENT)
        assert record.get("routing_table") == table

    def test_boolean_round_trip(self, network_schema, clock):
        # Booleans are stored as integers; add a throwaway schema field.
        from repro.schema.registry import Schema
        from repro.storage.relational.store import RelationalStore

        schema = Schema("booltest")
        schema.define_node("Flag", fields={"enabled": "boolean"})
        store = RelationalStore(schema, clock=clock)
        uid = store.insert_node("Flag", {"enabled": True})
        assert store.get_element(uid, CURRENT).get("enabled") is True

    def test_uniqueness_via_elements_table(self, rel_store):
        rel_store.insert_node("Host", {"name": "h"}, uid=7)
        with pytest.raises(UniquenessError):
            rel_store.insert_node("VM", {"name": "v"}, uid=7)

    def test_validation_identical_to_memgraph(self, rel_store):
        with pytest.raises(ValidationError):
            rel_store.insert_node("Host", {"name": "x", "altitude": 3})

    def test_versions_and_revival(self, rel_store, clock):
        vm = rel_store.insert_node("VM", {"name": "v"})
        clock.advance(10)
        rel_store.delete_element(vm)
        clock.advance(10)
        rel_store.insert_node("VM", {"name": "v"}, uid=vm)
        versions = rel_store.versions(vm, Interval(0, float("inf")))
        assert len(versions) == 2
        assert not versions[0].is_current
        assert versions[1].is_current

    def test_cascade_delete(self, rel_store, clock):
        inv = SmallInventory(rel_store)
        clock.advance(5)
        rel_store.delete_element(inv.vm1)
        assert rel_store.get_element(inv.e_vm1_host1, CURRENT) is None
        assert rel_store.get_element(inv.e_vfc1_vm1, CURRENT) is None


class TestSqlPrograms:
    @pytest.fixture
    def loaded(self, rel_store):
        inv = SmallInventory(rel_store)
        planner = Planner(rel_store.schema, CardinalityEstimator(rel_store))
        return rel_store, inv, planner

    def test_sql_trace_has_paper_shape(self, loaded):
        store, inv, planner = loaded
        program = planner.compile(f"VNF(id={inv.firewall})->ComposedOf()->VFC()")
        trace = store.sql_trace(program, CURRENT)
        text = "\n".join(trace)
        # The §5.2 idioms: uid_list concatenation and the no-cycle instr check.
        assert "uid_list" in text
        assert "instr(" in text
        assert "INSERT OR IGNORE" in text
        assert any("v_ComposedOf" in stmt for stmt in trace)

    def test_temporal_predicate_in_sql(self, loaded):
        store, inv, planner = loaded
        program = planner.compile("VM()->OnServer()->Host()")
        trace = store.sql_trace(program, TimeScope.at(T0 + 1))
        text = "\n".join(trace)
        assert "sys_start <= ?" in text
        assert "vh_" in text  # historical views

    def test_find_pathways_matches_expectation(self, loaded):
        store, inv, planner = loaded
        program = planner.compile(f"VNF()->[Vertical()]{{1,6}}->Host(id={inv.host1})")
        found = store.find_pathways(program, CURRENT)
        assert {p.source.uid for p in found} == {inv.firewall}

    def test_extendblock_toggle_same_results(self, network_schema, clock):
        from repro.storage.relational.store import RelationalStore

        results = []
        for fuse in (True, False):
            store = RelationalStore(
                network_schema, clock=clock, use_extend_block=fuse
            )
            inv = SmallInventory(store)
            planner = Planner(store.schema, CardinalityEstimator(store))
            program = planner.compile(
                f"VNF()->[Vertical()]{{1,6}}->Host(id={inv.host1})"
            )
            results.append({p.key() for p in store.find_pathways(program, CURRENT)})
        assert results[0] == results[1]
        assert results[0]

    def test_json_predicate_post_filtered(self, loaded):
        # Predicates on structured fields cannot be pushed into SQL; the
        # matcher re-verifies.  (descriptor is a composite type.)
        store, inv, planner = loaded
        dns = store.insert_node(
            "DNS", {"name": "dns", "descriptor": {"vendor": "acme", "version": "1"}}
        )
        atom = parse_rpe("VNF()").bind(store.schema)
        hits = store.scan_atom(atom, CURRENT)
        assert dns in {r.uid for r in hits}

    def test_time_point_query_via_sql(self, rel_store, clock):
        inv = SmallInventory(rel_store)
        clock.advance(100)
        rel_store.delete_element(inv.e_vm1_host1)
        rel_store.insert_edge("OnServer", inv.vm1, inv.host2)
        planner = Planner(rel_store.schema, CardinalityEstimator(rel_store))
        program = planner.compile(f"VM(id={inv.vm1})->OnServer()->Host()")
        now = rel_store.find_pathways(program, CURRENT)
        assert {p.target.uid for p in now} == {inv.host2}
        past = rel_store.find_pathways(program, TimeScope.at(T0 + 50))
        assert {p.target.uid for p in past} == {inv.host1}


class TestAccounting:
    def test_counts_and_cells(self, rel_store, clock):
        inv = SmallInventory(rel_store)
        counts = rel_store.counts()
        assert counts["nodes"] == 11
        assert counts["edges"] == 17
        before = rel_store.storage_cells()
        clock.advance(10)
        rel_store.update_element(inv.vm1, {"status": "Red"})
        assert rel_store.counts()["history_versions"] == 1
        assert rel_store.storage_cells() > before

    def test_class_count(self, rel_store):
        SmallInventory(rel_store)
        assert rel_store.class_count("VM") == 2
        assert rel_store.class_count("ConnectedTo") == 10
