"""WAL framing: checksums, torn tails, and history compaction."""

import pytest

from repro.schema.registry import Schema
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.wal import (
    OP_INSERT_NODE,
    OP_UPDATE,
    WalRecord,
    WalWriter,
    compact_history,
    encode_frame,
    history_digest,
    scan_wal,
)
from repro.temporal.clock import TransactionClock

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("wal-test")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_edge("Link", fields={"weight": "integer"})
    return schema


def sample_records(n=3):
    return [
        WalRecord(lsn=i + 1, op=OP_INSERT_NODE, ts=T0 + i, uid=i + 10,
                  cls="Box", fields={"status": f"s{i}"}, dv=i)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def test_round_trip(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(path)
    records = sample_records()
    offsets = [writer.append(r) for r in records]
    writer.sync()
    writer.close()
    assert offsets[0] == 0
    scan = scan_wal(path)
    assert scan.records == records
    assert scan.torn_bytes == 0
    assert scan.note is None
    assert scan.end_offsets[-1] == scan.total_bytes


def test_missing_file_scans_empty(tmp_path):
    scan = scan_wal(tmp_path / "absent.log")
    assert scan.records == []
    assert scan.total_bytes == 0


def test_none_fields_are_dropped_from_payload():
    record = WalRecord(lsn=1, op=OP_UPDATE, uid=5, fields={"status": None})
    payload = record.to_payload()
    assert b"cls" not in payload  # unset optionals stay off the wire
    decoded = WalRecord.from_payload(payload)
    assert decoded.fields == {"status": None}  # None *values* survive (removals)
    assert decoded == record


@pytest.mark.parametrize("cut", [1, 4, 7, 8, 9])
def test_torn_tail_is_tolerated_byte_by_byte(tmp_path, cut):
    """Truncating inside the final frame loses only that record."""
    path = tmp_path / "wal.log"
    writer = WalWriter(path)
    for record in sample_records(2):
        writer.append(record)
    first_end = len(encode_frame(sample_records(2)[0]))
    writer.close()
    data = path.read_bytes()
    path.write_bytes(data[:first_end + cut])
    scan = scan_wal(path)
    assert len(scan.records) == 1
    assert scan.records[0].lsn == 1
    assert scan.valid_bytes == first_end
    assert scan.torn_bytes == cut
    assert "torn" in scan.note


def test_corrupted_byte_stops_scan(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(path)
    records = sample_records(3)
    for record in records:
        writer.append(record)
    writer.close()
    data = bytearray(path.read_bytes())
    second_start = len(encode_frame(records[0]))
    data[second_start + 12] ^= 0xFF  # flip a payload byte of record 2
    path.write_bytes(bytes(data))
    scan = scan_wal(path)
    assert [r.lsn for r in scan.records] == [1]
    assert "checksum" in scan.note


def test_rollback_discards_a_journaled_record(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(path)
    records = sample_records(2)
    writer.append(records[0])
    offset = writer.append(records[1])
    writer.rollback_to(offset)
    writer.close()
    assert [r.lsn for r in scan_wal(path).records] == [1]


def test_reopen_at_offset_truncates_stale_tail(tmp_path):
    path = tmp_path / "wal.log"
    writer = WalWriter(path)
    records = sample_records(3)
    ends = []
    for record in records:
        writer.append(record)
        ends.append(writer.tell())
    writer.close()
    reopened = WalWriter(path, start_offset=ends[0])
    assert reopened.tell() == ends[0]
    reopened.append(records[2])
    reopened.close()
    assert [r.lsn for r in scan_wal(path).records] == [1, 3]


# ----------------------------------------------------------------------
# history compaction
# ----------------------------------------------------------------------

@pytest.fixture
def store():
    return MemGraphStore(build_schema(), clock=TransactionClock(start=T0))


def replay_into_fresh(records):
    fresh = MemGraphStore(build_schema(), clock=TransactionClock(start=0.0))
    from repro.storage.durable import _apply_record

    for record in records:
        _apply_record(fresh, record)
    return fresh


def test_compaction_round_trips_update_delete_reinsert(store):
    box = store.insert_node("Box", {"status": "up", "size": 1})
    other = store.insert_node("Box", {"status": "up"})
    link = store.insert_edge("Link", box, other, {"weight": 3})
    store.clock.advance(10)
    store.update_element(box, {"status": "down", "size": None})  # field removal
    store.clock.advance(10)
    store.delete_element(other)  # cascades to the link
    store.clock.advance(10)
    store.reinsert(other)
    store.clock.advance(10)
    store.reinsert(link)

    records = compact_history(store)
    rebuilt = replay_into_fresh(records)
    assert history_digest(rebuilt) == history_digest(store)
    # Compaction is minimal: replaying it yields an already-compact stream.
    assert compact_history(rebuilt) == records


def test_compaction_orders_edge_closures_before_node_deletes(store):
    a = store.insert_node("Box", {"status": "up"})
    b = store.insert_node("Box", {"status": "up"})
    store.insert_edge("Link", a, b)
    store.clock.advance(5)
    store.delete_element(a)  # cascade closes the edge at the same instant
    rebuilt = replay_into_fresh(compact_history(store))
    assert history_digest(rebuilt) == history_digest(store)


def test_same_instant_annihilation_is_not_compacted(store):
    survivor = store.insert_node("Box", {"status": "up"})
    ghost = store.insert_node("Box", {"status": "ghost"})
    store.delete_element(ghost)  # same transaction time: never durably existed
    records = compact_history(store)
    assert {r.uid for r in records} == {survivor}


def test_digest_distinguishes_histories(store):
    store.insert_node("Box", {"status": "up"})
    before = history_digest(store)
    store.clock.advance(1)
    store.update_element(1, {"status": "down"})
    assert history_digest(store) != before
