"""In-memory store: CRUD, versioning, scans, adjacency, accounting."""

import pytest

from repro.errors import (
    UniquenessError,
    UnknownElementError,
    ValidationError,
)
from repro.storage.base import TimeScope
from repro.temporal.interval import Interval
from tests.conftest import T0

CURRENT = TimeScope.current()


def bound(store, text_class, **predicates):
    from repro.rpe.parser import parse_rpe

    inner = ", ".join(f"{k}={v!r}" for k, v in predicates.items())
    return parse_rpe(f"{text_class}({inner})").bind(store.schema)


class TestWrites:
    def test_insert_assigns_sequential_uids(self, mem_store):
        a = mem_store.insert_node("Host", {"name": "a"})
        b = mem_store.insert_node("Host", {"name": "b"})
        assert b == a + 1

    def test_explicit_uid_respected_and_reserved(self, mem_store):
        uid = mem_store.insert_node("Host", {"name": "a"}, uid=100)
        assert uid == 100
        assert mem_store.insert_node("Host", {"name": "b"}) == 101
        with pytest.raises(UniquenessError):
            mem_store.insert_node("Host", {"name": "c"}, uid=100)

    def test_garbage_rejected_at_load(self, mem_store):
        # §6.1: strong typing "prevented us from loading garbage data".
        with pytest.raises(ValidationError):
            mem_store.insert_node("Host", {"name": "x", "altitude": 3})
        with pytest.raises(ValidationError):
            mem_store.insert_node("VM", {"vcpus": "many"})

    def test_edge_requires_current_endpoints(self, mem_store):
        host = mem_store.insert_node("Host", {"name": "h"})
        with pytest.raises(UnknownElementError):
            mem_store.insert_edge("OnServer", 999, host)

    def test_edge_endpoint_rules_enforced(self, mem_store):
        host = mem_store.insert_node("Host", {"name": "h"})
        fw = mem_store.insert_node("Firewall", {"name": "fw"})
        with pytest.raises(ValidationError, match="does not admit"):
            mem_store.insert_edge("OnServer", fw, host)

    def test_update_unknown_element(self, mem_store):
        with pytest.raises(UnknownElementError):
            mem_store.update_element(5, {"name": "x"})

    def test_update_validates(self, mem_store):
        vm = mem_store.insert_node("VM", {"name": "v", "vcpus": 2})
        with pytest.raises(ValidationError):
            mem_store.update_element(vm, {"vcpus": "eight"})

    def test_update_with_none_removes_field(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v", "status": "Green"})
        clock.advance(10)
        mem_store.update_element(vm, {"status": None})
        record = mem_store.get_element(vm, CURRENT)
        assert "status" not in record.fields


class TestVersioning:
    def test_update_closes_previous_version(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v", "status": "Green"})
        clock.advance(50)
        mem_store.update_element(vm, {"status": "Red"})
        versions = mem_store.versions(vm, Interval(0, float("inf")))
        assert len(versions) == 2
        assert versions[0].period == Interval(T0, T0 + 50)
        assert versions[0].get("status") == "Green"
        assert versions[1].is_current
        assert versions[1].get("status") == "Red"

    def test_same_instant_update_overwrites_in_place(self, mem_store):
        vm = mem_store.insert_node("VM", {"name": "v", "status": "Green"})
        mem_store.update_element(vm, {"status": "Red"})  # clock not advanced
        versions = mem_store.versions(vm, Interval(0, float("inf")))
        assert len(versions) == 1
        assert versions[0].get("status") == "Red"

    def test_delete_closes_version(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v"})
        clock.advance(10)
        mem_store.delete_element(vm)
        assert mem_store.get_element(vm, CURRENT) is None
        assert mem_store.get_element(vm, TimeScope.at(T0 + 5)) is not None

    def test_node_delete_cascades_to_edges(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v"})
        host = mem_store.insert_node("Host", {"name": "h"})
        edge = mem_store.insert_edge("OnServer", vm, host)
        clock.advance(10)
        mem_store.delete_element(host)
        assert mem_store.get_element(edge, CURRENT) is None
        assert mem_store.get_element(vm, CURRENT) is not None

    def test_revival_resumes_version_chain(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v"})
        clock.advance(10)
        mem_store.delete_element(vm)
        clock.advance(10)
        mem_store.insert_node("VM", {"name": "v2"}, uid=vm)
        versions = mem_store.versions(vm, Interval(0, float("inf")))
        assert len(versions) == 2
        gap = Interval(versions[0].period.end, versions[1].period.start)
        assert gap.duration() == 10
        # During the gap the element is invisible.
        assert mem_store.get_element(vm, TimeScope.at(T0 + 15)) is None

    def test_revival_cannot_change_class(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v"})
        clock.advance(10)
        mem_store.delete_element(vm)
        with pytest.raises(UniquenessError, match="revive"):
            mem_store.insert_node("Host", {"name": "h"}, uid=vm)

    def test_edge_revival_endpoints_immutable(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v"})
        h1 = mem_store.insert_node("Host", {"name": "h1"})
        h2 = mem_store.insert_node("Host", {"name": "h2"})
        edge = mem_store.insert_edge("OnServer", vm, h1)
        clock.advance(10)
        mem_store.delete_element(edge)
        with pytest.raises(UniquenessError, match="immutable"):
            mem_store.insert_edge("OnServer", vm, h2, uid=edge)


class TestScans:
    def test_scan_atom_generalizes_over_subtree(self, mem_store):
        mem_store.insert_node("VMWare", {"name": "a"})
        mem_store.insert_node("OnMetal", {"name": "b"})
        mem_store.insert_node("Docker", {"name": "c"})
        vms = mem_store.scan_atom(bound(mem_store, "VM"), CURRENT)
        assert {r.get("name") for r in vms} == {"a", "b"}
        containers = mem_store.scan_atom(bound(mem_store, "Container"), CURRENT)
        assert len(containers) == 3

    def test_scan_with_predicates(self, mem_store):
        mem_store.insert_node("VM", {"name": "a", "status": "Green"})
        mem_store.insert_node("VM", {"name": "b", "status": "Red"})
        greens = mem_store.scan_atom(
            bound(mem_store, "VM", status="Green"), CURRENT
        )
        assert [r.get("name") for r in greens] == ["a"]

    def test_scan_by_id_uses_fast_path(self, mem_store):
        uid = mem_store.insert_node("VM", {"name": "a"})
        hits = mem_store.scan_atom(bound(mem_store, "VM", id=uid), CURRENT)
        assert [r.uid for r in hits] == [uid]
        # A wrong class with the right id returns nothing.
        assert mem_store.scan_atom(bound(mem_store, "Host", id=uid), CURRENT) == []

    def test_scan_by_indexed_name(self, mem_store):
        mem_store.insert_node("VM", {"name": "target"})
        mem_store.insert_node("VM", {"name": "other"})
        hits = mem_store.scan_atom(bound(mem_store, "VM", name="target"), CURRENT)
        assert len(hits) == 1

    def test_historical_scan_sees_past_values(self, mem_store, clock):
        vm = mem_store.insert_node("VM", {"name": "v", "status": "Green"})
        clock.advance(100)
        mem_store.update_element(vm, {"status": "Red"})
        past_green = mem_store.scan_atom(
            bound(mem_store, "VM", status="Green"), TimeScope.at(T0 + 50)
        )
        assert [r.uid for r in past_green] == [vm]
        now_green = mem_store.scan_atom(
            bound(mem_store, "VM", status="Green"), CURRENT
        )
        assert now_green == []


class TestAdjacency:
    def test_class_filtered_expansion(self, mem_store, small_inventory):
        inv = small_inventory
        hosted = mem_store.schema.edge_class("HostedOn")
        edges = mem_store.out_edges(inv.vfc1, CURRENT, [hosted])
        assert [e.uid for e in edges] == [inv.e_vfc1_vm1]
        # The ComposedOf edge into vfc1 is invisible through this filter.
        assert mem_store.in_edges(inv.vfc1, CURRENT, [hosted]) == []

    def test_empty_filter_expands_nothing(self, mem_store, small_inventory):
        assert mem_store.out_edges(small_inventory.vm1, CURRENT, []) == []

    def test_deleted_edges_invisible_current(self, mem_store, small_inventory, clock):
        inv = small_inventory
        clock.advance(10)
        mem_store.delete_element(inv.e_vm1_host1)
        assert inv.e_vm1_host1 not in [
            e.uid for e in mem_store.out_edges(inv.vm1, CURRENT)
        ]
        past = mem_store.out_edges(inv.vm1, TimeScope.at(T0 + 5))
        assert inv.e_vm1_host1 in [e.uid for e in past]


class TestAccounting:
    def test_counts(self, mem_store, small_inventory, clock):
        counts = mem_store.counts()
        assert counts["nodes"] == 11
        assert counts["edges"] == 17
        assert counts["history_versions"] == 0
        clock.advance(10)
        mem_store.update_element(small_inventory.vm1, {"status": "Red"})
        assert mem_store.counts()["history_versions"] == 1

    def test_class_count(self, mem_store, small_inventory):
        assert mem_store.class_count("VM") == 2
        assert mem_store.class_count("Container") == 2
        assert mem_store.class_count("ConnectedTo") == 10

    def test_storage_cells_grow_only_with_change(self, mem_store, small_inventory, clock):
        before = mem_store.storage_cells()
        clock.advance(10)
        mem_store.update_element(small_inventory.vm1, {"status": "Red"})
        after = mem_store.storage_cells()
        assert after > before
        # One history version, not a full copy of the graph.
        assert after - before < before / 10
