"""DurableStore: journaling, atomic batches, checkpoints, recovery."""

import os

import pytest

from repro.errors import StorageError, UnknownElementError
from repro.schema.registry import Schema
from repro.stats.metrics import MetricsRegistry
from repro.storage.durable import (
    CHECKPOINT_FILE,
    WAL_FILE,
    DurableStore,
    recover,
)
from repro.storage.memgraph.store import MemGraphStore
from repro.storage.snapshot import Snapshot, SnapshotLoader, export_snapshot
from repro.storage.wal import WalCorruptionError, history_digest, scan_wal
from repro.temporal.clock import TransactionClock

T0 = 1_000.0


def build_schema() -> Schema:
    schema = Schema("durable-test")
    schema.define_node("Box", fields={"status": "string", "size": "integer"})
    schema.define_edge("Link", fields={"weight": "integer"})
    return schema


def open_store(tmp_path, **kw) -> DurableStore:
    kw.setdefault("clock", TransactionClock(start=T0))
    return DurableStore.open(tmp_path / "data", build_schema(), **kw)


def populate(store) -> tuple[int, int, int]:
    a = store.insert_node("Box", {"status": "up", "size": 1})
    b = store.insert_node("Box", {"status": "up"})
    store.clock.advance(10)
    link = store.insert_edge("Link", a, b, {"weight": 7})
    store.clock.advance(10)
    store.update_element(a, {"status": "down"})
    store.clock.advance(10)
    store.delete_element(b)  # cascades to the link
    store.clock.advance(10)
    store.reinsert(b)
    return a, b, link


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------

def test_journal_close_recover_round_trip(tmp_path):
    store = open_store(tmp_path)
    populate(store)
    digest = history_digest(store)
    version = store.data_version
    store.close()

    recovered = open_store(tmp_path)
    assert history_digest(recovered) == digest
    assert recovered.data_version >= version
    report = recovered.recovery
    assert report.clean
    assert report.replayed == report.wal_records == 6
    recovered.close()


def test_recovered_store_never_reissues_uids(tmp_path):
    store = open_store(tmp_path)
    a, b, link = populate(store)
    store.close()
    recovered = open_store(tmp_path)
    fresh = recovered.insert_node("Box", {"status": "new"})
    assert fresh > max(a, b, link)
    recovered.close()


def test_bulk_batch_commits_as_one_unit(tmp_path):
    store = open_store(tmp_path)
    with store.bulk():
        a = store.insert_node("Box", {"status": "up"})
        b = store.insert_node("Box", {"status": "up"})
        store.insert_edge("Link", a, b)
    digest = history_digest(store)
    store.close()
    recovered = open_store(tmp_path)
    assert history_digest(recovered) == digest
    assert recovered.recovery.replayed == 3
    recovered.close()


def test_reentrant_bulk_frames_once(tmp_path):
    store = open_store(tmp_path)
    with store.bulk():
        store.insert_node("Box", {"status": "a"})
        with store.bulk():
            store.insert_node("Box", {"status": "b"})
    records = scan_wal(tmp_path / "data" / WAL_FILE).records
    assert [r.op for r in records] == [
        "bulk_begin", "insert_node", "insert_node", "bulk_commit"
    ]
    store.close()


def test_aborted_bulk_rolls_the_journal_back(tmp_path):
    store = open_store(tmp_path)
    keeper = store.insert_node("Box", {"status": "up"})
    with pytest.raises(RuntimeError, match="boom"):
        with store.bulk():
            store.insert_node("Box", {"status": "doomed"})
            raise RuntimeError("boom")
    store.close()

    recovered = open_store(tmp_path)
    # Only the pre-batch insert survives; the journal never mentions the batch.
    assert recovered.known_uids() == [keeper]
    assert recovered.recovery.discarded == 0
    recovered.close()


def test_failed_mutation_leaves_no_journal_record(tmp_path):
    store = open_store(tmp_path)
    store.insert_node("Box", {"status": "up"})
    with pytest.raises(UnknownElementError):
        store.update_element(999, {"status": "nope"})
    store.close()
    records = scan_wal(tmp_path / "data" / WAL_FILE).records
    assert [r.op for r in records] == ["insert_node"]


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------

def test_checkpoint_truncates_wal_and_recovery_skips_covered_records(tmp_path):
    store = open_store(tmp_path)
    populate(store)
    wal_before = store.wal_bytes
    info = store.checkpoint()
    assert info.wal_bytes_truncated == wal_before
    assert store.wal_bytes == 0
    digest = history_digest(store)
    store.clock.advance(10)
    store.insert_node("Box", {"status": "post-checkpoint"})
    post_digest = history_digest(store)
    assert post_digest != digest
    version = store.data_version
    store.close()

    recovered = open_store(tmp_path)
    assert history_digest(recovered) == post_digest
    assert recovered.data_version >= version
    report = recovered.recovery
    assert report.checkpoint_loaded
    assert report.checkpoint_records == info.records
    assert report.replayed == 1  # only the post-checkpoint insert
    recovered.close()


def test_crash_between_replace_and_truncate_skips_duplicates(tmp_path):
    """Journal records the checkpoint already covers must not double-apply."""
    from repro.storage.chaos import CrashPoint, crash_at

    store = open_store(tmp_path, crash_hook=crash_at("checkpoint.truncate"))
    populate(store)
    digest = history_digest(store)
    with pytest.raises(CrashPoint):
        store.checkpoint()
    # The new baseline was atomically installed but the journal survived
    # untruncated: every journal record is now a duplicate of the baseline.
    assert len(scan_wal(tmp_path / "data" / WAL_FILE).records) == 6

    target = MemGraphStore(build_schema(), clock=TransactionClock(start=0.0))
    report = recover(tmp_path / "data", target)
    assert report.checkpoint_loaded
    assert report.skipped == 6
    assert report.replayed == 0
    assert history_digest(target) == digest


def test_checkpoint_refused_inside_bulk(tmp_path):
    store = open_store(tmp_path)
    with store.bulk():
        store.insert_node("Box", {"status": "up"})
        with pytest.raises(StorageError, match="bulk"):
            store.checkpoint()
    store.close()


def test_preloaded_store_is_baselined_immediately(tmp_path):
    inner = MemGraphStore(build_schema(), clock=TransactionClock(start=T0))
    uid = inner.insert_node("Box", {"status": "preloaded"})
    store = DurableStore(inner, tmp_path / "data")
    digest = history_digest(store)
    store.close()
    assert os.path.exists(tmp_path / "data" / CHECKPOINT_FILE)
    recovered = open_store(tmp_path)
    assert recovered.known_uids() == [uid]
    assert history_digest(recovered) == digest
    recovered.close()


def test_preloaded_store_refuses_an_existing_journal(tmp_path):
    store = open_store(tmp_path)
    store.insert_node("Box", {"status": "up"})
    store.close()
    inner = MemGraphStore(build_schema(), clock=TransactionClock(start=T0))
    inner.insert_node("Box", {"status": "conflicting"})
    with pytest.raises(StorageError, match="already holds a journal"):
        DurableStore(inner, tmp_path / "data")


def test_torn_checkpoint_is_refused(tmp_path):
    store = open_store(tmp_path)
    populate(store)
    store.checkpoint()
    store.close()
    path = tmp_path / "data" / CHECKPOINT_FILE
    path.write_bytes(path.read_bytes()[:-3])
    with pytest.raises(WalCorruptionError, match="checkpoint"):
        open_store(tmp_path)


# ----------------------------------------------------------------------
# guard rails and policies
# ----------------------------------------------------------------------

def test_recover_requires_an_empty_store(tmp_path):
    occupied = MemGraphStore(build_schema(), clock=TransactionClock(start=T0))
    occupied.insert_node("Box", {"status": "up"})
    with pytest.raises(StorageError, match="empty store"):
        recover(tmp_path, occupied)


def test_unknown_sync_policy_is_rejected(tmp_path):
    with pytest.raises(StorageError, match="sync policy"):
        open_store(tmp_path, sync="fsync-sometimes")


@pytest.mark.parametrize("sync", ["always", "none"])
def test_alternate_sync_policies_round_trip(tmp_path, sync):
    store = open_store(tmp_path, sync=sync)
    populate(store)
    digest = history_digest(store)
    store.close()
    recovered = open_store(tmp_path)
    assert history_digest(recovered) == digest
    recovered.close()


def test_closed_store_rejects_mutations_but_stays_readable(tmp_path):
    store = open_store(tmp_path)
    uid = store.insert_node("Box", {"status": "up"})
    store.close()
    store.close()  # idempotent
    assert store.known_uids() == [uid]
    with pytest.raises(StorageError, match="closed"):
        store.insert_node("Box", {"status": "nope"})
    with pytest.raises(StorageError, match="closed"):
        store.checkpoint()


def test_context_manager_closes(tmp_path):
    with open_store(tmp_path) as store:
        store.insert_node("Box", {"status": "up"})
    with pytest.raises(StorageError, match="closed"):
        store.insert_node("Box", {"status": "nope"})


def test_metrics_events(tmp_path):
    metrics = MetricsRegistry()
    store = open_store(tmp_path, metrics=metrics)
    with store.bulk():
        store.insert_node("Box", {"status": "up"})
        store.insert_node("Box", {"status": "up"})
    store.checkpoint()
    assert metrics.event_count("wal.append") == 4  # begin + 2 inserts + commit
    assert metrics.event_count("wal.bulk_commit") == 1
    assert metrics.event_count("wal.checkpoint") == 1
    assert metrics.event_count("wal.sync") >= 1
    store.close()

    recovery_metrics = MetricsRegistry()
    recovered = open_store(tmp_path, metrics=recovery_metrics)
    assert recovery_metrics.event_count("recovery.checkpoint_loaded") == 1
    recovered.close()


def test_snapshot_loader_over_durable_store(tmp_path):
    """The update-by-snapshot service journals through the wrapper."""
    feed = MemGraphStore(build_schema(), clock=TransactionClock(start=T0))
    a = feed.insert_node("Box", {"status": "up"})
    b = feed.insert_node("Box", {"status": "up"})
    feed.insert_edge("Link", a, b, {"weight": 1})

    store = open_store(tmp_path)
    stats = SnapshotLoader(store).apply(export_snapshot(feed))
    assert stats.inserted_nodes == 2 and stats.inserted_edges == 1
    digest = history_digest(store)
    store.close()
    recovered = open_store(tmp_path)
    assert history_digest(recovered) == digest
    recovered.close()


def test_wall_clock_mode_journals_monotonic_stamps(tmp_path):
    store = DurableStore.open(tmp_path / "data", build_schema())  # unpinned clock
    store.insert_node("Box", {"status": "a"})
    store.insert_node("Box", {"status": "b"})
    digest = history_digest(store)
    store.close()
    records = scan_wal(tmp_path / "data" / WAL_FILE).records
    assert records[0].ts <= records[1].ts
    recovered = DurableStore.open(tmp_path / "data", build_schema())
    assert history_digest(recovered) == digest
    recovered.close()
