"""Raw legacy-feed loading with type-indicator class mapping (§6)."""

import pytest

from repro.errors import ValidationError
from repro.inventory.legacy import build_legacy_schema, type_class_name
from repro.storage.base import TimeScope
from repro.storage.bulkload import RawEdge, RawNode, load_raw_graph
from repro.storage.memgraph.store import MemGraphStore
from repro.temporal.clock import TransactionClock

CURRENT = TimeScope.current()

NODES = [
    RawNode(1, ("customer",), {"name": "c1"}),
    RawNode(2, ("access", "leaf"), {"name": "a1"}),
    RawNode(3, ("core",), {"name": "x1"}),
]
EDGES = [
    RawEdge(10, 1, 2, "circuit_00"),
    RawEdge(11, 2, 3, "circuit_05"),
    RawEdge(12, 3, 3, "noise_00"),
    RawEdge(13, 1, 99, "circuit_00"),  # dangling target
]


def test_single_class_load():
    store = MemGraphStore(build_legacy_schema(False), clock=TransactionClock(start=1.0))
    report = load_raw_graph(
        store, NODES, EDGES, node_class="Entity", edge_mapper=None
    )
    assert report.nodes == 3
    assert report.edges == 3
    assert report.skipped_edges == 1
    assert store.class_count("GenericEdge") == 3
    # Type indicators preserved as fields for predicate-based querying.
    edge = store.get_element(10, CURRENT)
    assert edge.get("kind") == "circuit_00"

    # Multiple node type indicators fold into the kind field.
    node = store.get_element(2, CURRENT)
    assert node.get("kind") == "access,leaf"


def test_subclassed_load():
    store = MemGraphStore(build_legacy_schema(True), clock=TransactionClock(start=1.0))
    report = load_raw_graph(
        store, NODES, EDGES, node_class="Entity", edge_mapper=type_class_name
    )
    assert report.edges == 3
    # Per-class partitioning: each type indicator is its own class.
    assert store.class_count("T_circuit_00") == 1
    assert store.class_count("CircuitEdge") == 2
    assert store.class_count("NoiseEdge") == 1


def test_external_uids_coexist_with_allocated():
    store = MemGraphStore(build_legacy_schema(False), clock=TransactionClock(start=1.0))
    load_raw_graph(store, NODES, EDGES[:2], node_class="Entity")
    fresh = store.insert_node("Entity", {"name": "after"})
    assert fresh > 11


def test_report_names_the_skipped_edges():
    store = MemGraphStore(build_legacy_schema(False), clock=TransactionClock(start=1.0))
    report = load_raw_graph(store, NODES, EDGES, node_class="Entity")
    assert report.skipped_edges == 1
    assert report.skipped_edge_uids == (13,)


def test_strict_load_raises_on_dangling_edges():
    store = MemGraphStore(build_legacy_schema(False), clock=TransactionClock(start=1.0))
    with pytest.raises(ValidationError, match=r"edge 13 \(circuit_00\).*99"):
        load_raw_graph(store, NODES, EDGES, node_class="Entity", strict=True)


def test_strict_load_of_a_closed_graph_succeeds():
    store = MemGraphStore(build_legacy_schema(False), clock=TransactionClock(start=1.0))
    report = load_raw_graph(store, NODES, EDGES[:3], node_class="Entity", strict=True)
    assert report.edges == 3
    assert report.skipped_edges == 0
    assert report.skipped_edge_uids == ()
